"""(Re)capture the wire-digest baseline for the sharding refactor proof.

Usage::

    PYTHONPATH=src python tools/capture_wire_baseline.py [out.json]

Writes ``tests/data/wire_baseline.json`` (default) with one digest record
per scenario from :mod:`repro.analysis.wiretrace`. Re-run only after an
*intentional* wire-protocol change, in the commit that makes the change,
so the diff shows old vs new digests alongside the code that moved them.
"""

from __future__ import annotations

import json
import os
import sys

from repro.analysis.wiretrace import scenario_digests

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests", "data", "wire_baseline.json",
)


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_OUT
    digests = scenario_digests(shards=1)
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as f:
        json.dump(digests, f, indent=1, sort_keys=True)
        f.write("\n")
    for name, record in digests.items():
        print(f"{name}: {record['frames']} frames, digest {record['digest'][:16]}…")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
