"""Per-PR performance trajectory: measure, append, and gate.

The ROADMAP's raw-speed program needs a *trajectory*, not a one-off
number: every PR appends a snapshot of the three load-bearing rates to
``BENCH_trajectory.json``, and CI gates each PR against the committed
baseline so a silent slowdown cannot land. The three probes:

* **committed cmd/s** — the burst bench (``measure_offered_burst``):
  concurrent jsubs against 3 heads on the batched DATA path, committed
  commands per *simulated* second. Deterministic (the simulation is
  seeded), so the gate band is tight.
* **wire bytes/cmd** — same run, encoded bytes on the wire per committed
  command. Also deterministic and tightly gated (this is the figure PR 6
  spent -60% on; it must not creep back).
* **read QPS** — the saturated local-read probe (``measure_read_mix``):
  an open-loop read mix offered above a 2-head stack's read capacity, so
  the figure is the capacity of the local read path (PROTOCOLS.md §12)
  in committed reads per *simulated* second. Deterministic, tight band.
* **kernel events/s and codec MB/s (wall clock)** — how fast
  ``Kernel.run`` drains its heap and how fast the codec encodes a
  representative frame mix, per wall-clock second. Machine-dependent, so
  the gate only rejects *gross* regressions (default: slower than
  ``0.3x`` baseline — an algorithmic cliff, not scheduler jitter).

Usage::

    PYTHONPATH=src python tools/bench_trajectory.py measure --label pr8
    PYTHONPATH=src python tools/bench_trajectory.py measure --label pr8 --scale smoke
    PYTHONPATH=src python tools/bench_trajectory.py gate --scale smoke
    PYTHONPATH=src python tools/bench_trajectory.py show

``measure`` appends (or replaces, for an existing label+scale) a snapshot;
``gate`` re-measures at the requested scale and exits 1 if any metric
falls outside its band versus the *last committed* snapshot of that scale.
The committed file carries no timestamps — git history dates it — so
re-measuring a deterministic metric on any machine reproduces the stored
value exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

#: Probe scales: burst size for the simulation probes and iteration count
#: for the codec probe. ``smoke`` is the per-PR CI gate (seconds); ``full``
#: is the per-PR trajectory snapshot.
SCALES = {
    "full": {"heads": 3, "jobs": 50, "codec_iters": 4000,
             "read_duration": 4.0, "read_rate": 200.0},
    "smoke": {"heads": 3, "jobs": 12, "codec_iters": 800,
              "read_duration": 2.0, "read_rate": 200.0},
}

#: Gate bands per metric. ``deterministic`` metrics reproduce exactly on
#: any machine, so their band is a tight relative tolerance; wall-clock
#: metrics only gate an order-of-magnitude cliff. ``direction`` is the
#: *good* direction.
METRICS = {
    "burst_committed_cmd_per_s": {
        "direction": "higher", "deterministic": True, "tolerance": 0.05,
    },
    "burst_wire_bytes_per_cmd": {
        "direction": "lower", "deterministic": True, "tolerance": 0.05,
    },
    "read_local_qps": {
        "direction": "higher", "deterministic": True, "tolerance": 0.05,
    },
    "kernel_events_per_wall_s": {
        "direction": "higher", "deterministic": False, "tolerance": 0.70,
    },
    "codec_mb_per_wall_s": {
        "direction": "higher", "deterministic": False, "tolerance": 0.70,
    },
}


def _representative_frames():
    """A frame mix shaped like real burst traffic: DATA carrying a typed
    submit payload, batched ORDER assignments, STABLE acks, heartbeats."""
    from repro.gcs.messages import (
        DataMsg,
        Heartbeat,
        MessageId,
        OrderMsg,
        StableMsg,
    )
    from repro.net.address import Address

    sender = Address("head0", 7400)
    frames = []
    for i in range(8):
        frames.append(DataMsg(
            MessageId(sender, i), 3, "safe",
            ("jsub", f"job-{i}", "workq", 3600.0, i),
        ))
    frames.append(OrderMsg(
        3, tuple((i, MessageId(sender, i)) for i in range(8))
    ))
    frames.append(StableMsg(3, 8))
    frames.append(Heartbeat(12.5))
    return frames


def probe_codec(iters: int) -> dict:
    """Encode+decode the representative frame mix *iters* times; returns
    wall-clock MB/s (encode+decode round trip, encoded size counted once)."""
    from repro.net.codec import WIRE

    frames = _representative_frames()
    total_bytes = 0
    start = time.perf_counter()
    for _ in range(iters):
        for frame in frames:
            raw = WIRE.encode(frame)
            WIRE.decode(raw)
            total_bytes += len(raw)
    elapsed = time.perf_counter() - start
    return {
        "codec_mb_per_wall_s": round(total_bytes / elapsed / 1e6, 2),
        "codec_bytes": total_bytes,
    }


def probe_burst(heads: int, jobs: int) -> dict:
    """The burst bench on the batched DATA path: committed cmd/s in sim
    time (deterministic), wire bytes per command (deterministic), and
    kernel events per wall second (machine-dependent)."""
    from repro.bench.experiments.throughput import measure_offered_burst

    start = time.perf_counter()
    row = measure_offered_burst(heads, jobs, seed=1, batching=True)
    wall = time.perf_counter() - start
    return {
        "burst_committed_cmd_per_s": round(jobs / row["elapsed_s"], 2),
        "burst_wire_bytes_per_cmd": row["bytes_wire_per_command"],
        "kernel_events_per_wall_s": round(row["events"] / wall),
        "burst_events": row["events"],
    }


def probe_read(duration: float, rate: float) -> dict:
    """Saturated local-read capacity on 2 heads: offer *rate* reads/s
    (above capacity) open-loop for *duration* simulated seconds; the
    completed-read rate is the per-head capacity times two."""
    from repro.bench.experiments.read_scaling import measure_read_mix

    row = measure_read_mix(
        heads=2, duration=duration, read_rate=rate, write_rate=2.0,
        clients=30, seed=1,
    )
    return {
        "read_local_qps": row["read_qps"],
        "read_fallbacks": row["reads_fallback"],
    }


def measure(scale: str) -> dict:
    """Run every probe at *scale*; returns the metric dict."""
    params = SCALES[scale]
    metrics = probe_burst(params["heads"], params["jobs"])
    metrics.update(probe_read(params["read_duration"], params["read_rate"]))
    metrics.update(probe_codec(params["codec_iters"]))
    return metrics


# -- trajectory file ---------------------------------------------------------


def load_trajectory(path: str) -> dict:
    if not os.path.exists(path):
        return {"snapshots": []}
    with open(path) as fh:
        return json.load(fh)


def save_trajectory(data: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def append_snapshot(data: dict, label: str, scale: str, metrics: dict) -> dict:
    """Append (or replace, same label+scale) one snapshot; returns it."""
    snapshot = {"label": label, "scale": scale, "metrics": metrics}
    data["snapshots"] = [
        s for s in data["snapshots"]
        if not (s["label"] == label and s["scale"] == scale)
    ]
    data["snapshots"].append(snapshot)
    return snapshot


def baseline_for(data: dict, scale: str) -> dict | None:
    """The most recent committed snapshot at *scale* (append order)."""
    matching = [s for s in data.get("snapshots", []) if s["scale"] == scale]
    return matching[-1] if matching else None


# -- the gate ----------------------------------------------------------------


def compare_snapshots(baseline: dict, current: dict) -> list[str]:
    """Regressions of *current* metrics versus *baseline* metrics, one
    human-readable line each (empty = gate passes). Only metrics named in
    :data:`METRICS` participate; a metric missing from either side is
    skipped (schema growth must not fail old baselines)."""
    failures = []
    for name, spec in METRICS.items():
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None or base == 0:
            continue
        tolerance = spec["tolerance"]
        if spec["direction"] == "higher":
            floor = base * (1.0 - tolerance)
            if cur < floor:
                failures.append(
                    f"{name}: {cur:g} < {floor:g} "
                    f"(baseline {base:g}, tolerance -{tolerance:.0%})"
                )
        else:
            ceiling = base * (1.0 + tolerance)
            if cur > ceiling:
                failures.append(
                    f"{name}: {cur:g} > {ceiling:g} "
                    f"(baseline {base:g}, tolerance +{tolerance:.0%})"
                )
    return failures


def run_gate(path: str, scale: str) -> tuple[str, int]:
    """Measure at *scale* and compare against the committed baseline;
    returns (report text, exit code)."""
    data = load_trajectory(path)
    baseline = baseline_for(data, scale)
    if baseline is None:
        return (
            f"no committed {scale!r} baseline in {path} — "
            "run `bench_trajectory.py measure` and commit the file",
            1,
        )
    current = measure(scale)
    lines = [f"perf gate ({scale}) vs committed '{baseline['label']}':"]
    for name in METRICS:
        base, cur = baseline["metrics"].get(name), current.get(name)
        if base is None or cur is None:
            continue
        lines.append(f"  {name:<28} baseline={base:<12g} current={cur:g}")
    failures = compare_snapshots(baseline["metrics"], current)
    if failures:
        lines.append("REGRESSION:")
        lines.extend(f"  {f}" for f in failures)
        return "\n".join(lines), 1
    lines.append("gate passed")
    return "\n".join(lines), 0


def show(path: str) -> str:
    data = load_trajectory(path)
    if not data["snapshots"]:
        return f"(no snapshots in {path})"
    names = list(METRICS)
    header = f"{'label':<12} {'scale':<6} " + " ".join(f"{n:>26}" for n in names)
    lines = [header]
    for snap in data["snapshots"]:
        row = f"{snap['label']:<12} {snap['scale']:<6} "
        row += " ".join(
            f"{snap['metrics'].get(n, '-'):>26}" for n in names
        )
        lines.append(row)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="per-PR performance trajectory: measure / gate / show"
    )
    parser.add_argument("--file", default="BENCH_trajectory.json",
                        help="trajectory file (default: %(default)s)")
    sub = parser.add_subparsers(dest="command", required=True)

    cmd_measure = sub.add_parser("measure", help="append a snapshot")
    cmd_measure.add_argument("--label", required=True,
                             help="snapshot label (e.g. the PR name)")
    cmd_measure.add_argument("--scale", choices=sorted(SCALES), default="full")

    cmd_gate = sub.add_parser("gate", help="fail on regression vs baseline")
    cmd_gate.add_argument("--scale", choices=sorted(SCALES), default="smoke")

    sub.add_parser("show", help="print the trajectory table")

    args = parser.parse_args(argv)
    if args.command == "measure":
        data = load_trajectory(args.file)
        metrics = measure(args.scale)
        append_snapshot(data, args.label, args.scale, metrics)
        save_trajectory(data, args.file)
        print(f"{args.label} ({args.scale}):")
        for name in METRICS:
            print(f"  {name:<28} {metrics[name]:g}")
        print(f"appended to {args.file}")
        return 0
    if args.command == "gate":
        text, code = run_gate(args.file, args.scale)
        print(text)
        return code
    print(show(args.file))
    return 0


if __name__ == "__main__":
    sys.exit(main())
