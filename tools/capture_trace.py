"""Behavior-preservation trace harness for the rpc/dispatch refactor.

Runs three representative scenarios (normal operation, membership churn,
partition + heal) and dumps a full observable trace: every GCS delivery at
every head (view, seq, message id, payload), every view installation, final
PBS queues, and the kernel/network counters. Each scenario runs in its own
process (``--scenario``) so module-level counters cannot leak between them;
the driver mode forks one subprocess per scenario and writes one JSON file.

Usage::

    PYTHONPATH=src python tools/capture_trace.py out.json
    diff <(jq -S . before.json) <(jq -S . after.json)
"""

from __future__ import annotations

import json
import subprocess
import sys


def _payload_repr(payload) -> str:
    return repr(payload)


def _instrument(stack):
    trace = {"deliveries": [], "views": []}
    for head in stack.head_names:
        joshua = stack.joshua(head)
        member = joshua.group
        inner = member.on_deliver
        inner_view = member.on_view

        def recorder(msg, head=head, inner=inner):
            trace["deliveries"].append(
                [head, msg.view_id, msg.seq, repr(msg.msg_id), _payload_repr(msg.payload)]
            )
            if inner is not None:
                inner(msg)

        def view_recorder(view, head=head, inner_view=inner_view):
            trace["views"].append([head, view.view_id, [repr(m) for m in view.members]])
            if inner_view is not None:
                inner_view(view)

        member.on_deliver = recorder
        member.on_view = view_recorder
    return trace


def _finish(stack, trace):
    cluster = stack.cluster
    queues = {}
    for head in stack.head_names:
        node = cluster.node(head)
        if node.is_up and "pbs_server" in node.daemons:
            queues[head] = [
                [j.job_id, j.state.value, j.exit_status, j.run_count]
                for j in stack.pbs(head).jobs
            ]
    trace["queues"] = queues
    trace["events"] = cluster.kernel.processed_events
    trace["now"] = cluster.kernel.now
    trace["net"] = dict(cluster.network.stats)
    return trace


def scenario_normal():
    from tests.integration.conftest import drive, make_stack, settle

    stack = make_stack(heads=3, computes=2, seed=11)
    trace = _instrument(stack)
    client = stack.client(node="login")
    for i in range(4):
        drive(stack, client.jsub(name=f"j{i}", walltime=2.0))
    drive(stack, client.jstat())
    drive(stack, client.jdel(drive(stack, client.jsub(name="victim", walltime=900.0))))
    stack.cluster.run(until=25.0)
    return _finish(stack, trace)


def scenario_membership():
    from tests.integration.conftest import drive, make_stack, settle

    stack = make_stack(heads=3, computes=2, seed=11)
    trace = _instrument(stack)
    client = stack.client(node="login")
    for i in range(3):
        drive(stack, client.jsub(name=f"m{i}", walltime=2.0))
    stack.cluster.node("head0").crash()
    stack.cluster.run(until=stack.cluster.kernel.now + 3.0)
    drive(stack, client.jsub(name="after-crash", walltime=2.0))
    stack.cluster.node("head0").restart()
    stack.cluster.run(until=stack.cluster.kernel.now + 5.0)
    drive(stack, client.jsub(name="after-rejoin", walltime=2.0))
    stack.cluster.run(until=40.0)
    return _finish(stack, trace)


def scenario_partitions():
    from tests.integration.conftest import drive, make_stack, settle

    stack = make_stack(heads=3, computes=2, seed=11)
    trace = _instrument(stack)
    client = stack.client(node="login")
    for i in range(2):
        drive(stack, client.jsub(name=f"p{i}", walltime=2.0))
    net = stack.cluster.network
    net.partitions.set_partitions([["head0", "head1", "compute0", "compute1", "login"],
                                   ["head2"]])
    stack.cluster.run(until=stack.cluster.kernel.now + 4.0)
    drive(stack, client.jsub(name="during-partition", walltime=2.0))
    net.partitions.heal_partitions()
    stack.cluster.run(until=stack.cluster.kernel.now + 10.0)
    drive(stack, client.jsub(name="after-heal", walltime=2.0))
    stack.cluster.run(until=45.0)
    return _finish(stack, trace)


SCENARIOS = {
    "normal": scenario_normal,
    "membership": scenario_membership,
    "partitions": scenario_partitions,
}


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--scenario":
        json.dump(SCENARIOS[sys.argv[2]](), sys.stdout)
        return 0
    out_path = sys.argv[1]
    combined = {}
    for name in SCENARIOS:
        proc = subprocess.run(
            [sys.executable, __file__, "--scenario", name],
            capture_output=True, text=True, check=True,
        )
        combined[name] = json.loads(proc.stdout)
    with open(out_path, "w") as f:
        json.dump(combined, f, indent=1, sort_keys=True)
    sizes = {n: len(t["deliveries"]) for n, t in combined.items()}
    print(f"wrote {out_path}: deliveries per scenario {sizes}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
