"""High-availability models and availability analysis.

The paper positions symmetric active/active replication against the other
service-level HA models (§2, Figures 1-4). This package implements all of
them on the same PBS substrate, under one measurement interface, so the
comparison benches can run identical workloads and fault schedules through
each:

* :mod:`repro.ha.single` — the traditional Beowulf single head node
  (Figure 1): the single point of failure and control.
* :mod:`repro.ha.active_standby` — warm standby with periodic checkpoints
  to shared storage and a failover monitor (Figure 2; HA-OSCAR/SLURM
  style): a failover interrupts service for seconds, rolls back to the
  last checkpoint, and restarts running applications.
* :mod:`repro.ha.asymmetric` — multiple uncoordinated active heads
  (Figure 3): throughput scales, but each head's state is still singular.
* symmetric active/active — JOSHUA itself (:mod:`repro.joshua`), wrapped
  by the same probe/report machinery via :mod:`repro.ha.probe`.
* :mod:`repro.ha.availability` — the paper's Equations 1-3, the Figure 12
  table, and a Monte-Carlo cross-check that simulates MTTF/MTTR failure
  processes and measures empirical service availability.
"""

from repro.ha.availability import (
    node_availability,
    service_availability,
    downtime_seconds_per_year,
    nines,
    format_duration,
    figure12_row,
    figure12_table,
    monte_carlo_availability,
)
from repro.ha.correlated import (
    correlated_service_availability,
    correlated_table,
    diminishing_returns,
    monte_carlo_correlated,
)
from repro.ha.probe import ServiceProbe, WorkloadReport
from repro.ha.raslog import RASCollector, RASEvent
from repro.ha.single import SingleHeadSystem
from repro.ha.active_standby import ActiveStandbySystem
from repro.ha.asymmetric import AsymmetricSystem

__all__ = [
    "node_availability",
    "service_availability",
    "downtime_seconds_per_year",
    "nines",
    "format_duration",
    "figure12_row",
    "figure12_table",
    "monte_carlo_availability",
    "correlated_service_availability",
    "correlated_table",
    "diminishing_returns",
    "monte_carlo_correlated",
    "RASCollector",
    "RASEvent",
    "ServiceProbe",
    "WorkloadReport",
    "SingleHeadSystem",
    "ActiveStandbySystem",
    "AsymmetricSystem",
]
