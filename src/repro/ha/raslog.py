"""RAS (reliability, availability, serviceability) metric recording.

§5: "The JOSHUA solution needs to be deployed on a production-type HPC
environment and respective reliability, availability and serviceability
(RAS) metrics have to be recorded in order to measure its true availability
impact. However ... RAS metrics in a HPC environment are not well defined."

This module is the collector such a deployment would run: it hooks node
lifecycle events across the cluster and turns them into the standard RAS
quantities — per-node failure counts, empirical MTBF/MTTR, per-node and
fleet availability — plus a service-level summary when paired with a
:class:`~repro.ha.probe.ServiceProbe`. Tests validate it against the
known-answer failure schedules of the injectors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster

__all__ = ["RASEvent", "RASCollector"]


@dataclass(frozen=True)
class RASEvent:
    time: float
    node: str
    kind: str  # "fail" | "repair"


class RASCollector:
    """Cluster-wide lifecycle recorder and metric calculator."""

    def __init__(self, cluster: Cluster, *, roles: tuple[str, ...] = ("head",)):
        self.cluster = cluster
        self.kernel = cluster.kernel
        self.started_at = cluster.kernel.now
        self.events: list[RASEvent] = []
        self._nodes = [n for n in cluster.nodes if n.role in roles]
        for node in self._nodes:
            node.observe(self._on_lifecycle)

    def _on_lifecycle(self, node, kind: str) -> None:
        mapped = "fail" if kind == "crash" else "repair"
        self.events.append(RASEvent(self.kernel.now, node.name, mapped))

    # -- per-node metrics ------------------------------------------------------

    def node_events(self, name: str) -> list[RASEvent]:
        return [e for e in self.events if e.node == name]

    def failure_count(self, name: str) -> int:
        return sum(1 for e in self.node_events(name) if e.kind == "fail")

    def node_downtime(self, name: str, *, until: float | None = None) -> float:
        """Total seconds *name* spent down in [started_at, until]."""
        horizon = self.kernel.now if until is None else until
        down_since: float | None = None
        total = 0.0
        for event in self.node_events(name):
            if event.time > horizon:
                break
            if event.kind == "fail" and down_since is None:
                down_since = event.time
            elif event.kind == "repair" and down_since is not None:
                total += event.time - down_since
                down_since = None
        if down_since is not None:
            total += horizon - down_since
        return total

    def node_availability(self, name: str) -> float:
        elapsed = self.kernel.now - self.started_at
        if elapsed <= 0:
            return 1.0
        return 1.0 - self.node_downtime(name) / elapsed

    def node_mtbf(self, name: str) -> float | None:
        """Empirical mean time between failures (None before 1 failure)."""
        failures = self.failure_count(name)
        if failures == 0:
            return None
        uptime = (self.kernel.now - self.started_at) - self.node_downtime(name)
        return uptime / failures

    def node_mttr(self, name: str) -> float | None:
        """Empirical mean time to repair (None before a completed repair)."""
        repairs = []
        down_since: float | None = None
        for event in self.node_events(name):
            if event.kind == "fail" and down_since is None:
                down_since = event.time
            elif event.kind == "repair" and down_since is not None:
                repairs.append(event.time - down_since)
                down_since = None
        if not repairs:
            return None
        return sum(repairs) / len(repairs)

    # -- fleet / service -----------------------------------------------------------

    def all_heads_down_time(self) -> float:
        """Seconds during which *every* monitored node was simultaneously
        down — the symmetric active/active definition of service outage."""
        timeline: list[tuple[float, str, str]] = sorted(
            (e.time, e.node, e.kind) for e in self.events
        )
        down: set[str] = set()
        all_down_since: float | None = None
        total = 0.0
        names = {n.name for n in self._nodes}
        for time, node, kind in timeline:
            if kind == "fail":
                down.add(node)
                if down >= names and all_down_since is None:
                    all_down_since = time
            else:
                if down >= names and all_down_since is not None:
                    total += time - all_down_since
                    all_down_since = None
                down.discard(node)
        if all_down_since is not None:
            total += self.kernel.now - all_down_since
        return total

    def report(self) -> list[dict]:
        """One row per monitored node."""
        rows = []
        for node in self._nodes:
            name = node.name
            mtbf = self.node_mtbf(name)
            mttr = self.node_mttr(name)
            rows.append(
                {
                    "node": name,
                    "failures": self.failure_count(name),
                    "downtime_s": round(self.node_downtime(name), 2),
                    "availability": round(self.node_availability(name), 6),
                    "mtbf_s": round(mtbf, 2) if mtbf is not None else None,
                    "mttr_s": round(mttr, 2) if mttr is not None else None,
                }
            )
        return rows
