"""Active/standby failover (paper Figure 2; HA-OSCAR / SLURM style).

One primary head serves; its server state is checkpointed to shared stable
storage every ``checkpoint_interval``. A failover monitor on the standby
head probes the primary and, after ``misses`` consecutive silent probes,
waits the ``failover_delay`` (the 3-5 s warm-standby failover the related
work reports) and brings the service up on the standby from the **last
checkpoint**:

* jobs submitted after that checkpoint are *lost* (rollback),
* jobs that were running are requeued and their applications purged from
  the compute nodes — "all currently running scientific applications have
  to be restarted after a head node failover" (§2),
* the service is unavailable from the crash until the standby finishes
  recovery.

These three costs are exactly what the symmetric active/active comparison
bench quantifies against JOSHUA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.cluster.cluster import Cluster
from repro.cluster.daemon import Daemon
from repro.net.address import Address
from repro.pbs.commands import PBSClient
from repro.pbs.job import JobSpec, JobState
from repro.pbs.mom import PBSMom
from repro.pbs.scheduler import MauiScheduler
from repro.pbs.server import PBS_MOM_PORT, PBS_SERVER_PORT, PBSServer
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.pbs.wire import AdminServers, RpcTimeout, SchedPollReq, rpc_call
from repro.util.errors import PBSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["ActiveStandbySystem", "FailoverMonitor"]

_CKPT_KEY = "pbs.torque"


class _CheckpointDaemon(Daemon):
    """Copies the primary server's persisted state to shared storage.

    The real-world analogue is an rsync of ``server_priv`` to the NFS
    filer: cheap, periodic, and the failover's rollback point.
    """

    def __init__(self, node: "Node", *, shared, interval: float):
        super().__init__(node, "ckpt", 15010)
        self.shared = shared
        self.interval = interval
        self.checkpoints = 0

    def run(self):
        while True:
            yield self.kernel.timeout(self.interval)
            state = self.node.disk.read(_CKPT_KEY)
            if state is not None:
                self.shared.write(_CKPT_KEY, state)
                self.checkpoints += 1


class FailoverMonitor(Daemon):
    """Runs on the standby; detects primary death and takes over."""

    def __init__(
        self,
        node: "Node",
        *,
        primary: Address,
        shared,
        moms: list[Address],
        probe_interval: float = 1.0,
        misses: int = 3,
        failover_delay: float = 4.0,
        service_times: ServiceTimes = ERA_2006,
    ):
        super().__init__(node, "failover-monitor", 15011)
        self.primary = primary
        self.shared = shared
        self.moms = moms
        self.probe_interval = probe_interval
        self.misses = misses
        self.failover_delay = failover_delay
        self.times = service_times
        self.failed_over = False
        self.failover_time: float | None = None

    def run(self):
        consecutive = 0
        while not self.failed_over:
            yield self.kernel.timeout(self.probe_interval)
            try:
                yield from rpc_call(
                    self.node.network, self.node.name, self.primary,
                    SchedPollReq(), timeout=self.probe_interval * 0.8,
                )
                consecutive = 0
            except (RpcTimeout, PBSError):
                consecutive += 1
            if consecutive >= self.misses:
                yield from self._failover()
                return

    def _failover(self):
        self.log.warning(self.tag, "primary silent; failing over")
        yield self.kernel.timeout(self.failover_delay)
        # Restore the last checkpoint onto the local disk so the server
        # recovers from it exactly as it would from its own crash.
        checkpoint = self.shared.read(_CKPT_KEY)
        if checkpoint is not None:
            self.node.disk.write(_CKPT_KEY, checkpoint)
        self.node.start_daemon("pbs_server")
        self.node.start_daemon("maui")
        # The checkpointing duty follows the active role: without this, a
        # later fail-back would restore pre-first-failover state.
        if "ckpt" in self.node._daemon_factories and "ckpt" not in self.node.daemons:
            self.node.start_daemon("ckpt")
        # Orphaned applications restart: purge the moms, point them at us.
        for mom in self.moms:
            self.endpoint.send(mom, ("ADMIN-PURGE",))
            self.endpoint.send(
                mom, AdminServers((Address(self.node.name, PBS_SERVER_PORT),))
            )
        self.failed_over = True
        self.failover_time = self.kernel.now
        self.log.warning(self.tag, "failover complete; standby is now active")


class ActiveStandbySystem:
    """Deploys and fronts a primary + warm-standby PBS system."""

    name = "active_standby"

    def __init__(
        self,
        cluster: Cluster,
        *,
        service_times: ServiceTimes = ERA_2006,
        checkpoint_interval: float = 5.0,
        probe_interval: float = 1.0,
        misses: int = 3,
        failover_delay: float = 4.0,
        client_node: str = "login",
        client_timeout: float = 2.0,
    ):
        if len(cluster.heads) < 2:
            raise PBSError("active/standby needs two head nodes")
        self.cluster = cluster
        self.times = service_times
        self.primary = cluster.heads[0]
        self.standby = cluster.heads[1]
        self.client_node = client_node if cluster.login else cluster.computes[0].name
        self.client_timeout = client_timeout
        mom_addresses = [Address(c.name, PBS_MOM_PORT) for c in cluster.computes]
        primary_address = Address(self.primary.name, PBS_SERVER_PORT)

        # Primary stack + checkpointing.
        self.primary.add_daemon(
            "pbs_server",
            lambda n: PBSServer(n, moms=mom_addresses, service_times=service_times),
        )
        self.primary.add_daemon(
            "maui",
            lambda n: MauiScheduler(
                n, server=Address(n.name, PBS_SERVER_PORT), service_times=service_times
            ),
        )
        shared = cluster.shared_storage
        self.primary.add_daemon(
            "ckpt",
            lambda n: _CheckpointDaemon(n, shared=shared, interval=checkpoint_interval),
        )
        # Standby: cold daemons registered but not started, plus the monitor.
        self.standby.add_daemon(
            "pbs_server",
            lambda n: PBSServer(n, moms=mom_addresses, service_times=service_times),
            start=False,
        )
        self.standby.add_daemon(
            "maui",
            lambda n: MauiScheduler(
                n, server=Address(n.name, PBS_SERVER_PORT), service_times=service_times
            ),
            start=False,
        )
        self.standby.add_daemon(
            "ckpt",
            lambda n: _CheckpointDaemon(n, shared=shared, interval=checkpoint_interval),
            start=False,
        )
        self._monitor_params = dict(
            shared=shared,
            moms=mom_addresses,
            probe_interval=probe_interval,
            misses=misses,
            failover_delay=failover_delay,
            service_times=service_times,
        )
        self.monitor: FailoverMonitor = self.standby.add_daemon(
            "failover-monitor",
            lambda n: FailoverMonitor(
                n, primary=primary_address, **self._monitor_params
            ),
        )
        # Moms initially report to the primary only.
        for compute in cluster.computes:
            compute.add_daemon(
                "pbs_mom",
                lambda n: PBSMom(
                    n, servers=[primary_address], service_times=service_times
                ),
            )

    # -- failback (extension) ------------------------------------------------

    def reintegrate_as_standby(self) -> FailoverMonitor:
        """Fail-back half of the cycle: the repaired ex-primary becomes the
        *new standby*, watching the currently-active head. Call after the
        failed node has been repaired with ``restart(daemons=False)`` (a
        repaired head must come back cold — its stale server state belongs
        to the rollback point, not to the live service)."""
        if not self.monitor.failed_over:
            raise PBSError("no failover has happened; nothing to reintegrate")
        repaired, active = self.primary, self.standby
        if not repaired.is_up:
            raise PBSError(f"{repaired.name} has not been repaired yet")
        if "pbs_server" in repaired.daemons and repaired.daemons["pbs_server"].running:
            raise PBSError(
                f"{repaired.name} came back hot; repair with restart(daemons=False)"
            )
        # Swap the roles and arm a fresh monitor on the new standby.
        self.primary, self.standby = active, repaired
        active_address = Address(active.name, PBS_SERVER_PORT)
        if "failover-monitor" in repaired._daemon_factories:
            repaired._daemon_factories["failover-monitor"] = lambda n: FailoverMonitor(
                n, primary=active_address, **self._monitor_params
            )
            self.monitor = repaired.start_daemon("failover-monitor")
        else:
            self.monitor = repaired.add_daemon(
                "failover-monitor",
                lambda n: FailoverMonitor(
                    n, primary=active_address, **self._monitor_params
                ),
            )
        return self.monitor

    # -- uniform HA-system interface ------------------------------------------

    def active_server_address(self) -> Address:
        if self.monitor.failed_over:
            return Address(self.standby.name, PBS_SERVER_PORT)
        return Address(self.primary.name, PBS_SERVER_PORT)

    def _client(self) -> PBSClient:
        return PBSClient(
            self.cluster.network,
            self.client_node,
            self.active_server_address(),
            service_times=self.times,
            timeout=self.client_timeout,
            retries=0,
        )

    def submit(self, spec: JobSpec) -> Generator:
        job_id = yield from self._client().qsub(spec)
        return job_id

    def stat(self) -> Generator:
        rows = yield from self._client().qstat()
        return rows

    def authoritative_jobs(self) -> dict[str, tuple[JobState, int]]:
        node = self.standby if self.monitor.failed_over else self.primary
        if not node.is_up or "pbs_server" not in node.daemons:
            return {}
        server = node.daemon("pbs_server")
        return {j.job_id: (j.state, j.run_count) for j in server.jobs}
