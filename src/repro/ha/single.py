"""The single-head-node baseline (paper Figure 1).

The traditional Beowulf arrangement: one head node runs the PBS server and
scheduler; when it goes down the whole HPC system is interrupted (single
point of failure *and* control). The server's queue survives on local disk
(TORQUE persistence) and running jobs are requeued on recovery — i.e. the
applications restart, and the service is unavailable for the entire repair
time.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.cluster import Cluster
from repro.pbs.commands import PBSClient
from repro.pbs.job import JobSpec, JobState
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.pbs.stack import build_pbs_stack

__all__ = ["SingleHeadSystem"]


class SingleHeadSystem:
    """Deploys and fronts a plain single-head PBS system."""

    name = "single"

    def __init__(
        self,
        cluster: Cluster,
        *,
        service_times: ServiceTimes = ERA_2006,
        client_node: str = "login",
        client_timeout: float = 2.0,
    ):
        self.cluster = cluster
        self.stack = build_pbs_stack(cluster, service_times=service_times)
        self.client_node = client_node if cluster.login else cluster.computes[0].name
        self._client = PBSClient(
            cluster.network,
            self.client_node,
            self.stack.server_address,
            service_times=service_times,
            timeout=client_timeout,
            retries=0,
        )

    # -- uniform HA-system interface -----------------------------------------

    def submit(self, spec: JobSpec) -> Generator:
        job_id = yield from self._client.qsub(spec)
        return job_id

    def stat(self) -> Generator:
        rows = yield from self._client.qstat()
        return rows

    def authoritative_jobs(self) -> dict[str, tuple[JobState, int]]:
        """job_id -> (state, run_count) from the current server instance."""
        head = self.cluster.heads[0]
        if not head.is_up or "pbs_server" not in head.daemons:
            return {}
        server = head.daemon("pbs_server")
        return {j.job_id: (j.state, j.run_count) for j in server.jobs}
