"""Service probing and workload outcome reporting.

:class:`ServiceProbe` plays an impatient user: every ``interval`` it tries
a cheap status command against the HA system under test and records whether
*anyone* answered. The probe's failure windows are the empirical service
downtime — the quantity the HA models differ on.

:class:`WorkloadReport` aggregates the fate of submitted jobs: completed,
lost (the system forgot them), and restarted (``run_count > 1`` — the
"applications have to be restarted" cost of failover-based models).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

__all__ = ["ServiceProbe", "WorkloadReport"]


class ServiceProbe:
    """Periodic liveness probe against a status-command coroutine factory.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    attempt_factory:
        Zero-argument callable returning a *fresh coroutine* that performs
        one status query and returns normally on success (any exception is
        a failed probe).
    interval:
        Seconds between probes.
    """

    def __init__(self, kernel, attempt_factory: Callable[[], Generator], interval: float = 1.0):
        self.kernel = kernel
        self.attempt_factory = attempt_factory
        self.interval = interval
        #: (probe start time, succeeded)
        self.samples: list[tuple[float, bool]] = []
        self._process = kernel.spawn(self._loop(), name="service-probe")

    def _loop(self):
        while True:
            yield self.kernel.timeout(self.interval)
            started = self.kernel.now
            try:
                yield from self.attempt_factory()
                self.samples.append((started, True))
            except Exception:
                self.samples.append((started, False))

    def stop(self) -> None:
        self._process.interrupt("probe stopped")

    # -- analysis ---------------------------------------------------------

    @property
    def failures(self) -> int:
        return sum(1 for _t, ok in self.samples if not ok)

    @property
    def attempts(self) -> int:
        return len(self.samples)

    def availability(self) -> float:
        """Fraction of probes that succeeded."""
        if not self.samples:
            return 1.0
        return 1.0 - self.failures / len(self.samples)

    def downtime_windows(self) -> list[tuple[float, float]]:
        """Contiguous failed-probe windows as (first failure, next success)."""
        windows: list[tuple[float, float]] = []
        start: float | None = None
        for time, ok in self.samples:
            if not ok and start is None:
                start = time
            elif ok and start is not None:
                windows.append((start, time))
                start = None
        if start is not None:
            windows.append((start, self.samples[-1][0] + self.interval))
        return windows

    def total_downtime(self) -> float:
        return sum(end - start for start, end in self.downtime_windows())


@dataclass
class WorkloadReport:
    """Outcome of a submitted workload against one HA model."""

    model: str
    submitted: int = 0
    completed: int = 0
    lost: int = 0
    restarted: int = 0
    submit_failures: int = 0
    probe_downtime: float = 0.0
    probe_availability: float = 1.0
    details: dict = field(default_factory=dict)

    def summary_row(self) -> dict:
        return {
            "model": self.model,
            "submitted": self.submitted,
            "completed": self.completed,
            "lost": self.lost,
            "restarted": self.restarted,
            "submit_failures": self.submit_failures,
            "downtime_s": round(self.probe_downtime, 2),
            "availability": round(self.probe_availability, 4),
        }
