"""Correlated-failure availability: the analysis the paper defers.

§5: "this analysis does not show the impact of correlated failures, such
as caused by overheating of a rack or computer room. The deployment of
multiple redundant head nodes also needs to take into account these
location dependent failure causes."

We model the standard *common-cause* (beta-factor-style) extension: on top
of each head's independent Exp(MTTF)/Exp(MTTR) process, a shared
environmental process (rack overheat, PDU trip, machine-room cooling) takes
**every** head down simultaneously with its own MTTF/MTTR. The service is
down when all heads are independently down *or* the common cause is active:

.. math::

    A_{service} = A_{cc} \\cdot \\bigl(1 - (1 - A_{node})^n\\bigr)

(the common cause and the independent processes are independent of each
other; during a common-cause event availability is zero regardless of n).

The punchline the paper anticipates: the common cause **caps** the
achievable nines — beyond the point where independent overlap is rarer
than the environmental event, additional head nodes buy nothing, and the
money belongs in a second rack/room instead. :func:`diminishing_returns`
finds that point; :func:`monte_carlo_correlated` cross-checks the closed
form by simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ha.availability import (
    SECONDS_PER_YEAR,
    node_availability,
    service_availability,
)
from repro.util.errors import ReproError

__all__ = [
    "correlated_service_availability",
    "correlated_table",
    "diminishing_returns",
    "monte_carlo_correlated",
    "CorrelatedMCResult",
]


def correlated_service_availability(
    nodes: int,
    *,
    mttf_hours: float = 5000.0,
    mttr_hours: float = 72.0,
    cc_mttf_hours: float = 50_000.0,
    cc_mttr_hours: float = 24.0,
) -> float:
    """Closed-form service availability with a common-cause process."""
    a_node = node_availability(mttf_hours, mttr_hours)
    a_cc = node_availability(cc_mttf_hours, cc_mttr_hours)
    return a_cc * service_availability(a_node, nodes)


def correlated_table(
    max_nodes: int = 6,
    *,
    mttf_hours: float = 5000.0,
    mttr_hours: float = 72.0,
    cc_mttf_hours: float = 50_000.0,
    cc_mttr_hours: float = 24.0,
) -> list[dict]:
    """Independent vs. correlated availability side by side."""
    from repro.ha.availability import downtime_seconds_per_year, format_duration, nines

    rows = []
    a_node = node_availability(mttf_hours, mttr_hours)
    for n in range(1, max_nodes + 1):
        independent = service_availability(a_node, n)
        correlated = correlated_service_availability(
            n,
            mttf_hours=mttf_hours,
            mttr_hours=mttr_hours,
            cc_mttf_hours=cc_mttf_hours,
            cc_mttr_hours=cc_mttr_hours,
        )
        rows.append(
            {
                "nodes": n,
                "independent_nines": nines(independent),
                "correlated_nines": nines(correlated),
                "independent_downtime": format_duration(
                    downtime_seconds_per_year(independent)
                ),
                "correlated_downtime": format_duration(
                    downtime_seconds_per_year(correlated)
                ),
            }
        )
    return rows


def diminishing_returns(
    *,
    mttf_hours: float = 5000.0,
    mttr_hours: float = 72.0,
    cc_mttf_hours: float = 50_000.0,
    cc_mttr_hours: float = 24.0,
    threshold: float = 0.05,
) -> int:
    """Smallest head count where one more head improves correlated
    availability by less than *threshold* (relative downtime reduction)."""
    previous = correlated_service_availability(
        1, mttf_hours=mttf_hours, mttr_hours=mttr_hours,
        cc_mttf_hours=cc_mttf_hours, cc_mttr_hours=cc_mttr_hours,
    )
    for n in range(2, 64):
        current = correlated_service_availability(
            n, mttf_hours=mttf_hours, mttr_hours=mttr_hours,
            cc_mttf_hours=cc_mttf_hours, cc_mttr_hours=cc_mttr_hours,
        )
        down_prev = 1.0 - previous
        down_now = 1.0 - current
        if down_prev > 0 and (down_prev - down_now) / down_prev < threshold:
            return n - 1
        previous = current
    raise ReproError("no diminishing-returns point below 64 heads")  # pragma: no cover


@dataclass(frozen=True)
class CorrelatedMCResult:
    nodes: int
    availability: float
    downtime_seconds_per_year: float
    independent_outages: int
    common_cause_outages: int


def monte_carlo_correlated(
    nodes: int,
    *,
    mttf_hours: float = 5000.0,
    mttr_hours: float = 72.0,
    cc_mttf_hours: float = 50_000.0,
    cc_mttr_hours: float = 24.0,
    horizon_years: float = 500.0,
    seed: int = 0,
) -> CorrelatedMCResult:
    """Simulate independent + common-cause failure processes."""
    from repro.sim.kernel import Kernel

    if nodes < 1:
        raise ReproError("need at least one node")
    kernel = Kernel(seed=seed)
    horizon = horizon_years * SECONDS_PER_YEAR
    up = [True] * nodes
    cc_active = [False]
    state = {"down_since": None, "down_total": 0.0,
             "indep_outages": 0, "cc_outages": 0}

    def service_down() -> bool:
        return cc_active[0] or not any(up)

    def account(cause: str | None) -> None:
        now = kernel.now
        if service_down() and state["down_since"] is None:
            state["down_since"] = now
            if cause == "cc":
                state["cc_outages"] += 1
            else:
                state["indep_outages"] += 1
        elif not service_down() and state["down_since"] is not None:
            state["down_total"] += now - state["down_since"]
            state["down_since"] = None

    def node_lifecycle(index: int):
        rng = kernel.streams.get(f"cc-node.{index}")
        while True:
            yield kernel.timeout(float(rng.exponential(mttf_hours * 3600)))
            up[index] = False
            account("indep")
            yield kernel.timeout(float(rng.exponential(mttr_hours * 3600)))
            up[index] = True
            account(None)

    def common_cause():
        rng = kernel.streams.get("cc-shared")
        while True:
            yield kernel.timeout(float(rng.exponential(cc_mttf_hours * 3600)))
            cc_active[0] = True
            account("cc")
            yield kernel.timeout(float(rng.exponential(cc_mttr_hours * 3600)))
            cc_active[0] = False
            account(None)

    for index in range(nodes):
        kernel.spawn(node_lifecycle(index))
    kernel.spawn(common_cause())
    kernel.run(until=horizon)
    if state["down_since"] is not None:
        state["down_total"] += horizon - state["down_since"]
    availability = 1.0 - state["down_total"] / horizon
    return CorrelatedMCResult(
        nodes=nodes,
        availability=availability,
        downtime_seconds_per_year=state["down_total"] / horizon_years,
        independent_outages=state["indep_outages"],
        common_cause_outages=state["cc_outages"],
    )
