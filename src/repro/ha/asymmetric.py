"""Asymmetric active/active (paper Figure 3).

Two or more active head nodes offer the service "at tandem without
coordination": each runs its own independent PBS server/scheduler over its
own slice of the compute nodes, and users spread submissions across them.
Throughput scales with the number of heads — but because there is no
coordinated global state, each head's queue is still a single copy:

* a head failure makes *its* jobs unavailable (and its running
  applications orphaned) until that head is repaired,
* the service as a whole stays reachable through the surviving heads —
  continuous availability for *stateless* use, per §2, but only
  active/standby-grade protection for the stateful job queue.

This is the model of the authors' earlier prototype (Leangsuksun et al.,
COSET-2 2005) that the paper cites as prior work.
"""

from __future__ import annotations

from typing import Generator

from repro.cluster.cluster import Cluster
from repro.net.address import Address
from repro.pbs.commands import PBSClient
from repro.pbs.job import JobSpec, JobState
from repro.pbs.mom import PBSMom
from repro.pbs.scheduler import MauiScheduler
from repro.pbs.server import PBS_MOM_PORT, PBS_SERVER_PORT, PBSServer
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.util.errors import NoActiveHeadError, PBSError

__all__ = ["AsymmetricSystem"]


class AsymmetricSystem:
    """Independent per-head PBS stacks with client-side load balancing."""

    name = "asymmetric"

    def __init__(
        self,
        cluster: Cluster,
        *,
        service_times: ServiceTimes = ERA_2006,
        client_node: str = "login",
        client_timeout: float = 2.0,
    ):
        if len(cluster.heads) < 2:
            raise PBSError("asymmetric active/active needs at least two heads")
        if len(cluster.computes) < len(cluster.heads):
            raise PBSError("need at least one compute node per head")
        self.cluster = cluster
        self.times = service_times
        self.client_node = client_node if cluster.login else cluster.computes[0].name
        self.client_timeout = client_timeout
        self._round_robin = 0

        # Partition compute nodes round-robin across heads.
        self.partition: dict[str, list[Address]] = {h.name: [] for h in cluster.heads}
        for index, compute in enumerate(cluster.computes):
            head = cluster.heads[index % len(cluster.heads)]
            self.partition[head.name].append(Address(compute.name, PBS_MOM_PORT))

        for head in cluster.heads:
            moms = list(self.partition[head.name])
            server_name = f"torque-{head.name}"
            head.add_daemon(
                "pbs_server",
                lambda n, moms=moms, sn=server_name: PBSServer(
                    n, moms=moms, server_name=sn, service_times=service_times
                ),
            )
            head.add_daemon(
                "maui",
                lambda n: MauiScheduler(
                    n, server=Address(n.name, PBS_SERVER_PORT),
                    service_times=service_times,
                ),
            )
        for index, compute in enumerate(cluster.computes):
            owner = cluster.heads[index % len(cluster.heads)]
            server_address = Address(owner.name, PBS_SERVER_PORT)
            compute.add_daemon(
                "pbs_mom",
                lambda n, sa=server_address: PBSMom(
                    n, servers=[sa], service_times=service_times
                ),
            )

    # -- uniform HA-system interface ----------------------------------------------

    def live_heads(self) -> list[str]:
        return [h.name for h in self.cluster.heads if h.is_up]

    def _next_head(self) -> str:
        live = self.live_heads()
        if not live:
            raise NoActiveHeadError("all asymmetric heads are down")
        head = live[self._round_robin % len(live)]
        self._round_robin += 1
        return head

    def _client_for(self, head: str) -> PBSClient:
        return PBSClient(
            self.cluster.network,
            self.client_node,
            Address(head, PBS_SERVER_PORT),
            service_times=self.times,
            timeout=self.client_timeout,
            retries=0,
        )

    def submit(self, spec: JobSpec) -> Generator:
        job_id = yield from self._client_for(self._next_head()).qsub(spec)
        return job_id

    def stat(self) -> Generator:
        """Status succeeds if any head answers (stateless availability)."""
        rows = yield from self._client_for(self._next_head()).qstat()
        return rows

    def authoritative_jobs(self) -> dict[str, tuple[JobState, int]]:
        """Union over live heads; a dead head's jobs are simply absent —
        the asymmetric model's data-loss window."""
        out: dict[str, tuple[JobState, int]] = {}
        for head in self.cluster.heads:
            if not head.is_up or "pbs_server" not in head.daemons:
                continue
            for job in head.daemon("pbs_server").jobs:
                out[job.job_id] = (job.state, job.run_count)
        return out
