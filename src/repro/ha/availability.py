"""Availability analysis: the paper's Equations 1-3 and Figure 12.

.. math::

    A_{node} = \\frac{MTTF_{node}}{MTTF_{node} + MTTR_{node}}       \\quad (1)

    A_{service} = 1 - (1 - A_{node})^{n}                             \\quad (2)

    t_{service\\,down} = 8760 \\cdot (1 - A_{service})\\ \\text{hours} \\quad (3)

Equation 2 is parallel redundancy: JOSHUA provides continuous availability
without increasing MTTR and without a system-wide failover MTTR, so the
service is down only when *all* head nodes are down simultaneously.

:func:`monte_carlo_availability` cross-checks the closed form empirically:
it simulates ``n`` independent exponential crash/repair processes on the
DES kernel and measures the fraction of time at least one node was up —
the same model assumptions, so it converges to Equation 2 (tests assert
this), while also supporting what the closed form cannot: non-exponential
repair, correlated failures via a shared-cause process, and warm-up bias.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import ReproError

__all__ = [
    "node_availability",
    "service_availability",
    "downtime_seconds_per_year",
    "nines",
    "format_duration",
    "figure12_row",
    "figure12_table",
    "monte_carlo_availability",
    "MonteCarloResult",
]

HOURS_PER_YEAR = 8760.0
SECONDS_PER_YEAR = HOURS_PER_YEAR * 3600.0


def node_availability(mttf_hours: float, mttr_hours: float) -> float:
    """Equation 1: steady-state availability of one head node."""
    if mttf_hours <= 0 or mttr_hours < 0:
        raise ReproError("MTTF must be positive and MTTR non-negative")
    return mttf_hours / (mttf_hours + mttr_hours)


def service_availability(a_node: float, nodes: int) -> float:
    """Equation 2: parallel redundancy over *nodes* independent heads."""
    if not 0.0 <= a_node <= 1.0:
        raise ReproError(f"availability must be in [0, 1], got {a_node}")
    if nodes < 1:
        raise ReproError("need at least one node")
    return 1.0 - (1.0 - a_node) ** nodes

def downtime_seconds_per_year(a_service: float) -> float:
    """Equation 3 (converted to seconds for sub-minute values)."""
    if not 0.0 <= a_service <= 1.0:
        raise ReproError(f"availability must be in [0, 1], got {a_service}")
    return SECONDS_PER_YEAR * (1.0 - a_service)


def nines(availability: float) -> int:
    """Count of leading nines: 0.9998 -> 3 (the paper's 'Nines' column)."""
    if availability >= 1.0:
        return math.inf  # type: ignore[return-value]
    if availability <= 0.0:
        return 0
    return int(-math.log10(1.0 - availability))


def format_duration(seconds: float) -> str:
    """Render like the paper: ``5d 4h 21min``, ``1h 45min``, ``1min 30s``,
    ``1s``."""
    if seconds < 0:
        raise ReproError("duration must be non-negative")
    days, rest = divmod(seconds, 86400)
    hours, rest = divmod(rest, 3600)
    minutes, secs = divmod(rest, 60)
    parts: list[str] = []
    if days >= 1:
        parts.append(f"{int(days)}d")
    if hours >= 1:
        parts.append(f"{int(hours)}h")
    if minutes >= 1:
        parts.append(f"{int(minutes)}min")
    if not parts or (days < 1 and hours < 1 and secs >= 1):
        parts.append(f"{max(1, round(secs))}s" if seconds >= 0.5 else f"{secs:.2f}s")
    return " ".join(parts[:3])


def figure12_row(nodes: int, *, mttf_hours: float = 5000.0, mttr_hours: float = 72.0) -> dict:
    """One row of Figure 12 for *nodes* head nodes."""
    a_node = node_availability(mttf_hours, mttr_hours)
    a_service = service_availability(a_node, nodes)
    down = downtime_seconds_per_year(a_service)
    return {
        "nodes": nodes,
        "availability": a_service,
        "availability_pct": 100.0 * a_service,
        "nines": nines(a_service),
        "downtime_seconds": down,
        "downtime": format_duration(down),
    }


def figure12_table(max_nodes: int = 4, *, mttf_hours: float = 5000.0, mttr_hours: float = 72.0) -> list[dict]:
    """The full Figure 12 table (1..max_nodes head nodes)."""
    return [
        figure12_row(n, mttf_hours=mttf_hours, mttr_hours=mttr_hours)
        for n in range(1, max_nodes + 1)
    ]


@dataclass(frozen=True)
class MonteCarloResult:
    nodes: int
    horizon_years: float
    availability: float
    downtime_seconds_per_year: float
    all_down_events: int


def monte_carlo_availability(
    nodes: int,
    *,
    mttf_hours: float = 5000.0,
    mttr_hours: float = 72.0,
    horizon_years: float = 200.0,
    seed: int = 0,
) -> MonteCarloResult:
    """Estimate service availability by simulating failure processes.

    Runs ``nodes`` independent alternating Exp(MTTF)/Exp(MTTR) renewal
    processes on a DES kernel and measures the total time during which
    *every* node was simultaneously down (the paper's definition of service
    downtime for the symmetric active/active model).
    """
    from repro.sim.kernel import Kernel

    if nodes < 1:
        raise ReproError("need at least one node")
    kernel = Kernel(seed=seed)
    mttf = mttf_hours * 3600.0
    mttr = mttr_hours * 3600.0
    horizon = horizon_years * SECONDS_PER_YEAR

    up = [True] * nodes
    state = {"all_down_since": None, "down_total": 0.0, "events": 0}

    def lifecycle(index: int):
        rng = kernel.streams.get(f"mc.{index}")
        while True:
            yield kernel.timeout(float(rng.exponential(mttf)))
            up[index] = False
            if not any(up) and state["all_down_since"] is None:
                state["all_down_since"] = kernel.now
                state["events"] += 1
            yield kernel.timeout(float(rng.exponential(mttr)))
            up[index] = True
            if state["all_down_since"] is not None:
                state["down_total"] += kernel.now - state["all_down_since"]
                state["all_down_since"] = None

    for index in range(nodes):
        kernel.spawn(lifecycle(index))
    kernel.run(until=horizon)
    if state["all_down_since"] is not None:
        state["down_total"] += horizon - state["all_down_since"]
    availability = 1.0 - state["down_total"] / horizon
    return MonteCarloResult(
        nodes=nodes,
        horizon_years=horizon_years,
        availability=availability,
        downtime_seconds_per_year=state["down_total"] / horizon_years,
        all_down_events=state["events"],
    )
