"""The RPC wire envelope: typed request/reply frames.

Every conversation on the rpc substrate crosses the network as one of two
record shapes (previously the ad-hoc tuples ``("RPC", id, payload)`` /
``("RPC-R", id, payload)``):

``Request``
    ``request_id`` is unique per simulation (allocated from
    :meth:`~repro.rpc.state.RpcState.next_id`), ``payload`` is the typed
    request dataclass the server's dispatcher routes on.
``Reply``
    Echoes the ``request_id`` so the client can match responses to calls;
    ``payload`` is the response dataclass (possibly an error-relay response
    re-raised client-side).

Declared here — not inline in client/server — so the rpc layer's wire
surface is one importable module the codec registry and lint rules R4/R6
can audit like any other protocol layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.codec import register_wire_types

__all__ = ["Request", "Reply"]


@dataclass(frozen=True)
class Request:
    """One client→server call frame."""

    request_id: int
    payload: Any


@dataclass(frozen=True)
class Reply:
    """One server→client response frame, matched by ``request_id``."""

    request_id: int
    payload: Any


register_wire_types(Request, Reply)
