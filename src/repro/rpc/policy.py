"""Timeout/retry/backoff policy for RPC clients.

One :class:`RetryPolicy` value describes the full client-side persistence
behaviour of a call: per-attempt deadline, how many retries follow the
first attempt, and an optional exponential backoff between attempts.
The default (2 s deadline, no retries, no backoff) matches the historical
``rpc_call`` defaults, so porting a call site is behaviour-preserving
unless it opts into more.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How persistent one logical RPC is."""

    #: Per-attempt response deadline (seconds).
    timeout: float = 2.0
    #: Extra attempts after the first (total attempts = 1 + retries).
    retries: int = 0
    #: Delay before the first retry; 0 keeps the historical immediate-retry
    #: behaviour (and schedules no extra simulation events).
    backoff: float = 0.0
    #: Multiplier applied to the delay after each retry.
    backoff_factor: float = 2.0
    #: Upper bound on the backoff delay.
    backoff_cap: float = 2.0

    @property
    def attempts(self) -> int:
        return 1 + self.retries

    def delay_before(self, attempt: int) -> float:
        """Backoff before *attempt* (attempts are numbered from 1)."""
        if attempt <= 1 or self.backoff <= 0:
            return 0.0
        return min(self.backoff * (self.backoff_factor ** (attempt - 2)),
                   self.backoff_cap)


DEFAULT_POLICY = RetryPolicy()
