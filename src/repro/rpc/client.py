"""Client-side RPC coroutines: single call and replica failover.

:func:`call` is the one request/response primitive everything uses: bind an
ephemeral port, send a :class:`~repro.rpc.wire.Request`, await the matching
:class:`~repro.rpc.wire.Reply`, retry per the
:class:`~repro.rpc.policy.RetryPolicy` (same request id — servers dedup or
handlers are idempotent). :func:`failover_call` iterates :func:`call` over a
replica list with the skip/retry/reject rules the exactly-once clients
(JOSHUA commands, the generic active/active client, the jmutex notifiers)
previously each hand-rolled.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Sequence

from repro.net.address import Address
from repro.net.network import Network
from repro.rpc.errors import RpcTimeout
from repro.rpc.policy import DEFAULT_POLICY, RetryPolicy
from repro.rpc.state import TimeoutRecord, rpc_state, run_hooks
from repro.rpc.wire import Reply, Request
from repro.util.errors import NoActiveHeadError, PBSError

__all__ = ["call", "failover_call", "ErrorRelay"]


class ErrorRelay:
    """Marker protocol: response types whose ``kind``/``message`` should be
    re-raised client-side as :class:`PBSError` instead of returned.

    :class:`repro.pbs.wire.ErrorResp` is registered via
    :func:`register_error_response`; the rpc layer itself defines no wire
    types (they belong to the stacks above).
    """


def register_error_response(cls: type) -> type:
    """Mark *cls* as a server-error relay (re-raised as PBSError).

    The marker lives on the class itself rather than in a module-level
    registry: module state would be shared across every simulation in one
    interpreter (R2), while a class attribute is as immutable-after-import
    as the wire type it annotates.
    """
    cls.__rpc_error_relay__ = True
    return cls


def call(
    network: Network,
    node: str,
    server: Address,
    payload: Any,
    *,
    timeout: float | None = None,
    retries: int | None = None,
    policy: RetryPolicy | None = None,
) -> Generator:
    """Coroutine: one request/response against *server* from *node*.

    Yields simulation events; returns the response payload. Raises
    :class:`RpcTimeout` after the policy's attempts are exhausted and
    :class:`PBSError` if the server answered with an error-relay response.
    ``timeout``/``retries`` are shorthand overrides of *policy* (default:
    2 s, no retries — the historical ``rpc_call`` defaults).
    """
    if policy is None:
        policy = DEFAULT_POLICY
    if timeout is not None or retries is not None:
        policy = RetryPolicy(
            timeout=policy.timeout if timeout is None else timeout,
            retries=policy.retries if retries is None else retries,
            backoff=policy.backoff,
            backoff_factor=policy.backoff_factor,
            backoff_cap=policy.backoff_cap,
        )
    kernel = network.kernel
    state = rpc_state(network)
    endpoint = network.bind(node, state.next_port())
    try:
        request_id = state.next_request_id()
        # One persistent receive event, re-armed after each delivery, so no
        # stale mailbox getter can swallow a response.
        recv_ev = endpoint.recv()
        for attempt in range(1, policy.attempts + 1):
            backoff = policy.delay_before(attempt)
            if backoff > 0:
                yield kernel.timeout(backoff)
            run_hooks(state.on_request, node, server, request_id, payload,
                      attempt, log=kernel.log, where="rpc.client")
            endpoint.send(server, Request(request_id, payload))
            deadline = kernel.timeout(policy.timeout)
            while True:
                yield kernel.any_of([recv_ev, deadline])
                if recv_ev.processed:
                    frame = recv_ev.value.payload
                    recv_ev = endpoint.recv()
                    if isinstance(frame, Reply) and frame.request_id == request_id:
                        response = frame.payload
                        run_hooks(state.on_response, node, server, request_id,
                                  payload, response, log=kernel.log,
                                  where="rpc.client")
                        if getattr(response, "__rpc_error_relay__", False):
                            raise PBSError(
                                f"{response.kind}: {response.message}"
                            )
                        return response
                    continue
                if deadline.processed:
                    break  # retry (same request id: server-side idempotent)
        record = TimeoutRecord(
            time=kernel.now, src=node, dst=server,
            request_type=type(payload).__name__, attempts=policy.attempts,
        )
        state.record_timeout(record)
        # Exhausted conversations report through the same hook path as
        # answered ones, with the TimeoutRecord as the response marker —
        # collectors therefore see every conversation exactly once.
        run_hooks(state.on_response, node, server, request_id, payload,
                  record, log=kernel.log, where="rpc.client")
        raise RpcTimeout(server, type(payload).__name__, policy.attempts)
    finally:
        endpoint.close()


def failover_call(
    network: Network,
    node: str,
    targets: Sequence[Address] | Iterable[Address],
    payload: Any,
    *,
    policy: RetryPolicy | None = None,
    timeout: float | None = None,
    skip_down: bool = True,
    count_skipped: bool = True,
    retry_error: Callable[[PBSError], bool] | None = None,
    reject: Callable[[Any], bool] | None = None,
    stats: dict | None = None,
    stats_key: str = "failovers",
    what: str | None = None,
) -> Generator:
    """Coroutine: try *payload* against each target until one answers.

    The shared failover loop of every exactly-once client:

    * ``skip_down`` — skip targets whose node is down without burning a
      full RPC timeout (models the instant connection-refused a dead
      node's TCP stack produces); ``count_skipped`` controls whether a
      skip counts as a failover in *stats*;
    * :class:`RpcTimeout` always fails over to the next target;
    * other :class:`PBSError`\\ s fail over when ``retry_error(exc)`` is
      true (e.g. a head answering "joining"), otherwise propagate;
    * a received response is retried on the next target when
      ``reject(response)`` is true (e.g. a result carrying a
      transient error marker) — otherwise it is returned.

    Raises :class:`NoActiveHeadError` (message prefix *what*) when every
    target was skipped, timed out, or rejected.
    """
    last_error: Exception | None = None
    for target in targets:
        if skip_down and not network.node_is_up(target.node):
            if stats is not None and count_skipped:
                stats[stats_key] = stats.get(stats_key, 0) + 1
            continue
        try:
            response = yield from call(
                network, node, target, payload,
                policy=policy, timeout=timeout,
            )
        except RpcTimeout as exc:
            last_error = exc
            if stats is not None:
                stats[stats_key] = stats.get(stats_key, 0) + 1
            continue
        except PBSError as exc:
            if retry_error is not None and retry_error(exc):
                last_error = exc
                if stats is not None:
                    stats[stats_key] = stats.get(stats_key, 0) + 1
                continue
            raise
        if reject is not None and reject(response):
            if stats is not None:
                stats[stats_key] = stats.get(stats_key, 0) + 1
            continue
        return response
    if what is None:
        what = f"no target answered {type(payload).__name__}"
    raise NoActiveHeadError(f"{what}: {last_error}")
