"""RPC-layer errors.

:class:`RpcTimeout` derives from :class:`~repro.util.errors.PBSError` for
backward compatibility: every pre-substrate call site catches ``PBSError``
(or ``RpcTimeout`` re-exported from :mod:`repro.pbs.wire`), and both keep
working unchanged.
"""

from __future__ import annotations

from repro.util.errors import PBSError

__all__ = ["RpcTimeout"]


class RpcTimeout(PBSError):
    """No response within the deadline (server down or unreachable).

    Carries enough context to tell *which* conversation stalled: the
    destination address, the request type and how many attempts were made
    — chaos-run violation reports surface these fields verbatim.
    """

    def __init__(self, dst=None, request_type: str | None = None,
                 attempts: int | None = None, message: str | None = None):
        if (request_type is None and attempts is None and message is None
                and isinstance(dst, str)):
            # Legacy calling convention: RpcTimeout("free-form message").
            message, dst = dst, None
        self.dst = dst
        self.request_type = request_type
        self.attempts = attempts
        if message is None:
            message = (
                f"no response from {dst} for {request_type} "
                f"after {attempts} attempt(s)"
            )
        super().__init__(message)
