"""Server-side RPC dispatch: typed handler registry + request-id dedup.

:class:`RpcDispatcher` factors out what every daemon's ``run`` loop used to
hand-roll: recognise :class:`~repro.rpc.wire.Request` frames, spawn one handler
process per request, charge a per-request-type service delay, convert
domain exceptions to wire error responses, and (optionally) replay cached
responses so client retries are idempotent.

Handlers are registered per request *type*:

* a handler may return a response (the dispatcher replies), or ``None``
  (deferred reply — the handler parks the ``(src, request_id)`` pair and
  answers later through :meth:`RpcDispatcher.reply`);
* a handler may be a plain function or a generator (it then runs inside
  the spawned handler process and may yield simulation events);
* ``delay`` is a float or a ``callable(payload) -> float`` charged
  *before* the handler runs (the calibrated service time);
* ``pre_dispatch`` / ``post_dispatch`` hook lists are per-dispatcher
  attachment points; additionally every dispatcher fires the
  *per-simulation* ``on_dispatch`` / ``on_dispatch_done`` hooks on
  :class:`~repro.rpc.state.RpcState` — the server-side half of the
  :mod:`repro.obs` tracing surface. All hooks are isolated: a raising
  hook is logged, never propagated into the dispatch path.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.net.address import Address
from repro.rpc.state import rpc_state, run_hooks
from repro.rpc.wire import Reply, Request

__all__ = ["RpcDispatcher", "RequestHandler", "ResponseCache"]

_MISSING = object()

#: Cache bounds matching the historical PBS-server dedup cache: trim the
#: oldest half once the size crosses the limit.
CACHE_LIMIT = 4096
CACHE_EVICT = 2048


class ResponseCache:
    """Request-id → response dedup cache (client retries get a replay)."""

    def __init__(self, limit: int = CACHE_LIMIT, evict: int = CACHE_EVICT):
        self.limit = limit
        self.evict = evict
        self._entries: dict[int, object] = {}

    def get(self, request_id: int):
        return self._entries.get(request_id, _MISSING)

    def put(self, request_id: int, response) -> None:
        self._entries[request_id] = response
        if len(self._entries) > self.limit:
            for key in list(self._entries)[: self.evict]:
                del self._entries[key]

    def __contains__(self, request_id: int) -> bool:
        return request_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class RequestHandler:
    """One registry entry: the handler callable + its service delay."""

    __slots__ = ("fn", "delay")

    def __init__(self, fn: Callable, delay: float | Callable[[Any], float] = 0.0):
        self.fn = fn
        self.delay = delay

    def delay_for(self, payload) -> float:
        return self.delay(payload) if callable(self.delay) else self.delay


class RpcDispatcher:
    """Typed request dispatch for one daemon endpoint.

    Parameters
    ----------
    daemon:
        The owning :class:`~repro.cluster.daemon.Daemon` (provides
        ``endpoint``, ``kernel``, ``spawn``, ``tag``, ``running``).
    cache:
        Optional :class:`ResponseCache`; when present, a request id seen
        before is answered with the cached response and the handler is
        *not* re-run.
    on_error:
        Optional ``callable(exc) -> response | None`` mapping handler
        exceptions to wire responses; ``None`` (or absent) re-raises.
    fallback:
        Optional ``callable(src, request_id, payload) -> response | None``
        for unregistered request types (no delay charged).
    """

    def __init__(
        self,
        daemon,
        *,
        cache: ResponseCache | None = None,
        on_error: Callable[[BaseException], Any] | None = None,
        fallback: Callable[[Address, int, Any], Any] | None = None,
    ):
        self.daemon = daemon
        self.cache = cache
        self.on_error = on_error
        self.fallback = fallback
        self._handlers: dict[type, RequestHandler] = {}
        #: Called as ``hook(src, request_id, payload)`` before the handler.
        self.pre_dispatch: list[Callable] = []
        #: Called as ``hook(src, request_id, payload, response)`` after the
        #: reply (response is None for deferred replies).
        self.post_dispatch: list[Callable] = []
        self._state = rpc_state(daemon.node.network)

    def register(
        self,
        req_type: type | tuple[type, ...],
        fn: Callable,
        *,
        delay: float | Callable[[Any], float] = 0.0,
    ) -> None:
        """Route requests of *req_type* (a type or tuple of types) to *fn*."""
        entry = RequestHandler(fn, delay)
        for cls in req_type if isinstance(req_type, tuple) else (req_type,):
            self._handlers[cls] = entry

    def handle_frame(self, src: Address, frame: Any) -> bool:
        """Dispatch *frame* if it is an RPC request; returns False otherwise
        (the daemon's run loop handles its other frame kinds)."""
        if not isinstance(frame, Request):
            return False
        self.daemon.spawn(
            self._handle(src, frame.request_id, frame.payload),
            name=f"{self.daemon.tag}-rpc{frame.request_id}",
        )
        return True

    def reply(self, dst: Address, request_id: int, response) -> None:
        """Send (and, when a cache is configured, record) a response."""
        if self.cache is not None:
            self.cache.put(request_id, response)
        daemon = self.daemon
        if daemon.running and not daemon.endpoint.closed:
            daemon.endpoint.send(dst, Reply(request_id, response))

    def _handle(self, src: Address, request_id: int, payload):
        daemon = self.daemon
        if self.cache is not None:
            cached = self.cache.get(request_id)
            if cached is not _MISSING:
                daemon.endpoint.send(src, Reply(request_id, cached))
                return
        run_hooks(self.pre_dispatch, src, request_id, payload,
                  log=daemon.log, where=daemon.tag)
        run_hooks(self._state.on_dispatch, daemon, src, request_id, payload,
                  log=daemon.log, where=daemon.tag)
        entry = self._handlers.get(type(payload))
        try:
            if entry is None:
                response = (
                    self.fallback(src, request_id, payload)
                    if self.fallback is not None else None
                )
            else:
                delay = entry.delay_for(payload)
                if delay:
                    yield daemon.kernel.timeout(delay)
                result = entry.fn(src, request_id, payload)
                if inspect.isgenerator(result):
                    result = yield from result
                response = result
        except BaseException as exc:
            response = self.on_error(exc) if self.on_error is not None else None
            if response is None:
                raise
        if response is not None:
            self.reply(src, request_id, response)
        run_hooks(self.post_dispatch, src, request_id, payload, response,
                  log=daemon.log, where=daemon.tag)
        run_hooks(self._state.on_dispatch_done, daemon, src, request_id,
                  payload, response, log=daemon.log, where=daemon.tag)
