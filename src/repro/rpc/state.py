"""Per-simulation RPC state: id allocators, timeout log, dispatch hooks.

Historically request ids, ephemeral ports and the various uuid/marker
counters were module-level ``itertools.count`` globals, which made the
*second* simulation in one interpreter see different wire frames (ids are
part of the datagram, and the :mod:`repro.net.codec` encoding charges the
shared medium by exact frame size) and therefore drift in timing. All of them
now live on an :class:`RpcState` hung off the :class:`~repro.net.network.Network`
— one per simulation — so back-to-back runs are bit-identical.

The state object also owns the observability surface of the substrate:

* a bounded log of :class:`TimeoutRecord` entries (every exhausted RPC),
  surfaced by chaos-run reports;
* ``on_request`` / ``on_response`` client-side hook lists plus
  ``on_dispatch`` / ``on_dispatch_done`` server-side lists — the tracing/
  metrics attachment points :mod:`repro.obs` registers into.

Hooks are observers, never participants: :func:`run_hooks` isolates a
raising hook (logged, not propagated) so a buggy collector cannot break an
RPC conversation.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.net.network import Network

__all__ = ["RpcState", "TimeoutRecord", "rpc_state", "run_hooks"]

#: First request id handed out in a fresh simulation (matches the historical
#: module-level counter so traces are unchanged).
FIRST_REQUEST_ID = 1
#: First ephemeral client port (matches the historical module-level counter).
FIRST_EPHEMERAL_PORT = 30000
#: How many exhausted-call records the timeout log retains.
TIMEOUT_LOG_LIMIT = 256


@dataclass(frozen=True)
class TimeoutRecord:
    """One exhausted RPC conversation (all attempts unanswered)."""

    time: float
    src: str
    dst: Any
    request_type: str
    attempts: int

    def describe(self) -> str:
        return (
            f"t={self.time:.3f} {self.src} -> {self.dst}: "
            f"{self.request_type} unanswered after {self.attempts} attempt(s)"
        )


class RpcState:
    """Allocators + hook points for one simulation (one per Network)."""

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}
        #: Bounded log of exhausted calls, oldest first.
        self.timeouts: deque[TimeoutRecord] = deque(maxlen=TIMEOUT_LOG_LIMIT)
        #: Called as ``hook(node, server, request_id, payload, attempt)``
        #: just before each request datagram is sent.
        self.on_request: list[Callable] = []
        #: Called as ``hook(node, server, request_id, payload, response)``
        #: when a matching response arrives — or, for an exhausted
        #: conversation, with the :class:`TimeoutRecord` as the response
        #: marker, so hooks see every conversation exactly once.
        self.on_response: list[Callable] = []
        #: Called as ``hook(daemon, src, request_id, payload)`` when any
        #: dispatcher in this simulation starts handling a request
        #: (cache replays excluded — no handler runs).
        self.on_dispatch: list[Callable] = []
        #: Called as ``hook(daemon, src, request_id, payload, response)``
        #: after the handler finished (response is None for deferred
        #: replies answered later via ``RpcDispatcher.reply``).
        self.on_dispatch_done: list[Callable] = []

    def next_id(self, family: str, start: int = 1) -> int:
        """Next value from the named per-simulation counter family.

        Families in use: ``"request"`` (RPC request ids), ``"port"``
        (ephemeral client ports), and uuid/marker families owned by the
        stacks above (e.g. ``"joshua-uuid"``, ``"joshua-marker"``).
        """
        counter = self._counters.get(family)
        if counter is None:
            counter = self._counters[family] = itertools.count(start)
        return next(counter)

    def next_request_id(self) -> int:
        return self.next_id("request", FIRST_REQUEST_ID)

    def next_port(self) -> int:
        return self.next_id("port", FIRST_EPHEMERAL_PORT)

    def record_timeout(self, record: TimeoutRecord) -> None:
        self.timeouts.append(record)


def run_hooks(hooks: list[Callable], *args, log=None, where: str = "rpc") -> None:
    """Invoke observer *hooks*, isolating failures.

    A raising hook is a bug in the observer, not in the conversation it
    watches: the exception is logged (when a :class:`~repro.util.simlog.SimLogger`
    is supplied) and swallowed, never propagated into the RPC path.
    """
    for hook in hooks:
        try:
            hook(*args)
        except Exception as exc:
            if log is not None:
                log.error(where, f"observer hook {hook!r} raised: {exc!r}")


def rpc_state(network: Network) -> RpcState:
    """The per-simulation :class:`RpcState` for *network* (lazily created)."""
    state = getattr(network, "_rpc_state", None)
    if state is None:
        state = RpcState()
        network._rpc_state = state
    return state
