"""``repro.rpc`` — the shared typed RPC/dispatch substrate.

Every request/response conversation in the reproduction (PBS user commands,
scheduler polls, server→mom dispatch, JOSHUA client/mom traffic, the generic
active/active client) rides on this one layer instead of re-implementing
framing, retries and dedup per stack:

* :func:`~repro.rpc.client.call` — the client coroutine: ephemeral-port
  bind, ``("RPC", id, payload)`` framing, timeout/retry/backoff per a
  :class:`~repro.rpc.policy.RetryPolicy`;
* :func:`~repro.rpc.client.failover_call` — the same, iterated over a
  replica list with pluggable skip/reject rules (exactly-once clients);
* :class:`~repro.rpc.server.RpcDispatcher` — server side: a typed
  handler registry with per-request-type service delays, an optional
  request-id dedup :class:`~repro.rpc.server.ResponseCache`, and pre/post
  dispatch hook points for tracing and metrics;
* :func:`~repro.rpc.state.rpc_state` — per-simulation allocators (request
  ids, ephemeral ports, uuid/marker families) plus the bounded
  :class:`~repro.rpc.state.TimeoutRecord` log chaos reports surface.

Layering: ``util → sim → net → rpc → obs → gcs → pbs → joshua`` — this
package sits directly on :mod:`repro.net` and knows nothing about the
protocol stacks above it; :mod:`repro.obs` registers into the hook lists
on :class:`~repro.rpc.state.RpcState` from one layer up.
"""

from repro.rpc.client import call, failover_call
from repro.rpc.errors import RpcTimeout
from repro.rpc.policy import DEFAULT_POLICY, RetryPolicy
from repro.rpc.server import RequestHandler, ResponseCache, RpcDispatcher
from repro.rpc.state import RpcState, TimeoutRecord, rpc_state

__all__ = [
    "call",
    "failover_call",
    "RpcTimeout",
    "RetryPolicy",
    "DEFAULT_POLICY",
    "RpcDispatcher",
    "RequestHandler",
    "ResponseCache",
    "RpcState",
    "TimeoutRecord",
    "rpc_state",
]
