"""Workload generators.

Three shapes cover the paper's scenarios and the motivating use cases:

* :class:`BurstWorkload` — N back-to-back submissions, as fast as the
  client can issue them (Figure 11's throughput measurement; the paper's
  "submitting a large number of jobs at once").
* :class:`PoissonWorkload` — exponential inter-arrivals, the steady-state
  user population the availability comparisons use.
* :class:`TraceWorkload` — explicit (time, spec) pairs for scripted
  scenarios and regression tests.

A workload is an iterable of ``(delay_before_submit, JobSpec)`` pairs, so
drivers stay trivial: wait the delay, submit, repeat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.pbs.job import JobSpec
from repro.util.errors import ReproError

__all__ = ["BurstWorkload", "PoissonWorkload", "DiurnalWorkload", "TraceWorkload"]


def _default_spec(index: int, walltime: float) -> JobSpec:
    return JobSpec(name=f"job{index:04d}", walltime=walltime)


@dataclass(frozen=True)
class BurstWorkload:
    """*count* submissions with no think time between them."""

    count: int
    walltime: float = 600.0

    def __post_init__(self):
        if self.count < 1:
            raise ReproError("burst needs at least one job")

    def __iter__(self) -> Iterator[tuple[float, JobSpec]]:
        for index in range(self.count):
            yield 0.0, _default_spec(index, self.walltime)

    def __len__(self) -> int:
        return self.count


@dataclass(frozen=True)
class PoissonWorkload:
    """Exponential inter-arrival times with mean ``1/rate`` seconds.

    Walltimes are drawn uniformly from ``walltime_range`` — enough spread
    to interleave queueing and execution.
    """

    count: int
    rate: float
    walltime_range: tuple[float, float] = (5.0, 30.0)
    seed: int = 0

    def __post_init__(self):
        if self.count < 1 or self.rate <= 0:
            raise ReproError("poisson workload needs count >= 1 and rate > 0")
        lo, hi = self.walltime_range
        if lo <= 0 or hi < lo:
            raise ReproError("invalid walltime range")

    def __iter__(self) -> Iterator[tuple[float, JobSpec]]:
        rng = np.random.default_rng(self.seed)
        lo, hi = self.walltime_range
        for index in range(self.count):
            delay = float(rng.exponential(1.0 / self.rate))
            walltime = float(rng.uniform(lo, hi))
            yield delay, JobSpec(name=f"job{index:04d}", walltime=walltime)

    def __len__(self) -> int:
        return self.count


@dataclass(frozen=True)
class DiurnalWorkload:
    """A day-shaped submission pattern: a sinusoidal rate peaking mid-day.

    What a production head node actually sees — quiet nights, busy
    afternoons — used by the endurance bench that replays the paper's
    multi-day stress scenario. The rate at time *t* (seconds) is::

        rate(t) = base_rate * (1 + amplitude * sin(2*pi*t/day - pi/2))

    so the day starts at the trough. Submission times come from thinning a
    Poisson process at the peak rate (deterministic given *seed*).
    """

    count: int
    base_rate: float
    amplitude: float = 0.8
    day_seconds: float = 86400.0
    walltime_range: tuple[float, float] = (10.0, 120.0)
    seed: int = 0

    def __post_init__(self):
        if self.count < 1 or self.base_rate <= 0:
            raise ReproError("diurnal workload needs count >= 1 and base_rate > 0")
        if not 0.0 <= self.amplitude < 1.0:
            raise ReproError("amplitude must be in [0, 1)")
        lo, hi = self.walltime_range
        if lo <= 0 or hi < lo:
            raise ReproError("invalid walltime range")

    def __iter__(self) -> Iterator[tuple[float, JobSpec]]:
        rng = np.random.default_rng(self.seed)
        lo, hi = self.walltime_range
        peak = self.base_rate * (1.0 + self.amplitude)
        time = 0.0
        emitted = 0
        previous = 0.0
        while emitted < self.count:
            time += float(rng.exponential(1.0 / peak))
            phase = 2.0 * np.pi * time / self.day_seconds - np.pi / 2.0
            rate = self.base_rate * (1.0 + self.amplitude * np.sin(phase))
            if float(rng.random()) < rate / peak:  # thinning
                walltime = float(rng.uniform(lo, hi))
                yield time - previous, JobSpec(
                    name=f"job{emitted:05d}", walltime=walltime
                )
                previous = time
                emitted += 1

    def __len__(self) -> int:
        return self.count


@dataclass(frozen=True)
class TraceWorkload:
    """Explicit ``(absolute_time, spec)`` schedule."""

    entries: tuple = field(default=())

    def __iter__(self) -> Iterator[tuple[float, JobSpec]]:
        previous = 0.0
        for time, spec in sorted(self.entries, key=lambda e: e[0]):
            if time < previous:
                raise ReproError("trace times must be non-decreasing")
            yield time - previous, spec
            previous = time

    def __len__(self) -> int:
        return len(self.entries)
