"""Workload generators.

Three shapes cover the paper's scenarios and the motivating use cases:

* :class:`BurstWorkload` — N back-to-back submissions, as fast as the
  client can issue them (Figure 11's throughput measurement; the paper's
  "submitting a large number of jobs at once").
* :class:`PoissonWorkload` — exponential inter-arrivals, the steady-state
  user population the availability comparisons use.
* :class:`TraceWorkload` — explicit (time, spec) pairs for scripted
  scenarios and regression tests.

A workload is an iterable of ``(delay_before_submit, JobSpec)`` pairs, so
drivers stay trivial: wait the delay, submit, repeat.

Those pairs are **closed-loop** by construction: the driver issues the
next command only after the previous one returned, so offered load sags
exactly when the system slows down — fine for a single interactive user,
wrong for measuring capacity. :class:`OpenLoopWorkload` is the open-loop
front-end (PROTOCOLS.md §12): it emits :class:`OpenLoopRequest` records at
*absolute* times drawn from an arrival process (Poisson / bursty on-off /
diurnal), attributed to a client population, with heavy-tailed job sizes
and a configurable read fraction. The schedule never waits on the system
under test — each request is issued at its appointed time on its owning
client's session, concurrently with whatever is still in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.pbs.job import JobSpec
from repro.util.errors import ReproError

__all__ = [
    "BurstWorkload",
    "PoissonWorkload",
    "DiurnalWorkload",
    "TraceWorkload",
    "OpenLoopRequest",
    "OpenLoopWorkload",
]


def _default_spec(index: int, walltime: float) -> JobSpec:
    return JobSpec(name=f"job{index:04d}", walltime=walltime)


@dataclass(frozen=True)
class BurstWorkload:
    """*count* submissions with no think time between them."""

    count: int
    walltime: float = 600.0

    def __post_init__(self):
        if self.count < 1:
            raise ReproError("burst needs at least one job")

    def __iter__(self) -> Iterator[tuple[float, JobSpec]]:
        for index in range(self.count):
            yield 0.0, _default_spec(index, self.walltime)

    def __len__(self) -> int:
        return self.count


@dataclass(frozen=True)
class PoissonWorkload:
    """Exponential inter-arrival times with mean ``1/rate`` seconds.

    Walltimes are drawn uniformly from ``walltime_range`` — enough spread
    to interleave queueing and execution.
    """

    count: int
    rate: float
    walltime_range: tuple[float, float] = (5.0, 30.0)
    seed: int = 0

    def __post_init__(self):
        if self.count < 1 or self.rate <= 0:
            raise ReproError("poisson workload needs count >= 1 and rate > 0")
        lo, hi = self.walltime_range
        if lo <= 0 or hi < lo:
            raise ReproError("invalid walltime range")

    def __iter__(self) -> Iterator[tuple[float, JobSpec]]:
        rng = np.random.default_rng(self.seed)
        lo, hi = self.walltime_range
        for index in range(self.count):
            delay = float(rng.exponential(1.0 / self.rate))
            walltime = float(rng.uniform(lo, hi))
            yield delay, JobSpec(name=f"job{index:04d}", walltime=walltime)

    def __len__(self) -> int:
        return self.count


@dataclass(frozen=True)
class DiurnalWorkload:
    """A day-shaped submission pattern: a sinusoidal rate peaking mid-day.

    What a production head node actually sees — quiet nights, busy
    afternoons — used by the endurance bench that replays the paper's
    multi-day stress scenario. The rate at time *t* (seconds) is::

        rate(t) = base_rate * (1 + amplitude * sin(2*pi*t/day - pi/2))

    so the day starts at the trough. Submission times come from thinning a
    Poisson process at the peak rate (deterministic given *seed*).
    """

    count: int
    base_rate: float
    amplitude: float = 0.8
    day_seconds: float = 86400.0
    walltime_range: tuple[float, float] = (10.0, 120.0)
    seed: int = 0

    def __post_init__(self):
        if self.count < 1 or self.base_rate <= 0:
            raise ReproError("diurnal workload needs count >= 1 and base_rate > 0")
        if not 0.0 <= self.amplitude < 1.0:
            raise ReproError("amplitude must be in [0, 1)")
        lo, hi = self.walltime_range
        if lo <= 0 or hi < lo:
            raise ReproError("invalid walltime range")

    def __iter__(self) -> Iterator[tuple[float, JobSpec]]:
        rng = np.random.default_rng(self.seed)
        lo, hi = self.walltime_range
        peak = self.base_rate * (1.0 + self.amplitude)
        time = 0.0
        emitted = 0
        previous = 0.0
        while emitted < self.count:
            time += float(rng.exponential(1.0 / peak))
            phase = 2.0 * np.pi * time / self.day_seconds - np.pi / 2.0
            rate = self.base_rate * (1.0 + self.amplitude * np.sin(phase))
            if float(rng.random()) < rate / peak:  # thinning
                walltime = float(rng.uniform(lo, hi))
                yield time - previous, JobSpec(
                    name=f"job{emitted:05d}", walltime=walltime
                )
                previous = time
                emitted += 1

    def __len__(self) -> int:
        return self.count


@dataclass(frozen=True)
class OpenLoopRequest:
    """One scheduled front-end request.

    ``time`` is absolute (seconds from workload start — open loop, not a
    delay); ``client`` indexes the client population; ``kind`` is
    ``"jsub"`` (with a ``spec``) or ``"jstat"`` (``spec`` is ``None``)."""

    time: float
    client: int
    kind: str
    spec: JobSpec | None = None


@dataclass(frozen=True)
class OpenLoopWorkload:
    """Open-loop request schedule over a client population.

    Arrivals come from thinning a Poisson process at the shape's peak
    rate, so all three shapes share one deterministic sampler:

    * ``"poisson"`` — constant *rate* (memoryless steady state);
    * ``"bursty"`` — on/off modulation: the first ``1/burst_factor`` of
      every ``burst_period`` runs at ``burst_factor * rate``, the rest is
      silent — same mean rate, arbitrarily spikier;
    * ``"diurnal"`` — the sinusoidal day shape of
      :class:`DiurnalWorkload`, starting at the trough.

    Each arrival is a read (``jstat``) with probability ``read_fraction``,
    else a submission whose walltime is heavy-tailed Pareto
    (``scale * (1 + Lomax(shape))``, capped) — most jobs are small, a few
    are enormous, like real batch queues. Requests are attributed
    uniformly to ``clients`` distinct clients; drivers route each to that
    client's own gateway session so read-your-writes floors mean what
    they should.
    """

    count: int
    rate: float
    arrival: str = "poisson"
    read_fraction: float = 0.0
    clients: int = 100
    walltime_shape: float = 1.5
    walltime_scale: float = 10.0
    walltime_cap: float = 3600.0
    burst_factor: float = 8.0
    burst_period: float = 20.0
    amplitude: float = 0.8
    day_seconds: float = 86400.0
    seed: int = 0

    def __post_init__(self):
        if self.count < 1 or self.rate <= 0:
            raise ReproError("open-loop workload needs count >= 1 and rate > 0")
        if self.arrival not in ("poisson", "bursty", "diurnal"):
            raise ReproError(f"unknown arrival shape {self.arrival!r}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ReproError("read_fraction must be in [0, 1]")
        if self.clients < 1:
            raise ReproError("need at least one client")
        if self.walltime_shape <= 0 or self.walltime_scale <= 0:
            raise ReproError("invalid walltime tail parameters")
        if self.burst_factor < 1.0 or self.burst_period <= 0:
            raise ReproError("invalid burst modulation")
        if not 0.0 <= self.amplitude < 1.0:
            raise ReproError("amplitude must be in [0, 1)")

    def _peak_rate(self) -> float:
        if self.arrival == "bursty":
            return self.rate * self.burst_factor
        if self.arrival == "diurnal":
            return self.rate * (1.0 + self.amplitude)
        return self.rate

    def _rate_at(self, time: float) -> float:
        if self.arrival == "bursty":
            on = (time % self.burst_period) < self.burst_period / self.burst_factor
            return self.rate * self.burst_factor if on else 0.0
        if self.arrival == "diurnal":
            phase = 2.0 * np.pi * time / self.day_seconds - np.pi / 2.0
            return self.rate * (1.0 + self.amplitude * np.sin(phase))
        return self.rate

    def __iter__(self) -> Iterator[OpenLoopRequest]:
        rng = np.random.default_rng(self.seed)
        peak = self._peak_rate()
        time = 0.0
        emitted = 0
        while emitted < self.count:
            time += float(rng.exponential(1.0 / peak))
            if float(rng.random()) >= self._rate_at(time) / peak:  # thinning
                continue
            client = int(rng.integers(self.clients))
            if float(rng.random()) < self.read_fraction:
                yield OpenLoopRequest(time, client, "jstat")
            else:
                walltime = min(
                    self.walltime_scale
                    * (1.0 + float(rng.pareto(self.walltime_shape))),
                    self.walltime_cap,
                )
                yield OpenLoopRequest(
                    time, client, "jsub",
                    JobSpec(name=f"job{emitted:05d}", walltime=walltime),
                )
            emitted += 1

    def __len__(self) -> int:
        return self.count


@dataclass(frozen=True)
class TraceWorkload:
    """Explicit ``(absolute_time, spec)`` schedule."""

    entries: tuple = field(default=())

    def __iter__(self) -> Iterator[tuple[float, JobSpec]]:
        previous = 0.0
        for time, spec in sorted(self.entries, key=lambda e: e[0]):
            if time < previous:
                raise ReproError("trace times must be non-decreasing")
            yield time - previous, spec
            previous = time

    def __len__(self) -> int:
        return len(self.entries)
