"""Shard scaling extension: throughput vs. number of ordering shards.

Not a paper figure — JOSHUA runs one Transis group, so every command in
the system shares a single total order and a single serial executor per
head. The sharded deployment (PROTOCOLS.md §10) partitions the job
namespace by PBS queue across N co-hosted GCS groups: N sequencers on
distinct heads, N serial executors per head, one independent total order
per shard. This experiment measures what that buys and what it must not
cost:

* :func:`shard_scaling` — the same concurrent burst, spread across every
  shard's queue namespace, at shards = 1/2/4. Aggregate committed
  commands per second should rise monotonically with the shard count:
  the single group's sequencer + SAFE-stability pipeline is the
  serialization point, and sharding divides it.
* :func:`sequencer_kill` — kill one shard's sequencer mid-stream (its
  GCS endpoint on the sequencer head goes dark — the co-hosted member of
  the *other* shard on that head keeps running, the sharpest isolation
  probe) and measure per-shard commit rates before / while the victim
  shard's view change runs / after failover. The undisturbed shard's
  commit stream must not stall; the victim shard must resume under its
  new sequencer.

``benchmarks/bench_shard_scaling.py`` snapshots both results to
``BENCH_shard_scaling.json``.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.gcs.config import GroupConfig
from repro.joshua.config import JOSHUA_GROUP_CONFIG
from repro.joshua.deploy import build_joshua_stack
from repro.joshua.server import JOSHUA_GCS_PORT
from repro.joshua.shard import queue_for_shard
from repro.obs.collector import attach_collector
from repro.obs.metrics import MetricsRegistry
from repro.util.errors import NoActiveHeadError

__all__ = ["measure_shard_burst", "shard_scaling", "sequencer_kill"]

#: Fast group timings for the sequencer-kill run: failure detection and
#: the resulting view change must complete inside a short measured window.
#: (The scaling burst keeps the paper-calibrated JOSHUA_GROUP_CONFIG.)
KILL_GROUP_CONFIG = GroupConfig(
    heartbeat_interval=0.1,
    suspect_timeout=0.35,
    flush_timeout=0.8,
    retransmit_interval=0.05,
)


def measure_shard_burst(
    shards: int, *, heads: int = 4, computes: int = 2, jobs: int = 48,
    seed: int = 1, registry: MetricsRegistry | None = None,
) -> dict:
    """One concurrent burst of *jobs* jsubs, round-robined across every
    shard's queue namespace, against a *shards*-way sharded stack.

    Returns the aggregate committed-commands/sec on the client's head::

        {"shards", "heads", "jobs", "elapsed_s", "committed",
         "committed_per_s", "per_shard_committed"}
    """
    cluster = Cluster(head_count=heads, compute_count=computes, seed=seed)
    stack = build_joshua_stack(
        cluster, group_config=JOSHUA_GROUP_CONFIG, shards=shards
    )
    client = stack.client(node="head0", prefer="head0")
    if registry is not None:
        attach_collector(cluster.network, registry=registry)
    cluster.run(until=1.0)
    kernel = cluster.kernel
    joshua = stack.joshua("head0")
    before = [replica.stats["executed"] for replica in joshua.shards]
    start = kernel.now
    procs = [
        kernel.spawn(client.jsub(
            name=f"shard-burst{i}", walltime=100_000.0,
            queue=queue_for_shard(i % shards, shards),
        ))
        for i in range(jobs)
    ]
    for process in procs:
        cluster.run(until=process)
    elapsed = kernel.now - start
    per_shard = [
        replica.stats["executed"] - b
        for replica, b in zip(joshua.shards, before)
    ]
    committed = sum(per_shard)
    return {
        "shards": shards,
        "heads": heads,
        "jobs": jobs,
        "elapsed_s": round(elapsed, 4),
        "committed": committed,
        "committed_per_s": round(committed / elapsed, 2),
        "per_shard_committed": per_shard,
    }


def shard_scaling(
    shard_counts=(1, 2, 4), *, heads: int = 4, computes: int = 2,
    jobs: int = 48, seed: int = 1,
    registry: MetricsRegistry | None = None,
) -> list[dict]:
    """One :func:`measure_shard_burst` row per shard count, same burst."""
    return [
        measure_shard_burst(n, heads=heads, computes=computes, jobs=jobs,
                            seed=seed, registry=registry)
        for n in shard_counts
    ]


def sequencer_kill(
    *, shards: int = 2, heads: int = 3, computes: int = 2, seed: int = 1,
    think: float = 0.02, before_s: float = 1.0, dead_s: float = 0.3,
    settle_s: float = 2.5, after_s: float = 1.0,
) -> dict:
    """Kill shard 1's sequencer under continuous per-shard load.

    One submission stream per shard runs throughout. After *before_s* of
    steady state, shard 1's GCS endpoint on its sequencer head is
    blackholed — that shard's sequencer is dead, while the same head's
    shard-0 member keeps participating. The *dead_s* window sits inside
    the suspicion interval (no view change yet: shard 1 cannot order,
    shard 0 must not care), then after *settle_s* of failover the
    *after_s* window shows shard 1 committing again under its new
    sequencer. Commit counts come from a surviving non-victim head.
    """
    cluster = Cluster(head_count=heads, compute_count=computes,
                      login_node=True, seed=seed)
    stack = build_joshua_stack(
        cluster, group_config=KILL_GROUP_CONFIG, shards=shards
    )
    kernel = cluster.kernel
    cluster.run(until=2.0)  # every shard's full view forms

    joshua = stack.joshua("head0")
    victim_addr = joshua.shards[1].group.engine.sequencer_of(
        joshua.shards[1].group.view
    )
    victim = victim_addr.node
    observer = "head0" if victim != "head0" else "head1"
    observed = stack.joshua(observer)
    client = stack.client(node="login", prefer=observer)

    def stream(shard: int):
        i = 0
        while True:
            try:
                yield from client.jsub(
                    name=f"seqkill-s{shard}-{i}", walltime=100_000.0,
                    queue=queue_for_shard(shard, shards),
                )
            except NoActiveHeadError:
                pass
            i += 1
            yield kernel.timeout(think)

    for shard in range(shards):
        kernel.spawn(stream(shard), name=f"seqkill-stream-{shard}")

    def counts():
        return [replica.stats["executed"] for replica in observed.shards]

    def window(duration: float) -> dict:
        start = counts()
        cluster.run(until=kernel.now + duration)
        committed = [now - then for now, then in zip(counts(), start)]
        return {
            "duration_s": duration,
            "committed": committed,
            "committed_per_s": [round(c / duration, 1) for c in committed],
        }

    before = window(before_s)
    token = cluster.network.add_drop_filter(
        lambda src, dst, payload: (
            victim in (src.node, dst.node)
            and JOSHUA_GCS_PORT + 1 in (src.port, dst.port)
        )
    )
    sequencer_dead = window(dead_s)
    cluster.run(until=kernel.now + settle_s)  # exclusion + new sequencer
    after = window(after_s)
    cluster.network.remove_drop_filter(token)

    new_sequencer = observed.shards[1].group.engine.sequencer_of(
        observed.shards[1].group.view
    )
    return {
        "shards": shards,
        "heads": heads,
        "victim_sequencer": victim,
        "observer": observer,
        "new_shard1_sequencer": new_sequencer.node,
        "windows": {
            "before": before,
            "sequencer_dead": sequencer_dead,
            "after_failover": after,
        },
    }
