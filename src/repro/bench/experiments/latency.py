"""Figure 10: job submission latency, single vs. multiple head nodes.

Paper setup: a user on a head node submits one job at a time; measured is
the wall time of the submission command. Rows:

=================  =====  ==========
System             heads  latency
=================  =====  ==========
TORQUE             1      98 ms
JOSHUA/TORQUE      1      134 ms
JOSHUA/TORQUE      2      265 ms
JOSHUA/TORQUE      3      304 ms
JOSHUA/TORQUE      4      349 ms
=================  =====  ==========

The reproduction drives the same measurement through the simulated stack
(client on ``head0``, matching the paper's attribution of the single-head
overhead to on-node communication).
"""

from __future__ import annotations

from repro.bench.metrics import LatencySample, summarize
from repro.cluster.cluster import Cluster
from repro.joshua.deploy import build_joshua_stack
from repro.obs.collector import attach_collector
from repro.obs.metrics import MetricsRegistry
from repro.pbs.stack import build_pbs_stack

__all__ = ["PAPER_FIGURE10", "measure_torque_latency", "measure_joshua_latency", "figure10"]

#: The paper's Figure 10 in milliseconds.
PAPER_FIGURE10 = {
    ("TORQUE", 1): 98.0,
    ("JOSHUA/TORQUE", 1): 134.0,
    ("JOSHUA/TORQUE", 2): 265.0,
    ("JOSHUA/TORQUE", 3): 304.0,
    ("JOSHUA/TORQUE", 4): 349.0,
}


def measure_torque_latency(
    *, trials: int = 10, seed: int = 1, registry: MetricsRegistry | None = None
) -> float:
    """Mean plain-TORQUE qsub latency (seconds, simulated)."""
    cluster = Cluster(head_count=1, compute_count=2, seed=seed)
    stack = build_pbs_stack(cluster)
    if registry is not None:
        # Passive (see test_obs_passive): the measured numbers are
        # bit-identical with or without the collector attached.
        attach_collector(cluster.network, registry=registry)
    client = stack.client()  # on the head node, like the paper
    kernel = cluster.kernel
    samples = []
    for index in range(trials):
        start = kernel.now
        process = kernel.spawn(client.qsub(name=f"lat{index}", walltime=10_000.0))
        cluster.run(until=process)
        samples.append(LatencySample(start, kernel.now))
    return summarize(samples).mean


def measure_joshua_latency(
    heads: int, *, trials: int = 10, seed: int = 1,
    registry: MetricsRegistry | None = None,
) -> float:
    """Mean jsub latency with *heads* active head nodes (seconds)."""
    cluster = Cluster(head_count=heads, compute_count=2, seed=seed)
    stack = build_joshua_stack(cluster)
    if registry is not None:
        attach_collector(cluster.network, registry=registry)
    cluster.run(until=1.0)  # let heartbeats settle
    client = stack.client(node="head0", prefer="head0")
    kernel = cluster.kernel
    samples = []
    for index in range(trials):
        start = kernel.now
        process = kernel.spawn(client.jsub(name=f"lat{index}", walltime=10_000.0))
        cluster.run(until=process)
        samples.append(LatencySample(start, kernel.now))
    return summarize(samples).mean


def figure10(
    *, trials: int = 10, seed: int = 1, registry: MetricsRegistry | None = None
) -> list[dict]:
    """Regenerate Figure 10; returns one row per system configuration.

    With a *registry*, every trial's RPC conversations, GCS ordering delays
    and job phases accumulate into it across all configurations (the
    per-phase decomposition behind the headline latency numbers).
    """
    rows = []
    torque_ms = measure_torque_latency(
        trials=trials, seed=seed, registry=registry
    ) * 1000
    rows.append(_row("TORQUE", 1, torque_ms, torque_ms))
    joshua_baseline = None
    for heads in (1, 2, 3, 4):
        measured_ms = measure_joshua_latency(
            heads, trials=trials, seed=seed, registry=registry
        ) * 1000
        if joshua_baseline is None:
            joshua_baseline = measured_ms
        rows.append(_row("JOSHUA/TORQUE", heads, measured_ms, torque_ms))
    return rows


def _row(system: str, heads: int, measured_ms: float, torque_ms: float) -> dict:
    paper_ms = PAPER_FIGURE10[(system, heads)]
    return {
        "system": system,
        "heads": heads,
        "measured_ms": round(measured_ms, 1),
        "paper_ms": paper_ms,
        "measured_overhead_pct": round(100 * (measured_ms - torque_ms) / torque_ms, 0),
        "paper_overhead_pct": round(100 * (paper_ms - 98.0) / 98.0, 0),
    }
