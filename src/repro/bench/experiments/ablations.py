"""Ablation studies on the design choices DESIGN.md calls out.

Four sweeps, each isolating one mechanism:

* **ordering engine** — sequencer vs. token ring: multicast delivery
  latency as the group grows (the sequencer centralises ordering work; the
  token spreads it at the cost of rotation latency);
* **sequencer batching** — ORDER-message batching delay vs. burst
  delivery time (classic latency/throughput trade);
* **failure detection** — suspect timeout vs. time-to-new-view after a
  crash (the knob behind "how long does a membership change take", which
  bounds JOSHUA's window of degraded liveness for SAFE traffic);
* **stability model** — the deferred-ack slot vs. jsub latency, showing
  how much of Figure 10's per-head growth the calibrated ack model
  contributes.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.gcs.config import GroupConfig
from repro.gcs.member import GroupMember, boot_static_group
from repro.gcs.messages import SAFE
from repro.joshua.config import JOSHUA_GROUP_CONFIG
from repro.joshua.deploy import build_joshua_stack
from repro.net.network import Network
from repro.sim.kernel import Kernel

__all__ = [
    "ordering_engine_latency",
    "sequencer_batching",
    "failure_detection_sweep",
    "stable_slot_sweep",
]

GCS_PORT = 9


def _group(n: int, config: GroupConfig, seed: int = 1):
    kernel = Kernel(seed=seed)
    network = Network(kernel, shared_medium=False)
    delivered: dict[str, list] = {}
    members: dict[str, GroupMember] = {}
    for i in range(n):
        name = f"n{i}"
        network.register_node(name)
        delivered[name] = []
        members[name] = GroupMember(
            network.bind(name, GCS_PORT),
            config,
            on_deliver=lambda m, nm=name: delivered[nm].append((kernel.now, m)),
        )
    boot_static_group(list(members.values()))
    return kernel, network, members, delivered


def _multicast_latency(n: int, config: GroupConfig, *, service: str, trials: int = 20) -> float:
    """Mean time from multicast to delivery at the sender."""
    kernel, _net, members, delivered = _group(n, config)
    sender = members["n0"]
    kernel.run(until=0.5)
    total = 0.0
    for trial in range(trials):
        start = kernel.now
        count_before = len(delivered["n0"])
        sender.multicast(trial, service=service)
        while len(delivered["n0"]) == count_before:
            kernel.run(until=kernel.now + 0.02)
        total += delivered["n0"][-1][0] - start
    return total / trials


def ordering_engine_latency(*, max_heads: int = 4, trials: int = 20) -> list[dict]:
    """Sequencer vs. token-ring AGREED delivery latency by group size."""
    rows = []
    for heads in range(1, max_heads + 1):
        row: dict = {"heads": heads}
        for engine in ("sequencer", "token"):
            config = GroupConfig(
                heartbeat_interval=0.1,
                suspect_timeout=0.35,
                flush_timeout=0.8,
                retransmit_interval=0.05,
                ordering=engine,
            )
            latency = _multicast_latency(heads, config, service="agreed", trials=trials)
            row[f"{engine}_ms"] = round(latency * 1000, 2)
        rows.append(row)
    return rows


def sequencer_batching(*, batch_delays=(0.0, 0.005, 0.02, 0.05), burst: int = 50) -> list[dict]:
    """ORDER batching delay vs. time to deliver a burst of multicasts."""
    rows = []
    for delay in batch_delays:
        config = GroupConfig(
            heartbeat_interval=0.1,
            suspect_timeout=0.35,
            flush_timeout=0.8,
            retransmit_interval=0.05,
            sequencer_batch_delay=delay,
        )
        kernel, _net, members, delivered = _group(3, config)
        kernel.run(until=0.5)
        start = kernel.now
        for index in range(burst):
            members["n0"].multicast(index)
        while len(delivered["n2"]) < burst:
            kernel.run(until=kernel.now + 0.05)
        elapsed = delivered["n2"][-1][0] - start
        rows.append(
            {
                "batch_delay_ms": delay * 1000,
                "burst_time_ms": round(elapsed * 1000, 2),
                "per_msg_ms": round(elapsed / burst * 1000, 3),
            }
        )
    return rows


def failure_detection_sweep(*, timeouts=(0.2, 0.5, 1.0, 2.0)) -> list[dict]:
    """Suspect timeout vs. time from crash to the survivors' new view."""
    rows = []
    for timeout in timeouts:
        config = GroupConfig(
            heartbeat_interval=timeout / 4,
            suspect_timeout=timeout,
            flush_timeout=max(0.5, timeout),
            retransmit_interval=0.05,
        )
        kernel, network, members, _delivered = _group(3, config, seed=3)
        views: list[float] = []
        members["n1"].on_view = lambda v: views.append(kernel.now)
        kernel.run(until=1.0 + timeout * 2)
        crash_time = kernel.now
        members["n0"].stop()
        network.set_node_up("n0", False)
        kernel.run(until=crash_time + timeout * 6 + 5.0)
        new_views = [t for t in views if t > crash_time]
        rows.append(
            {
                "suspect_timeout_s": timeout,
                "view_change_s": round(new_views[0] - crash_time, 3) if new_views else None,
            }
        )
    return rows


def stable_slot_sweep(*, slots=(0.0, 0.01, 0.029, 0.06), heads: int = 3) -> list[dict]:
    """Deferred-ack slot vs. end-to-end jsub latency (Figure 10's knob)."""
    rows = []
    for slot in slots:
        config = GroupConfig(
            heartbeat_interval=JOSHUA_GROUP_CONFIG.heartbeat_interval,
            suspect_timeout=JOSHUA_GROUP_CONFIG.suspect_timeout,
            flush_timeout=JOSHUA_GROUP_CONFIG.flush_timeout,
            retransmit_interval=JOSHUA_GROUP_CONFIG.retransmit_interval,
            processing_delay=JOSHUA_GROUP_CONFIG.processing_delay,
            stable_ack_base=JOSHUA_GROUP_CONFIG.stable_ack_base,
            stable_ack_slot=slot,
        )
        cluster = Cluster(head_count=heads, compute_count=2, seed=1)
        stack = build_joshua_stack(cluster, group_config=config)
        cluster.run(until=1.0)
        client = stack.client(node="head0", prefer="head0")
        kernel = cluster.kernel
        latencies = []
        for index in range(5):
            start = kernel.now
            process = kernel.spawn(client.jsub(name=f"s{index}", walltime=10_000.0))
            cluster.run(until=process)
            latencies.append(kernel.now - start)
        rows.append(
            {
                "slot_ms": slot * 1000,
                "jsub_ms": round(1000 * sum(latencies) / len(latencies), 1),
            }
        )
    return rows
