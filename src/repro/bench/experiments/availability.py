"""Figure 12: availability and downtime per year, 1-4 head nodes.

Two regenerations of the same table:

* **analytic** — the paper's own method, Equations 1-3 with MTTF = 5000 h
  and MTTR = 72 h;
* **Monte Carlo** — the same failure model simulated on the DES kernel for
  hundreds of years, cross-checking the closed form and demonstrating the
  machinery the extension studies (correlated failures, non-exponential
  repairs) plug into. Rare triple/quadruple overlaps need very long
  horizons to estimate tightly; the bench reports the analytic value as
  the reference and the empirical value with its event count.
"""

from __future__ import annotations

from repro.ha.availability import (
    figure12_table,
    format_duration,
    monte_carlo_availability,
)

__all__ = ["PAPER_FIGURE12", "figure12", "figure12_empirical"]

#: Paper rows: nodes -> (availability %, nines, downtime rendered).
PAPER_FIGURE12 = {
    1: (98.6, 1, "5d 4h 21min"),
    2: (99.98, 3, "1h 45min"),
    3: (99.9997, 5, "1min 30s"),
    4: (99.999996, 7, "1s"),
}


def figure12(*, mttf_hours: float = 5000.0, mttr_hours: float = 72.0) -> list[dict]:
    """The analytic table with paper columns alongside."""
    rows = []
    for row in figure12_table(4, mttf_hours=mttf_hours, mttr_hours=mttr_hours):
        paper_pct, paper_nines, paper_downtime = PAPER_FIGURE12[row["nodes"]]
        rows.append(
            {
                "nodes": row["nodes"],
                "availability_pct": row["availability_pct"],
                "paper_pct": paper_pct,
                "nines": row["nines"],
                "paper_nines": paper_nines,
                "downtime": row["downtime"],
                "paper_downtime": paper_downtime,
            }
        )
    return rows


def figure12_empirical(
    *,
    max_nodes: int = 3,
    mttf_hours: float = 5000.0,
    mttr_hours: float = 72.0,
    horizon_years: float = 3000.0,
    seed: int = 0,
) -> list[dict]:
    """Monte-Carlo cross-check (nodes >= 4 produce ~1 s/year downtimes
    that would need geological horizons; capped at *max_nodes*)."""
    analytic = {row["nodes"]: row for row in figure12_table(max_nodes,
                mttf_hours=mttf_hours, mttr_hours=mttr_hours)}
    rows = []
    for nodes in range(1, max_nodes + 1):
        result = monte_carlo_availability(
            nodes,
            mttf_hours=mttf_hours,
            mttr_hours=mttr_hours,
            horizon_years=horizon_years,
            seed=seed,
        )
        rows.append(
            {
                "nodes": nodes,
                "empirical_pct": 100 * result.availability,
                "analytic_pct": analytic[nodes]["availability_pct"],
                "empirical_downtime": format_duration(result.downtime_seconds_per_year),
                "analytic_downtime": analytic[nodes]["downtime"],
                "outages_observed": result.all_down_events,
            }
        )
    return rows
