"""Read-path scaling: local-read QPS vs. head count under open-loop load.

Not a paper figure — the paper's jstat rides the ordered command stream,
so status queries cost a slot of the single total order and a turn of the
serial executor no matter which head answers. The local read path
(PROTOCOLS.md §12) answers from the receiving head's own replica instead,
and *that* capacity grows with the head count: each head is one
single-threaded daemon + PBS pair (``JoshuaTimes.read_service`` of
occupancy per answer), so N heads answer N reads at once.

The front-end is **open loop** (:class:`~repro.bench.workloads
.OpenLoopWorkload`): request times come from the arrival process alone and
never wait on the system under test — the 1-head run saturates and queues
while the 4-head run keeps up, which is exactly the difference a
closed-loop driver would hide. A :class:`~repro.joshua.gateway
.JoshuaGateway` pins each client of the population to a head by stable
hash, so the read population spreads across every head while each client
keeps read-your-writes affinity with the head that stamped its writes.

Two claims, asserted by ``benchmarks/bench_read_scaling.py``:

* aggregate completed read QPS at 4 heads is at least twice the 1-head
  figure under the identical offered load;
* the read load does not steal write capacity: committed submissions/sec
  in the mixed run stays within 10 % of the write-only baseline at the
  same head count (reads never enter the ordered stream).
"""

from __future__ import annotations

from repro.bench.workloads import OpenLoopWorkload
from repro.cluster.cluster import Cluster
from repro.joshua.deploy import build_joshua_stack
from repro.util.errors import NoActiveHeadError

__all__ = ["measure_read_mix", "read_scaling"]

#: Long enough that submitted jobs stay queued (the bench measures the
#: command plane, not the compute nodes).
_WALLTIME_SCALE = 10_000.0


def measure_read_mix(
    *,
    heads: int,
    computes: int = 1,
    duration: float = 10.0,
    read_rate: float = 400.0,
    write_rate: float = 3.0,
    clients: int = 100,
    consistency: str = "ryw",
    arrival: str = "poisson",
    seed: int = 1,
    timeout: float = 60.0,
) -> dict:
    """One open-loop run: *read_rate* reads/s + *write_rate* writes/s
    offered for *duration* seconds against a *heads*-head stack.

    Reads target the issuing client's most recent job (id-less until it
    has one). Returns completed-read QPS, the local/fallback/failed read
    split, and committed submissions/sec observed on head0.
    """
    cluster = Cluster(
        head_count=heads, compute_count=computes, login_node=True, seed=seed
    )
    kernel = cluster.kernel
    stack = build_joshua_stack(cluster)
    gateway = stack.gateway(timeout=timeout, consistency=consistency)
    cluster.run(until=1.5)

    total_rate = read_rate + write_rate
    workload = OpenLoopWorkload(
        count=max(1, int(total_rate * duration)),
        rate=total_rate,
        arrival=arrival,
        read_fraction=read_rate / total_rate,
        clients=clients,
        walltime_scale=_WALLTIME_SCALE,
        walltime_cap=10 * _WALLTIME_SCALE,
        seed=seed,
    )

    t0 = kernel.now
    sessions: dict[int, object] = {}
    last_job: dict[int, str] = {}
    done = {"reads": 0, "writes": 0, "failed": 0}

    def session_for(client: int):
        session = sessions.get(client)
        if session is None:
            session = gateway.session("login", f"client{client}")
            sessions[client] = session
        return session

    def issue(request):
        at = t0 + request.time
        if at > kernel.now:
            yield kernel.timeout(at - kernel.now)
        session = session_for(request.client)
        try:
            if request.kind == "jsub":
                job_id = yield from session.jsub(request.spec)
                last_job[request.client] = job_id
                done["writes"] += 1
            else:
                yield from session.jstat(last_job.get(request.client))
                done["reads"] += 1
        except NoActiveHeadError:
            done["failed"] += 1

    offered = {"reads": 0, "writes": 0}
    for index, request in enumerate(workload):
        offered["reads" if request.kind == "jstat" else "writes"] += 1
        kernel.spawn(issue(request), name=f"openloop-{index}")
    cluster.run(until=t0 + duration)

    observer = stack.joshua("head0")
    committed_writes = sum(
        1 for command in observer.command_log if command.kind == "jsub"
    )
    return {
        "heads": heads,
        "duration_s": duration,
        "clients": clients,
        "consistency": consistency,
        "offered_read_per_s": round(offered["reads"] / duration, 2),
        "offered_write_per_s": round(offered["writes"] / duration, 2),
        "reads_completed": done["reads"],
        "read_qps": round(done["reads"] / duration, 2),
        "reads_local": gateway.stats["reads_local"],
        "reads_fallback": gateway.stats["reads_fallback"],
        "reads_failed": done["failed"],
        "writes_acked": done["writes"],
        "write_committed": committed_writes,
        "write_committed_per_s": round(committed_writes / duration, 2),
        "gateway_sessions": gateway.stats["sessions"],
    }


def read_scaling(
    head_counts=(1, 2, 4),
    *,
    duration: float = 10.0,
    read_rate: float = 400.0,
    write_rate: float = 3.0,
    clients: int = 100,
    consistency: str = "ryw",
    seed: int = 1,
) -> dict:
    """The identical offered mix at each head count, plus a write-only
    baseline per head count for the does-not-steal-writes comparison."""
    rows = []
    for heads in head_counts:
        mixed = measure_read_mix(
            heads=heads, duration=duration, read_rate=read_rate,
            write_rate=write_rate, clients=clients,
            consistency=consistency, seed=seed,
        )
        baseline = measure_read_mix(
            heads=heads, duration=duration, read_rate=0.0,
            write_rate=write_rate, clients=clients,
            consistency=consistency, seed=seed,
        )
        mixed["write_only_committed_per_s"] = baseline["write_committed_per_s"]
        base = baseline["write_committed_per_s"]
        mixed["write_ratio"] = round(
            mixed["write_committed_per_s"] / base, 3
        ) if base else 1.0
        rows.append(mixed)
    speedup = (
        rows[-1]["read_qps"] / rows[0]["read_qps"]
        if rows[0]["read_qps"] else float(len(head_counts))
    )
    return {
        "rows": rows,
        "read_qps_speedup": round(speedup, 2),
        "offered": {"read_per_s": read_rate, "write_per_s": write_rate},
    }
