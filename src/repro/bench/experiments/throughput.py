"""Figure 11: job submission throughput — time to enqueue 10/50/100 jobs.

Paper rows (seconds to submit the batch, sequential client):

=================  =====  =======  =======  ========
System             heads  10 jobs  50 jobs  100 jobs
=================  =====  =======  =======  ========
TORQUE             1      0.93     4.95     10.18
JOSHUA/TORQUE      1      1.32     6.48     14.08
JOSHUA/TORQUE      2      2.68     13.09    26.37
JOSHUA/TORQUE      3      2.93     15.91    30.03
JOSHUA/TORQUE      4      3.62     17.65    33.32
=================  =====  =======  =======  ========

The reproduction replays the same burst through a sequential client (the
q/j commands are synchronous binaries; a burst is a shell loop).

The **burst offered-load** variant (:func:`measure_offered_burst`) spawns
every jsub concurrently instead — many outstanding commands, the regime
the batched DATA path is built for — and
:func:`burst_batching_ablation` compares the wire cost per committed
command with the batching pipeline off vs. on.
"""

from __future__ import annotations

import dataclasses

from repro.bench.workloads import BurstWorkload
from repro.cluster.cluster import Cluster
from repro.joshua.config import JOSHUA_GROUP_CONFIG
from repro.joshua.deploy import build_joshua_stack
from repro.obs.collector import attach_collector
from repro.obs.metrics import MetricsRegistry
from repro.pbs.stack import build_pbs_stack

__all__ = [
    "PAPER_FIGURE11",
    "BATCHED_GROUP_CONFIG",
    "measure_burst",
    "figure11",
    "measure_offered_burst",
    "burst_batching_ablation",
]

#: (system, heads) -> {jobs: seconds} from the paper.
PAPER_FIGURE11 = {
    ("TORQUE", 1): {10: 0.93, 50: 4.95, 100: 10.18},
    ("JOSHUA/TORQUE", 1): {10: 1.32, 50: 6.48, 100: 14.08},
    ("JOSHUA/TORQUE", 2): {10: 2.68, 50: 13.09, 100: 26.37},
    ("JOSHUA/TORQUE", 3): {10: 2.93, 50: 15.91, 100: 30.03},
    ("JOSHUA/TORQUE", 4): {10: 3.62, 50: 17.65, 100: 33.32},
}


def measure_burst(
    system: str, heads: int, jobs: int, *, seed: int = 1,
    registry: MetricsRegistry | None = None,
    wire_bytes: dict[str, int] | None = None,
) -> float:
    """Simulated seconds to sequentially submit *jobs* jobs.

    A *wire_bytes* dict accumulates the network's measured per-message-type
    bytes-on-wire (``Network.wire_bytes_by_type``) across calls."""
    cluster = Cluster(head_count=heads, compute_count=2, seed=seed)
    if system == "TORQUE":
        stack = build_pbs_stack(cluster)
        submit = lambda spec: stack.client().qsub(spec)  # noqa: E731
    else:
        stack = build_joshua_stack(cluster)
        client = stack.client(node="head0", prefer="head0")
        submit = client.jsub
    if registry is not None:
        # Passive observation — burst timings are unchanged by attaching.
        attach_collector(cluster.network, registry=registry)
    cluster.run(until=1.0)
    kernel = cluster.kernel

    def burst():
        for delay, spec in BurstWorkload(jobs, walltime=100_000.0):
            if delay:
                yield kernel.timeout(delay)
            yield from submit(spec)

    start = kernel.now
    process = kernel.spawn(burst())
    cluster.run(until=process)
    if wire_bytes is not None:
        for kind in sorted(cluster.network.wire_bytes_by_type):
            count = cluster.network.wire_bytes_by_type[kind]
            wire_bytes[kind] = wire_bytes.get(kind, 0) + count
    return kernel.now - start


def figure11(
    *, job_counts=(10, 50, 100), seed: int = 1,
    registry: MetricsRegistry | None = None,
    wire_bytes: dict[str, int] | None = None,
) -> list[dict]:
    """Regenerate Figure 11; one row per (system, heads). A *registry*
    accumulates RPC/GCS/job-phase metrics across every burst, and a
    *wire_bytes* dict the measured per-message-type bytes-on-wire."""
    rows = []
    configs = [("TORQUE", 1), ("JOSHUA/TORQUE", 1), ("JOSHUA/TORQUE", 2),
               ("JOSHUA/TORQUE", 3), ("JOSHUA/TORQUE", 4)]
    for system, heads in configs:
        row: dict = {"system": system, "heads": heads}
        for jobs in job_counts:
            measured = measure_burst(
                system, heads, jobs, seed=seed, registry=registry,
                wire_bytes=wire_bytes,
            )
            row[f"measured_{jobs}_s"] = round(measured, 2)
            paper = PAPER_FIGURE11[(system, heads)].get(jobs)
            if paper is not None:
                row[f"paper_{jobs}_s"] = paper
        rows.append(row)
    return rows


#: The "batching on" arm of the ablation: the full batched+pipelined DATA
#: path — outbound DATA coalescing (Nagle window adaptively between 1 and
#: 5 ms, MTU-ish byte budget) *and* sequencer ORDER batching with the size
#: trigger. Everything else is the paper-calibrated JOSHUA config.
BATCHED_GROUP_CONFIG = dataclasses.replace(
    JOSHUA_GROUP_CONFIG,
    data_batch_delay=0.005,
    data_batch_min_delay=0.001,
    data_batch_max_msgs=16,
    data_batch_max_bytes=1200,
    sequencer_batch_delay=0.005,
    sequencer_batch_max=16,
)


def measure_offered_burst(
    heads: int, jobs: int, *, seed: int = 1, batching: bool = False,
    registry: MetricsRegistry | None = None,
) -> dict:
    """Burst offered load: *jobs* concurrent jsubs against *heads* heads.

    Unlike :func:`measure_burst` (sequential client, ≤ 1 outstanding
    command — a regime batching cannot improve by construction), every
    submission is in flight at once. Returns measured wire/throughput
    figures for one run::

        {"heads", "jobs", "batching", "elapsed_s", "events",
         "events_per_sim_s", "bytes_wire", "bytes_wire_per_command",
         "wire_bytes_by_type"}

    All byte figures are the *delta over the burst* (boot/heartbeat
    traffic before the burst excluded), measured by the codec — and every
    DataBatchMsg crossing the wire is decoded at delivery, so a codec
    regression fails the run rather than skewing it.
    """
    config = BATCHED_GROUP_CONFIG if batching else JOSHUA_GROUP_CONFIG
    cluster = Cluster(head_count=heads, compute_count=2, seed=seed)
    stack = build_joshua_stack(cluster, group_config=config)
    client = stack.client(node="head0", prefer="head0")
    if registry is not None:
        attach_collector(cluster.network, registry=registry)
    cluster.run(until=1.0)
    kernel = cluster.kernel
    network = cluster.network
    bytes_before = network.stats["bytes_wire"]
    types_before = dict(network.wire_bytes_by_type)
    events_before = kernel.processed_events
    start = kernel.now
    procs = [
        kernel.spawn(client.jsub(name=f"burst{i}", walltime=100_000.0))
        for i in range(jobs)
    ]
    for process in procs:
        cluster.run(until=process)
    elapsed = kernel.now - start
    events = kernel.processed_events - events_before
    bytes_wire = network.stats["bytes_wire"] - bytes_before
    by_type = {
        kind: network.wire_bytes_by_type[kind] - types_before.get(kind, 0)
        for kind in sorted(network.wire_bytes_by_type)
    }
    return {
        "heads": heads,
        "jobs": jobs,
        "batching": batching,
        "elapsed_s": round(elapsed, 4),
        "events": events,
        "events_per_sim_s": round(events / elapsed, 1),
        "bytes_wire": bytes_wire,
        "bytes_wire_per_command": round(bytes_wire / jobs, 1),
        "wire_bytes_by_type": {k: v for k, v in by_type.items() if v},
    }


def burst_batching_ablation(
    *, heads: int = 3, jobs: int = 50, seed: int = 1,
    registry: MetricsRegistry | None = None,
) -> dict:
    """The batching ablation: identical burst, pipeline off vs. on.

    Returns ``{"unbatched": row, "batched": row, "reduction_pct": float}``
    where *reduction_pct* is the drop in ``bytes_wire_per_command`` the
    batched pipeline buys at this offered load.
    """
    unbatched = measure_offered_burst(
        heads, jobs, seed=seed, batching=False, registry=registry
    )
    batched = measure_offered_burst(
        heads, jobs, seed=seed, batching=True, registry=registry
    )
    reduction = 1 - batched["bytes_wire_per_command"] / unbatched["bytes_wire_per_command"]
    return {
        "unbatched": unbatched,
        "batched": batched,
        "reduction_pct": round(100 * reduction, 1),
    }
