"""Figure 11: job submission throughput — time to enqueue 10/50/100 jobs.

Paper rows (seconds to submit the batch, sequential client):

=================  =====  =======  =======  ========
System             heads  10 jobs  50 jobs  100 jobs
=================  =====  =======  =======  ========
TORQUE             1      0.93     4.95     10.18
JOSHUA/TORQUE      1      1.32     6.48     14.08
JOSHUA/TORQUE      2      2.68     13.09    26.37
JOSHUA/TORQUE      3      2.93     15.91    30.03
JOSHUA/TORQUE      4      3.62     17.65    33.32
=================  =====  =======  =======  ========

The reproduction replays the same burst through a sequential client (the
q/j commands are synchronous binaries; a burst is a shell loop).
"""

from __future__ import annotations

from repro.bench.workloads import BurstWorkload
from repro.cluster.cluster import Cluster
from repro.joshua.deploy import build_joshua_stack
from repro.obs.collector import attach_collector
from repro.obs.metrics import MetricsRegistry
from repro.pbs.stack import build_pbs_stack

__all__ = ["PAPER_FIGURE11", "measure_burst", "figure11"]

#: (system, heads) -> {jobs: seconds} from the paper.
PAPER_FIGURE11 = {
    ("TORQUE", 1): {10: 0.93, 50: 4.95, 100: 10.18},
    ("JOSHUA/TORQUE", 1): {10: 1.32, 50: 6.48, 100: 14.08},
    ("JOSHUA/TORQUE", 2): {10: 2.68, 50: 13.09, 100: 26.37},
    ("JOSHUA/TORQUE", 3): {10: 2.93, 50: 15.91, 100: 30.03},
    ("JOSHUA/TORQUE", 4): {10: 3.62, 50: 17.65, 100: 33.32},
}


def measure_burst(
    system: str, heads: int, jobs: int, *, seed: int = 1,
    registry: MetricsRegistry | None = None,
    wire_bytes: dict[str, int] | None = None,
) -> float:
    """Simulated seconds to sequentially submit *jobs* jobs.

    A *wire_bytes* dict accumulates the network's measured per-message-type
    bytes-on-wire (``Network.wire_bytes_by_type``) across calls."""
    cluster = Cluster(head_count=heads, compute_count=2, seed=seed)
    if system == "TORQUE":
        stack = build_pbs_stack(cluster)
        submit = lambda spec: stack.client().qsub(spec)  # noqa: E731
    else:
        stack = build_joshua_stack(cluster)
        client = stack.client(node="head0", prefer="head0")
        submit = client.jsub
    if registry is not None:
        # Passive observation — burst timings are unchanged by attaching.
        attach_collector(cluster.network, registry=registry)
    cluster.run(until=1.0)
    kernel = cluster.kernel

    def burst():
        for delay, spec in BurstWorkload(jobs, walltime=100_000.0):
            if delay:
                yield kernel.timeout(delay)
            yield from submit(spec)

    start = kernel.now
    process = kernel.spawn(burst())
    cluster.run(until=process)
    if wire_bytes is not None:
        for kind in sorted(cluster.network.wire_bytes_by_type):
            count = cluster.network.wire_bytes_by_type[kind]
            wire_bytes[kind] = wire_bytes.get(kind, 0) + count
    return kernel.now - start


def figure11(
    *, job_counts=(10, 50, 100), seed: int = 1,
    registry: MetricsRegistry | None = None,
    wire_bytes: dict[str, int] | None = None,
) -> list[dict]:
    """Regenerate Figure 11; one row per (system, heads). A *registry*
    accumulates RPC/GCS/job-phase metrics across every burst, and a
    *wire_bytes* dict the measured per-message-type bytes-on-wire."""
    rows = []
    configs = [("TORQUE", 1), ("JOSHUA/TORQUE", 1), ("JOSHUA/TORQUE", 2),
               ("JOSHUA/TORQUE", 3), ("JOSHUA/TORQUE", 4)]
    for system, heads in configs:
        row: dict = {"system": system, "heads": heads}
        for jobs in job_counts:
            measured = measure_burst(
                system, heads, jobs, seed=seed, registry=registry,
                wire_bytes=wire_bytes,
            )
            row[f"measured_{jobs}_s"] = round(measured, 2)
            paper = PAPER_FIGURE11[(system, heads)].get(jobs)
            if paper is not None:
                row[f"paper_{jobs}_s"] = paper
        rows.append(row)
    return rows
