"""Experiment drivers, one module per paper figure plus extensions."""
