"""HA model comparison: identical workload + fault, four models.

The paper's §2 taxonomy made quantitative: the same Poisson submission
stream and the same head-node crash/repair schedule run against

* the single-head baseline,
* active/standby failover,
* asymmetric active/active,
* symmetric active/active (JOSHUA).

Reported per model: empirical service downtime (probe), jobs lost, jobs
whose application had to restart, and submit failures — the quantities the
models trade against each other.
"""

from __future__ import annotations

from typing import Generator

from repro.bench.workloads import PoissonWorkload
from repro.cluster.cluster import Cluster
from repro.ha.active_standby import ActiveStandbySystem
from repro.ha.asymmetric import AsymmetricSystem
from repro.ha.probe import ServiceProbe, WorkloadReport
from repro.ha.single import SingleHeadSystem
from repro.joshua.deploy import build_joshua_stack
from repro.gcs.config import GroupConfig
from repro.pbs.job import JobSpec, JobState
from repro.util.errors import ReproError

__all__ = ["MODELS", "run_model", "compare_models"]

MODELS = ("single", "active_standby", "asymmetric", "symmetric")

#: Group timings for the comparison (faster than the calibrated deployment
#: config so suspicion/view change complete well inside the fault window).
_COMPARE_GROUP = GroupConfig(
    heartbeat_interval=0.25,
    suspect_timeout=0.8,
    flush_timeout=1.5,
    retransmit_interval=0.05,
)


class _SymmetricSystem:
    """JOSHUA behind the uniform HA-system interface."""

    name = "symmetric"

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.stack = build_joshua_stack(cluster, group_config=_COMPARE_GROUP)
        self._client = self.stack.client(node="login", timeout=2.0)

    def submit(self, spec: JobSpec) -> Generator:
        job_id = yield from self._client.jsub(spec)
        return job_id

    def stat(self) -> Generator:
        rows = yield from self._client.jstat()
        return rows

    def authoritative_jobs(self):
        out = {}
        for head in self.stack.live_heads():
            node = self.cluster.node(head)
            if "pbs_server" not in node.daemons:
                continue  # repaired but not re-integrated
            for job in self.stack.pbs(head).jobs:
                out[job.job_id] = (job.state, job.run_count)
            break  # any live replica is authoritative
        return out


def _build(model: str, seed: int):
    heads = 1 if model == "single" else 2
    cluster = Cluster(head_count=heads, compute_count=2, seed=seed, login_node=True)
    if model == "single":
        return cluster, SingleHeadSystem(cluster)
    if model == "active_standby":
        return cluster, ActiveStandbySystem(
            cluster, checkpoint_interval=5.0, probe_interval=0.5,
            misses=3, failover_delay=4.0,
        )
    if model == "asymmetric":
        return cluster, AsymmetricSystem(cluster)
    if model == "symmetric":
        return cluster, _SymmetricSystem(cluster)
    raise ReproError(f"unknown model {model!r}")


def run_model(
    model: str,
    *,
    seed: int = 101,
    jobs: int = 15,
    rate: float = 0.4,
    crash_at: float = 20.0,
    restart_at: float = 80.0,
    horizon: float = 220.0,
) -> WorkloadReport:
    """One model under the standard workload + fault schedule."""
    cluster, system = _build(model, seed)
    kernel = cluster.kernel
    submitted: list[str] = []
    failures = [0]

    def submitter():
        for delay, spec in PoissonWorkload(jobs, rate, walltime_range=(4.0, 12.0), seed=seed):
            if delay:
                yield kernel.timeout(delay)
            try:
                job_id = yield from system.submit(spec)
                submitted.append(job_id)
            except Exception:
                failures[0] += 1

    probe = ServiceProbe(kernel, system.stat, interval=1.0)
    kernel.spawn(submitter(), name="workload")

    def fault_driver():
        yield kernel.timeout(crash_at)
        cluster.heads[0].crash()
        yield kernel.timeout(restart_at - crash_at)
        # Repair semantics differ: models whose head can simply reboot its
        # daemons do so; failover/replicated models get a bare repaired
        # node (re-integration is a separate, heavier operation measured
        # in the membership tests).
        if model in ("single", "asymmetric"):
            cluster.heads[0].restart()
        else:
            cluster.heads[0].restart(daemons=False)

    kernel.spawn(fault_driver(), name="fault-driver")
    cluster.run(until=horizon)

    jobs_now = system.authoritative_jobs()
    completed = sum(
        1 for job_id in submitted
        if job_id in jobs_now and jobs_now[job_id][0] is JobState.COMPLETE
    )
    lost = sum(1 for job_id in submitted if job_id not in jobs_now)
    restarted = sum(
        1 for job_id in submitted
        if job_id in jobs_now and jobs_now[job_id][1] > 1
    )
    return WorkloadReport(
        model=model,
        submitted=len(submitted),
        completed=completed,
        lost=lost,
        restarted=restarted,
        submit_failures=failures[0],
        probe_downtime=probe.total_downtime(),
        probe_availability=probe.availability(),
    )


def compare_models(*, seed: int = 101, **kwargs) -> list[dict]:
    """Run every model under the identical scenario; return summary rows."""
    return [run_model(model, seed=seed, **kwargs).summary_row() for model in MODELS]
