"""Benchmark harness: regenerates every table and figure in the paper.

Each experiment module builds the system under test, drives a workload,
and returns structured rows directly comparable to the paper's figures.
The ``benchmarks/`` pytest-benchmark suite wraps these (timing the
simulation itself) and prints paper-vs-measured tables; EXPERIMENTS.md
records the comparison.

Experiment index
----------------
=================  ======================================================
Figure 10          :func:`repro.bench.experiments.latency.figure10`
Figure 11          :func:`repro.bench.experiments.throughput.figure11`
Figure 12          :func:`repro.bench.experiments.availability.figure12`
HA model compare   :func:`repro.bench.experiments.models.compare_models`
Ablations          :mod:`repro.bench.experiments.ablations`
=================  ======================================================
"""

from repro.bench.workloads import (
    BurstWorkload,
    OpenLoopRequest,
    OpenLoopWorkload,
    PoissonWorkload,
    TraceWorkload,
)
from repro.bench.metrics import LatencySample, LatencyStats, summarize
from repro.bench.reporting import format_table, paper_vs_measured

__all__ = [
    "BurstWorkload",
    "OpenLoopRequest",
    "OpenLoopWorkload",
    "PoissonWorkload",
    "TraceWorkload",
    "LatencySample",
    "LatencyStats",
    "summarize",
    "format_table",
    "paper_vs_measured",
]
