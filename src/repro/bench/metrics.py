"""Latency/throughput measurement helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ReproError

__all__ = ["LatencySample", "LatencyStats", "summarize"]


@dataclass(frozen=True)
class LatencySample:
    """One timed operation in simulated time."""

    started: float
    finished: float
    label: str = ""

    @property
    def latency(self) -> float:
        return self.finished - self.started


@dataclass(frozen=True)
class LatencyStats:
    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float
    stddev: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000, 2),
            "median_ms": round(self.median * 1000, 2),
            "p95_ms": round(self.p95 * 1000, 2),
            "min_ms": round(self.minimum * 1000, 2),
            "max_ms": round(self.maximum * 1000, 2),
        }


def summarize(samples: list[LatencySample]) -> LatencyStats:
    """Aggregate latency samples (vectorised; benches can have thousands)."""
    if not samples:
        raise ReproError("no samples to summarize")
    values = np.array([s.latency for s in samples], dtype=float)
    return LatencyStats(
        count=len(values),
        mean=float(values.mean()),
        median=float(np.median(values)),
        p95=float(np.percentile(values, 95)),
        minimum=float(values.min()),
        maximum=float(values.max()),
        stddev=float(values.std()),
    )
