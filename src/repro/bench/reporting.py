"""Table and chart rendering for paper-vs-measured comparisons."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "paper_vs_measured", "bar_chart"]


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None, *, title: str = "") -> str:
    """Plain-text table; column order is given or taken from the first row."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns or rows[0].keys())
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    def line(cells):
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))
    out = []
    if title:
        out.append(title)
    out.append(line(columns))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(cells) for cells in rendered)
    return "\n".join(out)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def bar_chart(
    rows: Sequence[dict],
    *,
    label: str,
    series: Sequence[str],
    width: int = 48,
    title: str = "",
) -> str:
    """Horizontal ASCII bars for one or more numeric *series* per row.

    Made for figure-shaped terminal output::

        heads=1  measured |############                | 131.1
                 paper    |#############               | 134.0

    Bars share one scale (the max across all series), so shape comparisons
    are literal.
    """
    values = [
        float(row[s]) for row in rows for s in series if row.get(s) is not None
    ]
    if not values:
        return f"{title}\n(no data)" if title else "(no data)"
    peak = max(values) or 1.0
    label_width = max(len(str(row.get(label, ""))) for row in rows)
    series_width = max(len(s) for s in series)
    lines = [title] if title else []
    for row in rows:
        for index, s in enumerate(series):
            value = row.get(s)
            if value is None:
                continue
            bar = "#" * max(1, round(width * float(value) / peak))
            head = str(row.get(label, "")) if index == 0 else ""
            lines.append(
                f"{head:<{label_width}}  {s:<{series_width}} "
                f"|{bar:<{width}}| {float(value):g}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def paper_vs_measured(
    rows: Sequence[dict],
    *,
    key: str,
    paper: str = "paper",
    measured: str = "measured",
    title: str = "",
) -> str:
    """Render rows that carry both paper and measured values, adding a
    ratio column so shape agreement is visible at a glance."""
    augmented = []
    for row in rows:
        new = dict(row)
        p, m = row.get(paper), row.get(measured)
        if isinstance(p, (int, float)) and isinstance(m, (int, float)) and p:
            new["ratio"] = round(m / p, 2)
        augmented.append(new)
    columns = [key] + [c for c in augmented[0] if c != key]
    return format_table(augmented, columns, title=title)
