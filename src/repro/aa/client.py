"""Client for generic replicated services: UUID retries + replica failover."""

from __future__ import annotations

from typing import Any, Generator

from repro.aa.replicated import ReplRequest, ReplResult
from repro.net.address import Address
from repro.net.network import Network
from repro.rpc import failover_call, rpc_state
from repro.util.errors import NoActiveHeadError, ReproError

__all__ = ["ReplicatedClient", "ServiceError"]


class ServiceError(ReproError):
    """The replicated backend rejected the request (deterministically —
    every replica produced the same error)."""


class ReplicatedClient:
    """Issues exactly-once requests against any replica of a service."""

    def __init__(
        self,
        network: Network,
        node: str,
        replicas: list[Address],
        *,
        timeout: float = 3.0,
        prefer: Address | None = None,
    ):
        if not replicas:
            raise NoActiveHeadError("no replicas configured")
        self.network = network
        self.node = node
        self.replicas = list(replicas)
        self.timeout = timeout
        self.prefer = prefer
        self.stats = {"failovers": 0}

    def _ordered(self) -> list[Address]:
        replicas = list(self.replicas)
        if self.prefer in replicas:
            replicas.remove(self.prefer)
            replicas.insert(0, self.prefer)
        return replicas

    def call(self, payload: Any) -> Generator:
        """One request; returns the backend result value."""
        request = ReplRequest(
            f"req-{self.node}-{rpc_state(self.network).next_id('aa-uuid')}",
            payload,
        )
        # A replica still mid-join answers "joining": not an application
        # error, just the wrong replica to ask — reject and fail over.
        result: ReplResult = yield from failover_call(
            self.network, self.node, self._ordered(), request,
            timeout=self.timeout,
            reject=lambda r: r.error == "joining",
            stats=self.stats,
            what="no replica answered",
        )
        if result.error is not None:
            raise ServiceError(result.error)
        return result.value
