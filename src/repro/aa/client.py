"""Client for generic replicated services: UUID retries + replica failover."""

from __future__ import annotations

import itertools
from typing import Any, Generator

from repro.aa.replicated import ReplRequest, ReplResult
from repro.net.address import Address
from repro.net.network import Network
from repro.pbs.wire import RpcTimeout, rpc_call
from repro.util.errors import NoActiveHeadError, ReproError

__all__ = ["ReplicatedClient", "ServiceError"]

_UUID = itertools.count(1)


class ServiceError(ReproError):
    """The replicated backend rejected the request (deterministically —
    every replica produced the same error)."""


class ReplicatedClient:
    """Issues exactly-once requests against any replica of a service."""

    def __init__(
        self,
        network: Network,
        node: str,
        replicas: list[Address],
        *,
        timeout: float = 3.0,
        prefer: Address | None = None,
    ):
        if not replicas:
            raise NoActiveHeadError("no replicas configured")
        self.network = network
        self.node = node
        self.replicas = list(replicas)
        self.timeout = timeout
        self.prefer = prefer
        self.stats = {"failovers": 0}

    def _ordered(self) -> list[Address]:
        replicas = list(self.replicas)
        if self.prefer in replicas:
            replicas.remove(self.prefer)
            replicas.insert(0, self.prefer)
        return replicas

    def call(self, payload: Any) -> Generator:
        """One request; returns the backend result value."""
        request = ReplRequest(f"req-{self.node}-{next(_UUID)}", payload)
        last: Exception | None = None
        for replica in self._ordered():
            if not self.network.node_is_up(replica.node):
                self.stats["failovers"] += 1
                continue
            try:
                result: ReplResult = yield from rpc_call(
                    self.network, self.node, replica, request,
                    timeout=self.timeout, retries=0,
                )
            except RpcTimeout as exc:
                last = exc
                self.stats["failovers"] += 1
                continue
            if result.error == "joining":
                self.stats["failovers"] += 1
                continue
            if result.error is not None:
                raise ServiceError(result.error)
            return result.value
        raise NoActiveHeadError(f"no replica answered: {last}")
