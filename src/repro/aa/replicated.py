"""The universal external-replication wrapper (paper §3, Figures 5/7).

:class:`ReplicatedService` turns any *deterministic* backend into a
symmetric active/active service. The backend is supplied as a
:class:`BackendDriver` with three coroutines:

``execute(payload) -> result``
    Apply one state-changing (or read-only) request. Must be
    deterministic: same request sequence ⇒ same state and same results at
    every replica.
``snapshot() -> state``
    Capture the full backend state (for join-time transfer).
``restore(state)``
    Replace the backend state with a snapshot.

The wrapper supplies everything else: SAFE-multicast ordering, serial
execution, exactly-once output (UUID-keyed result caching across client
retries/failovers), and the marker-cut join protocol. JOSHUA
(:mod:`repro.joshua`) is historically the same pattern hand-specialised to
the PBS interface plus the launch mutual exclusion PBS needs; new services
(like the PVFS metadata server in :mod:`repro.pvfs`) build on this class
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Protocol

from repro.cluster.daemon import Daemon
from repro.gcs.config import GroupConfig
from repro.gcs.member import GroupMember
from repro.gcs.messages import SAFE, DeliveredMessage
from repro.gcs.view import View
from repro.net.address import Address
from repro.net.codec import register_wire_types
from repro.rpc import RpcDispatcher, rpc_state
from repro.sim.resources import Store
from repro.util.errors import JoshuaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["BackendDriver", "ReplicatedService", "ReplRequest", "ReplResult"]


class BackendDriver(Protocol):
    """What a service must provide to be replicated."""

    def execute(self, payload: Any) -> Generator:  # pragma: no cover - protocol
        ...

    def snapshot(self) -> Generator:  # pragma: no cover - protocol
        ...

    def restore(self, state: Any) -> Generator:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ReplRequest:
    """Client -> replica: one request with its exactly-once identity."""

    uuid: str
    payload: Any


@dataclass(frozen=True)
class ReplResult:
    uuid: str
    value: Any
    error: str | None = None


@dataclass(frozen=True)
class _Cmd:
    uuid: str
    payload: Any


@dataclass(frozen=True)
class _Marker:
    uuid: str
    joiner: Address


@dataclass(frozen=True)
class _Snapshot:
    marker_uuid: str
    state: Any


register_wire_types(ReplRequest, ReplResult, _Cmd, _Marker, _Snapshot)


class ReplicatedService(Daemon):
    """One replica of a generic active/active service.

    Parameters
    ----------
    node:
        Hosting node.
    name:
        Service name (log tag / daemon key).
    driver:
        The deterministic backend driver.
    port / gcs_port:
        Client-facing RPC port and the group-communication port.
    initial_members / contacts:
        Node names for static bootstrap vs. live join (exactly one).
    group_config:
        Group communication tuning.
    """

    def __init__(
        self,
        node: "Node",
        name: str,
        driver: BackendDriver,
        *,
        port: int,
        gcs_port: int,
        initial_members: list[str] | None = None,
        contacts: list[str] | None = None,
        group_config: GroupConfig | None = None,
    ):
        super().__init__(node, name, port)
        if group_config is None:
            group_config = GroupConfig()
        if (initial_members is None) == (contacts is None):
            raise JoshuaError("exactly one of initial_members/contacts required")
        self.driver = driver
        self.gcs_port = gcs_port
        self.initial_members = list(initial_members or [])
        self.contacts = list(contacts or [])
        self.group = GroupMember(
            node.network.bind(node.name, gcs_port),
            group_config,
            on_deliver=self._on_deliver,
            on_view=self._on_view,
        )
        self.active = False
        self.results: dict[str, ReplResult] = {}
        self._pending: dict[str, list[tuple[Address, int]]] = {}
        self._multicast_uuids: set[str] = set()
        self._queue: Store = Store(self.kernel)
        self._syncing_marker: str | None = None
        self._marker_seen = False
        self._snapshots: dict[str, _Snapshot] = {}
        self._snapshot_waiters: dict[str, object] = {}
        self._applied: set[str] = set()
        self.stats = {"requests": 0, "executed": 0, "snapshots_served": 0}
        self.rpc = RpcDispatcher(self)
        self.rpc.register(ReplRequest, self._handle_request)

    # -- lifecycle ------------------------------------------------------------

    def on_start(self) -> None:
        self.spawn(self._executor(), name=f"{self.tag}-executor")
        if self.initial_members:
            self.group.boot([Address(n, self.gcs_port) for n in self.initial_members])
            self.active = True
        else:
            self.group.join([Address(n, self.gcs_port) for n in self.contacts])

    def on_stop(self, *, crashed: bool) -> None:
        self.group.stop()

    def leave(self) -> None:
        self.group.leave()
        self.stop()

    # -- client handling ---------------------------------------------------------

    def run(self):
        while True:
            delivery = yield self.endpoint.recv()
            frame = delivery.payload
            if self.rpc.handle_frame(delivery.src, frame):
                continue
            if not isinstance(frame, tuple) or not frame:
                continue
            if frame[0] == "SNAP":
                self._handle_snapshot(frame[1])

    def _reply(self, dst: Address, request_id: int, result: ReplResult) -> None:
        self.rpc.reply(dst, request_id, result)

    def _handle_request(self, src: Address, request_id: int, request: ReplRequest):
        if not self.active:
            return ReplResult(request.uuid, None, "joining")
        if request.uuid in self.results:
            return self.results[request.uuid]
        self._pending.setdefault(request.uuid, []).append((src, request_id))
        if request.uuid in self._multicast_uuids:
            return None
        self._multicast_uuids.add(request.uuid)
        self.stats["requests"] += 1
        self.group.multicast(_Cmd(request.uuid, request.payload), service=SAFE)
        return None

    # -- delivery / execution ---------------------------------------------------------

    def _on_deliver(self, msg: DeliveredMessage) -> None:
        payload = msg.payload
        if self._syncing_marker is not None and not self._marker_seen:
            if not (isinstance(payload, _Marker) and payload.uuid == self._syncing_marker):
                return
        if isinstance(payload, (_Cmd, _Marker)):
            self._queue.put_nowait(payload)
            if isinstance(payload, _Marker) and payload.uuid == self._syncing_marker:
                self._marker_seen = True

    def _next_marker_uuid(self) -> str:
        marker_id = rpc_state(self.node.network).next_id("aa-marker")
        return f"aa-{self.node.name}-{marker_id}"

    def _on_view(self, view: View) -> None:
        if self._syncing_marker is None and not self.active and self.contacts:
            marker = _Marker(self._next_marker_uuid(), self.address)
            self._syncing_marker = marker.uuid
            self._marker_seen = False
            self.group.multicast(marker)

    def _executor(self):
        while True:
            item = yield self._queue.get()
            if isinstance(item, _Marker):
                yield from self._execute_marker(item)
            elif isinstance(item, _Cmd):
                if not self.active and self._syncing_marker is not None:
                    continue  # superseded by a fresh marker's snapshot
                yield from self._execute_cmd(item)

    def _execute_cmd(self, cmd: _Cmd):
        if cmd.uuid in self.results:
            self._answer(cmd.uuid)
            return
        try:
            value = yield from self.driver.execute(cmd.payload)
            result = ReplResult(cmd.uuid, value)
        except Exception as exc:  # deterministic application errors
            result = ReplResult(cmd.uuid, None, f"{type(exc).__name__}: {exc}")
        self.results[cmd.uuid] = result
        self.stats["executed"] += 1
        self._answer(cmd.uuid)

    def _answer(self, uuid: str) -> None:
        result = self.results.get(uuid)
        for src, request_id in self._pending.pop(uuid, []):
            self._reply(src, request_id, result)

    # -- join / snapshot transfer --------------------------------------------------------

    def _execute_marker(self, marker: _Marker):
        if marker.joiner == self.address:
            yield from self._receive_snapshot(marker)
            return
        view = self.group.view
        if view is None or not self.active:
            return
        others = [m for m in view.members if m.node != marker.joiner.node]
        if not others or min(others) != self.group.address:
            return
        state = yield from self.driver.snapshot()
        self.stats["snapshots_served"] += 1
        if not self.endpoint.closed:
            self.endpoint.send(marker.joiner, ("SNAP", _Snapshot(marker.uuid, state)))

    def _handle_snapshot(self, snapshot: _Snapshot) -> None:
        self._snapshots[snapshot.marker_uuid] = snapshot
        waiter = self._snapshot_waiters.pop(snapshot.marker_uuid, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(snapshot)

    def _receive_snapshot(self, marker: _Marker):
        uuid = marker.uuid
        if uuid in self._applied or uuid != self._syncing_marker:
            return
        if uuid not in self._snapshots:
            waiter = self.kernel.event()
            self._snapshot_waiters[uuid] = waiter
            deadline = self.kernel.timeout(self.group.config.flush_timeout * 4)
            yield self.kernel.any_of([waiter, deadline])
            if not waiter.triggered:
                self._snapshot_waiters.pop(uuid, None)
                fresh = _Marker(self._next_marker_uuid(), self.address)
                self._syncing_marker = fresh.uuid
                self._marker_seen = False
                self.group.multicast(fresh)
                return
        snapshot = self._snapshots[uuid]
        self._applied.add(uuid)
        yield from self.driver.restore(snapshot.state)
        self._syncing_marker = None
        self.active = True
        self.log.info(self.tag, "snapshot transfer complete, replica active")
