"""Generic symmetric active/active replication for deterministic services.

The paper's §3 presents a *universal* architecture (Figures 5-7): any
deterministic service can be made continuously available by wrapping it in
a virtually synchronous environment — intercept its interface, totally
order the state-changing requests through a group communication system,
execute them at every replica, and deliver output exactly once. JOSHUA is
that architecture specialised to the PBS interface; §1 and §6 name the PVFS
metadata server as the next target ("the generic symmetric active/active
high availability model our approach is based on is applicable to any
deterministic HPC system service, such as the metadata server of the
parallel virtual file system").

:class:`~repro.aa.replicated.ReplicatedService` is that universal wrapper,
extracted as a reusable component:

* client requests carry UUIDs; replicas multicast them with SAFE service,
  execute them in delivery order through a *backend driver* the service
  plugs in, and the contacted replica relays the output — exactly once
  across client retries and failovers;
* joins use the marker-cut protocol (pin a point in the command stream,
  transfer a backend snapshot as of that point, execute only post-cut
  commands);
* leaves and failures are handled by the group membership layer.

:mod:`repro.pvfs` applies it to a PVFS-like metadata server, completing
the paper's stated follow-on.
"""

from repro.aa.replicated import ReplicatedService, BackendDriver

__all__ = ["ReplicatedService", "BackendDriver"]
