"""Event primitives for the DES kernel.

An :class:`Event` is a one-shot occurrence. It starts *pending*; exactly once
it is *triggered* — either succeeding with a value or failing with an
exception — after which the kernel runs its callbacks (resuming any processes
waiting on it) and the event becomes *processed*.

Composites :class:`AnyOf` and :class:`AllOf` let a process wait for the first
or all of several events; both are events themselves, so they nest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

__all__ = ["PENDING", "TRIGGERED", "PROCESSED", "Event", "Timeout", "AnyOf", "AllOf"]

PENDING = "pending"
TRIGGERED = "triggered"
PROCESSED = "processed"


class Event:
    """A one-shot occurrence on the simulation timeline.

    Parameters
    ----------
    kernel:
        The kernel whose timeline this event lives on.

    Notes
    -----
    Callbacks receive the event as their only argument and run when the
    kernel processes the event, in registration order.
    """

    __slots__ = ("kernel", "callbacks", "cancelled", "det_key", "_state", "_ok", "_value")

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.callbacks: list[Callable[["Event"], None]] = []
        #: Set when a waiting process was interrupted away from this event;
        #: queue-like primitives (Store, Resource) skip cancelled waiters.
        self.cancelled = False
        #: Optional explicit tie-break annotation: schedulers that fan out
        #: several same-time events set this so the determinism sanitizer
        #: can tell them apart (see :mod:`repro.sim.sanitizer`). Purely
        #: observational — never affects ordering.
        self.det_key: Any = None
        self._state = PENDING
        self._ok: bool | None = None
        self._value: Any = None

    # -- inspection ------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def triggered(self) -> bool:
        """True once the outcome is decided (callbacks may not have run yet)."""
        return self._state != PENDING

    @property
    def processed(self) -> bool:
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only valid once :attr:`triggered`."""
        if self._ok is None:
            raise SimulationError("event outcome not decided yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception. Valid once triggered."""
        if not self.triggered:
            raise SimulationError("event has not been triggered")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Decide the event successfully and schedule its callbacks now."""
        self._decide(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Decide the event as failed; waiters have *exception* thrown in."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._decide(False, exception)
        return self

    def _decide(self, ok: bool, value: Any) -> None:
        if self._state != PENDING:
            raise SimulationError(f"event already {self._state}; cannot trigger twice")
        self._ok = ok
        self._value = value
        self._state = TRIGGERED
        self.kernel._enqueue(self)

    def _process(self) -> None:
        """Run callbacks. Called by the kernel only."""
        self._state = PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._state} at t={self.kernel.now}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None,
                 *, det_key: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(kernel)
        self.delay = delay
        self.det_key = det_key
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        kernel._enqueue(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover - guard
        raise SimulationError("a Timeout triggers itself; do not call succeed()")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover - guard
        raise SimulationError("a Timeout triggers itself; do not call fail()")


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, kernel: "Kernel", events: Iterable[Event]):
        super().__init__(kernel)
        self.events = tuple(events)
        for ev in self.events:
            if ev.kernel is not kernel:
                raise SimulationError("cannot mix events from different kernels")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds when the first child event does (fails if that child fails).

    The success value is a dict of the child events that had succeeded at
    processing time, mapped to their values.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Succeeds when every child succeeds; fails on the first child failure."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())
