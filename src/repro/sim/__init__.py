"""Deterministic discrete-event simulation (DES) kernel.

Everything in this reproduction — the LAN, the Transis-like group
communication system, the PBS daemons, JOSHUA itself, the failure injectors —
runs as cooperating *processes* on this kernel. A process is a Python
generator that ``yield``\\ s :class:`~repro.sim.events.Event` objects to wait
on; the kernel advances a simulated clock from event to event, so a
"3-5 day" availability experiment finishes in milliseconds of wall time and
is exactly reproducible from its seed.

The design follows the SimPy process-interaction style (implemented from
scratch; SimPy is not a dependency):

* :class:`~repro.sim.kernel.Kernel` — event heap + clock + process spawner.
* :class:`~repro.sim.events.Event` — one-shot occurrence; may succeed with a
  value or fail with an exception.
* :class:`~repro.sim.events.Timeout` — fires after a simulated delay.
* :class:`~repro.sim.events.AnyOf` / :class:`~repro.sim.events.AllOf` —
  composite wait conditions.
* :class:`~repro.sim.process.Process` — a running generator; itself an event
  that triggers when the generator returns (so processes can wait on each
  other), interruptible via :meth:`~repro.sim.process.Process.interrupt`.
* :class:`~repro.sim.resources.Store` / :class:`~repro.sim.resources.Resource`
  — blocking queues and counted locks for daemon mailboxes and node CPUs.

Example
-------
>>> from repro.sim import Kernel
>>> k = Kernel()
>>> log = []
>>> def proc(kernel):
...     yield kernel.timeout(5.0)
...     log.append(kernel.now)
>>> _ = k.spawn(proc(k))
>>> k.run()
>>> log
[5.0]
"""

from repro.sim.events import Event, Timeout, AnyOf, AllOf
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.resources import Store, Resource

from repro.util.errors import Interrupt

__all__ = [
    "Kernel",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Store",
    "Resource",
    "Interrupt",
]
