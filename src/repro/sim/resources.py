"""Blocking queues and counted locks for simulation processes.

:class:`Store` is an unbounded-or-bounded FIFO queue: daemons use one as
their mailbox (``yield store.get()`` blocks the daemon until a message
arrives). :class:`Resource` is a counted lock ("N slots"): compute-node CPUs
and the exclusive-allocation policy of the Maui stand-in are modelled with
it.

Both hand out events in strict FIFO order, which keeps the simulation
deterministic and models the fair queueing of the real daemons' socket
accept loops well enough for this paper's experiments.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sim.events import Event
from repro.util.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

__all__ = ["Store", "Resource"]


class Store:
    """FIFO queue of items with blocking ``get`` and (optionally) ``put``.

    Parameters
    ----------
    kernel:
        Owning kernel.
    capacity:
        ``None`` for unbounded; otherwise ``put`` events block while full.
    """

    def __init__(self, kernel: "Kernel", capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Event that succeeds once *item* is accepted into the store."""
        event = Event(self.kernel)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
            self._dispatch()
        else:
            self._putters.append((event, item))
        return event

    def put_nowait(self, item: Any) -> None:
        """Non-blocking put; raises if the store is full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise SimulationError("store is full")
        self._items.append(item)
        self._dispatch()

    def get(self) -> Event:
        """Event that succeeds with the oldest item once one is available."""
        event = Event(self.kernel)
        self._getters.append(event)
        self._dispatch()
        return event

    def get_nowait(self) -> Any:
        """Non-blocking get; raises if empty."""
        if not self._items:
            raise SimulationError("store is empty")
        item = self._items.popleft()
        self._admit_putters()
        return item

    def _admit_putters(self) -> None:
        while self._putters and (self.capacity is None or len(self._items) < self.capacity):
            event, item = self._putters.popleft()
            if event.triggered or event.cancelled:  # waiter gone
                continue
            self._items.append(item)
            event.succeed()

    def _dispatch(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            if getter.triggered or getter.cancelled:
                continue
            getter.succeed(self._items.popleft())
            self._admit_putters()

    def cancel_all(self, exception: BaseException) -> None:
        """Fail every pending getter/putter — used when a daemon's node dies."""
        for getter in list(self._getters):
            if not getter.triggered:
                getter.fail(exception)
        self._getters.clear()
        for event, _item in list(self._putters):
            if not event.triggered:
                event.fail(exception)
        self._putters.clear()


class Resource:
    """A counted lock with FIFO granting.

    ``yield resource.acquire()`` blocks until a slot is free; ``release()``
    frees one. The token returned by ``acquire`` must be passed to
    ``release`` — this catches double-release bugs in daemon code.
    """

    def __init__(self, kernel: "Kernel", slots: int = 1):
        if slots <= 0:
            raise SimulationError(f"slots must be positive, got {slots}")
        self.kernel = kernel
        self.slots = slots
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        self._next_token = 0
        self._live_tokens: set[int] = set()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.slots - self._in_use

    def acquire(self) -> Event:
        """Event that succeeds with an opaque token once a slot is granted."""
        event = Event(self.kernel)
        self._waiters.append(event)
        self._grant()
        return event

    def release(self, token: int) -> None:
        if token not in self._live_tokens:
            raise SimulationError(f"release of unknown or already-released token {token}")
        self._live_tokens.discard(token)
        self._in_use -= 1
        self._grant()

    def _grant(self) -> None:
        while self._waiters and self._in_use < self.slots:
            waiter = self._waiters.popleft()
            if waiter.triggered or waiter.cancelled:
                continue
            self._in_use += 1
            token = self._next_token
            self._next_token += 1
            self._live_tokens.add(token)
            waiter.succeed(token)
