"""Runtime determinism sanitizer: ambiguous-tie and pop-order drift detection.

Symmetric active/active replication (and every determinism canary in the
test suite) assumes the event queue is a pure function of the seed: the
kernel breaks timestamp ties by insertion sequence, so *insertion order*
itself must be deterministic. Two bug classes silently violate that:

1. **Ambiguous ties** — two events land at the same ``(time, priority)``
   and nothing about them (scheduling site, owning process, payload,
   explicit ``det_key``) tells them apart. Their relative order then rests
   *only* on insertion sequence, which typically means "whatever order the
   scheduling loop iterated its container in" — one ``for x in some_set``
   upstream and the simulation is hash-seed dependent.

2. **Pop-order drift** — events are distinguishable, but the order they
   were *inserted* in (and hence pop in) derives from an unordered
   container. One run cannot see this; two runs under different
   ``PYTHONHASHSEED`` values can. :attr:`DeterminismSanitizer.digest` is a
   running CRC over the pop-order fingerprints — compare digests across
   processes (or across repeated in-process runs) to detect drift.

Enable with ``Kernel(sanitize=True)``. The sanitizer is purely an
observer: it never reorders, delays, or drops events, so a sanitized run
is bit-identical to an unsanitized one.
"""

from __future__ import annotations

import dataclasses
import enum
import sys
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

__all__ = ["DeterminismSanitizer", "Ambiguity", "AliasingViolation", "EnqueueMeta"]

#: Stable scalar types whose repr is process-independent (no memory
#: addresses, no hash-order) and therefore safe to fingerprint.
_STABLE_SCALARS = (type(None), bool, int, float, str, bytes)


def _stable_token(value: Any, depth: int = 0) -> str:
    """A repr-like token for *value* that never embeds ``0x…`` addresses.

    Tuples/lists of stable scalars recurse (wire payloads are tuples of
    addresses and counters); anything else degrades to its type name, which
    is weaker but always deterministic.
    """
    if isinstance(value, _STABLE_SCALARS):
        return repr(value)
    if isinstance(value, (tuple, list)) and depth < 3:
        inner = ",".join(_stable_token(v, depth + 1) for v in value[:8])
        return f"({inner})"
    if dataclasses.is_dataclass(value) and not isinstance(value, type) and depth < 3:
        inner = ",".join(
            _stable_token(getattr(value, f.name), depth + 1)
            for f in dataclasses.fields(value)[:8]
        )
        return f"{type(value).__name__}({inner})"
    if isinstance(value, BaseException) and depth < 3:
        inner = ",".join(_stable_token(a, depth + 1) for a in value.args[:4])
        return f"{type(value).__name__}({inner})"
    return type(value).__name__


def _callback_owner(callback: Any) -> str:
    """Stable identity of one event callback: the owning process name for
    bound methods, the qualified name for plain functions/closures."""
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", None)
        if isinstance(name, str):
            return name
        return type(owner).__name__
    return getattr(callback, "__qualname__", type(callback).__name__)


def _collect_identities(value: Any, out: dict[int, Any]) -> None:
    """Record the identity of every *structural* object reachable from
    *value*: containers and class instances, i.e. anything whose identity
    crossing a node boundary would let one node observe (or mutate) another
    node's state. Immutable scalars and enum members are skipped — the
    interpreter legitimately shares those (interning, singletons)."""
    stack = [value]
    while stack:
        obj = stack.pop()
        if obj is None or isinstance(obj, (str, bytes, bool, int, float)):
            continue
        if isinstance(obj, enum.Enum):
            continue  # members are per-class singletons by design
        if id(obj) in out:
            continue  # already visited (also breaks reference cycles)
        if isinstance(obj, tuple):
            if obj:  # () is an interpreter-wide singleton — not evidence
                out[id(obj)] = obj
                stack.extend(obj)
        elif isinstance(obj, list):
            out[id(obj)] = obj
            stack.extend(obj)
        elif isinstance(obj, dict):
            out[id(obj)] = obj
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (set, frozenset)):
            out[id(obj)] = obj
            stack.extend(obj)
        elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
            out[id(obj)] = obj
            stack.extend(
                getattr(obj, field.name) for field in dataclasses.fields(obj)
            )
        else:
            out[id(obj)] = obj  # arbitrary instance: identity-bearing


@dataclass(frozen=True)
class EnqueueMeta:
    """Captured at enqueue time (site/process must be read *then*)."""

    site: str       # "file.py:lineno" of the first frame outside repro.sim
    process: str    # active process name, or "-" for callback context


@dataclass(frozen=True)
class Ambiguity:
    """Two or more same-(time, priority) events with identical tie-break
    fingerprints: their relative execution order is decided purely by
    insertion sequence, which nothing in the code pins down."""

    time: float
    priority: int
    fingerprint: str
    count: int

    def describe(self) -> str:
        return (
            f"t={self.time:.6f} prio={self.priority}: {self.count} events share "
            f"tie-break fingerprint {self.fingerprint} — order rests on "
            f"insertion sequence alone (iterate sorted containers, or pass "
            f"det_key= to distinguish them)"
        )


@dataclass(frozen=True)
class AliasingViolation:
    """A delivered payload shares object identity with the sender's copy.

    The wire boundary promises that :meth:`~repro.net.network.Network.send`
    encodes and delivery decodes a *fresh* graph; any identity surviving the
    crossing means one node can mutate (or observe mutations of) state
    another node still holds — exactly the cross-replica coupling a real
    network makes impossible."""

    time: float
    src: str
    dst: str
    token: str  # stable token of the shared component (never an address)

    def describe(self) -> str:
        return (
            f"t={self.time:.6f} {self.src}->{self.dst}: delivered payload "
            f"shares object identity with the sender's copy ({self.token}) — "
            f"wire messages must be decoded fresh, never passed by reference"
        )


class DeterminismSanitizer:
    """Observer attached to a :class:`~repro.sim.kernel.Kernel`.

    The kernel calls :meth:`capture` at enqueue (site/process attribution)
    and :meth:`observe_pop` at each pop. Pops at one ``(time, priority)``
    are buffered into a *tie window*; when the window closes, identical
    fingerprints within it are reported as :class:`Ambiguity` records and
    every fingerprint is folded into :attr:`digest` in pop order. The
    network additionally calls :meth:`check_payload_isolation` on every
    delivery to audit the serialization boundary.
    """

    def __init__(self) -> None:
        #: Running CRC32 over pop-order fingerprints (cross-run comparable).
        self.digest = 0
        #: Detected same-timestamp ambiguities, in detection order.
        self.ambiguities: list[Ambiguity] = []
        #: Cross-node payload aliasing violations, in detection order.
        self.aliasing: list[AliasingViolation] = []
        self._seen: set[tuple[float, int, str]] = set()
        self._alias_seen: set[tuple[str, str, str]] = set()
        self._window_key: tuple[float, int] | None = None
        self._window: dict[str, int] = {}
        self._pops = 0
        #: Optional callback ``fn(finding)`` invoked with each
        #: :class:`Ambiguity` / :class:`AliasingViolation` as it is recorded
        #: (the flight recorder in ``repro.obs`` registers here to trigger a
        #: postmortem dump). Observation only.
        self.on_finding: Any = None

    # -- enqueue side ------------------------------------------------------

    def capture(self, active_process: str | None) -> EnqueueMeta:
        """Record scheduling context for one event (kernel calls this)."""
        site = "?"
        frame = sys._getframe(2)  # skip capture() and Kernel._enqueue
        while frame is not None:
            filename = frame.f_code.co_filename.replace("\\", "/")
            if "repro/sim/" not in filename:
                site = f"{filename.rsplit('/', 1)[-1]}:{frame.f_lineno}"
                break
            frame = frame.f_back
        return EnqueueMeta(site=site, process=active_process or "-")

    # -- pop side ----------------------------------------------------------

    def fingerprint(self, event: "Event", meta: EnqueueMeta | None) -> str:
        """Tie-break fingerprint for *event*, computed at pop time (so
        callbacks attached after enqueue are visible)."""
        parts = [type(event).__name__]
        if meta is not None:
            parts.append(meta.site)
            parts.append(meta.process)
        det_key = getattr(event, "det_key", None)
        if det_key is not None:
            parts.append(f"key={_stable_token(det_key)}")
        delay = getattr(event, "delay", None)
        if delay is not None:
            parts.append(f"delay={delay!r}")
        name = getattr(event, "name", None)  # Process events carry names
        if isinstance(name, str):
            parts.append(name)
        try:
            value = event.value if event.triggered else None
        except Exception:  # pragma: no cover - defensive
            value = None
        if value is not None:
            parts.append(_stable_token(value))
        if event.callbacks:
            parts.append("+".join(_callback_owner(cb) for cb in event.callbacks[:4]))
        return "|".join(parts)

    def observe_pop(self, time: float, priority: int, event: "Event",
                    meta: EnqueueMeta | None) -> None:
        fp = self.fingerprint(event, meta)
        self._pops += 1
        self.digest = zlib.crc32(
            f"{time!r}:{priority}:{fp}".encode("utf-8", "replace"), self.digest
        )
        key = (time, priority)
        if key != self._window_key:
            self._flush_window()
            self._window_key = key
        self._window[fp] = self._window.get(fp, 0) + 1

    def _flush_window(self) -> None:
        if self._window_key is None:
            return
        time, priority = self._window_key
        for fp, count in self._window.items():
            if count > 1 and (time, priority, fp) not in self._seen:
                self._seen.add((time, priority, fp))
                finding = Ambiguity(time, priority, fp, count)
                self.ambiguities.append(finding)
                if self.on_finding is not None:
                    self.on_finding(finding)
        self._window.clear()

    # -- wire boundary -----------------------------------------------------

    def check_payload_isolation(self, time: float, src: Any, dst: Any,
                                sent: Any, delivered: Any) -> None:
        """Flag any object identity shared between a *sent* payload and the
        *delivered* one (the network calls this on every delivery).

        Purely observational: both graphs are walked, nothing is copied or
        mutated, so a sanitized run stays bit-identical to an unsanitized
        one."""
        sent_ids: dict[int, Any] = {}
        _collect_identities(sent, sent_ids)
        if not sent_ids:
            return
        delivered_ids: dict[int, Any] = {}
        _collect_identities(delivered, delivered_ids)
        for obj_id, obj in delivered_ids.items():
            if sent_ids.get(obj_id) is obj:
                key = (str(src), str(dst), _stable_token(obj))
                if key not in self._alias_seen:
                    self._alias_seen.add(key)
                    finding = AliasingViolation(time, key[0], key[1], key[2])
                    self.aliasing.append(finding)
                    if self.on_finding is not None:
                        self.on_finding(finding)

    def finish(self) -> None:
        """Close the current tie window (call when the run ends)."""
        self._flush_window()
        self._window_key = None

    def report(self) -> str:
        self.finish()
        lines = [f"determinism sanitizer: {self._pops} pops, "
                 f"digest={self.digest:#010x}, "
                 f"{len(self.ambiguities)} ambiguous tie(s), "
                 f"{len(self.aliasing)} aliased payload(s)"]
        lines.extend("  " + a.describe() for a in self.ambiguities)
        lines.extend("  " + v.describe() for v in self.aliasing)
        return "\n".join(lines)
