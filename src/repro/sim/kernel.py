"""The discrete-event simulation kernel: clock, event heap, process spawner.

The kernel owns a priority queue of ``(time, priority, sequence, event)``
entries. :meth:`Kernel.run` repeatedly pops the earliest entry, advances the
clock to its time, and processes the event (running callbacks, which resume
processes, which usually schedule more events). Ties at equal time break by
insertion order, making the whole simulation deterministic.

Time is a ``float`` in **seconds** throughout the library.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.sanitizer import DeterminismSanitizer
from repro.util.errors import SimulationError
from repro.util.rng import RandomStreams
from repro.util.simlog import SimLogger

__all__ = ["Kernel"]

#: Priority for ordinary events. Lower runs first at equal time.
NORMAL = 1
#: Priority used for urgent bookkeeping (none currently; reserved).
URGENT = 0


class Kernel:
    """Simulation kernel.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.util.rng.RandomStreams` family
        exposed as :attr:`streams`.
    strict_errors:
        If true (default), :meth:`run` raises when a process crashed with an
        unhandled exception that no other process observed. Turning this off
        is only sensible in fault-injection experiments that deliberately
        kill daemons mid-protocol.
    log_level / log_echo:
        Configuration for the kernel-wide :class:`SimLogger`.
    sanitize:
        Attach a :class:`~repro.sim.sanitizer.DeterminismSanitizer`
        (exposed as :attr:`sanitizer`): every pop feeds a cross-run order
        digest, and same-timestamp events with indistinguishable tie-break
        fingerprints are recorded as ambiguities. Observation only — a
        sanitized run is bit-identical to an unsanitized one.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        strict_errors: bool = True,
        log_level: str = "WARNING",
        log_echo: bool = False,
        sanitize: bool = False,
    ):
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self.strict_errors = strict_errors
        self.streams = RandomStreams(seed)
        self.log = SimLogger(lambda: self._now, level=log_level, echo=log_echo)
        self._crashed_processes: list[tuple[Process, BaseException]] = []
        self._processed_events = 0
        self.sanitizer: DeterminismSanitizer | None = (
            DeterminismSanitizer() if sanitize else None
        )
        #: Process currently being resumed (set by Process._resume); the
        #: sanitizer uses it to attribute scheduled events to their creator.
        self._active_process: Process | None = None
        self._enqueue_meta: dict[int, object] = {}
        #: Hooks ``fn(now)`` invoked whenever the clock advances to a new
        #: time (observation only — fired after ``_now`` is updated, before
        #: the event at that time is processed). The time-series sampler in
        #: ``repro.obs`` registers here; empty by default, costing one
        #: truthiness check per step.
        self.on_advance: list = []

    # -- clock & stats ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total events processed so far (profiling/regression aid)."""
        return self._processed_events

    @property
    def queued_events(self) -> int:
        return len(self._heap)

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event; trigger it with ``succeed``/``fail``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None, *, det_key: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now.

        ``det_key`` optionally annotates the timeout with an explicit
        tie-break identity (e.g. the (src, dst) of an in-flight datagram)
        so the determinism sanitizer can distinguish same-time fan-outs.
        """
        return Timeout(self, delay, value, det_key=det_key)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    def spawn(self, generator: Generator[Event, Any, Any], name: str | None = None) -> Process:
        """Start a new process running *generator*; returns the process."""
        return Process(self, generator, name=name)

    # -- scheduling (internal) ---------------------------------------------

    def _enqueue(self, event: Event, *, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._sequence += 1
        if self.sanitizer is not None:
            active = self._active_process
            self._enqueue_meta[id(event)] = self.sanitizer.capture(
                active.name if active is not None else None
            )
        heapq.heappush(self._heap, (self._now + delay, priority, self._sequence, event))

    # -- main loop ----------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event, advancing the clock to it."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        time, priority, _seq, event = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - heap invariant
            raise SimulationError(f"time ran backwards: {time} < {self._now}")
        advanced = time > self._now
        self._now = time
        self._processed_events += 1
        if advanced and self.on_advance:
            for hook in self.on_advance:
                hook(time)
        if self.sanitizer is not None:
            meta = self._enqueue_meta.pop(id(event), None)
            self.sanitizer.observe_pop(time, priority, event, meta)
        event._process()

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until no events remain.
            ``float``
                run until the clock reaches that time (events at exactly
                that time are processed; the clock finishes at ``until``).
            :class:`Event`
                run until the given event has been processed; returns its
                value (raising its exception if it failed).
        """
        stop_event: Event | None = None
        stop_time: float | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(f"until={stop_time} is in the past (now={self._now})")

        while self._heap:
            if stop_event is not None and stop_event.processed:
                break
            if stop_time is not None and self._heap[0][0] > stop_time:
                break
            self.step()
            if stop_event is not None:
                # A failure of the awaited process is observed by this very
                # run() call — it is re-raised below, not an orphan crash.
                self._crashed_processes = [
                    entry for entry in self._crashed_processes if entry[0] is not stop_event
                ]
            self._check_crashes()

        if stop_time is not None and self._now < stop_time:
            self._now = stop_time
        if self.sanitizer is not None:
            self.sanitizer.finish()
        self._check_crashes()
        if stop_event is not None:
            if not stop_event.processed:
                raise SimulationError("run() exhausted all events before `until` event triggered")
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        return None

    def _check_crashes(self) -> None:
        if self.strict_errors and self._crashed_processes:
            process, exc = self._crashed_processes[0]
            raise SimulationError(
                f"process {process.name!r} crashed at t={self._now}: {exc!r}"
            ) from exc

    def drain_crashes(self) -> list[tuple[Process, BaseException]]:
        """Return and clear recorded unobserved process crashes."""
        crashes, self._crashed_processes = self._crashed_processes, []
        return crashes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel t={self._now} queued={len(self._heap)} processed={self._processed_events}>"
