"""Simulation processes: generators driven by the kernel.

A process wraps a generator that ``yield``\\ s events. Whenever the awaited
event is processed, the kernel resumes the generator with the event's value
(or throws the event's failure exception into it). The process object is
itself an :class:`~repro.sim.events.Event` that triggers when the generator
finishes, so processes can wait on one another:

>>> def child(k):
...     yield k.timeout(2)
...     return "done"
>>> def parent(k):
...     result = yield k.spawn(child(k))
...     assert result == "done"

A waiting process can be *interrupted*: :meth:`Process.interrupt` throws
:class:`~repro.util.errors.Interrupt` into the generator at the current
simulated time, detaching it from whatever it was waiting on. Daemons use
this for shutdown and crash handling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.sim.events import Event
from repro.util.errors import Interrupt, ProcessDied, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

__all__ = ["Process"]


class Process(Event):
    """A running generator on the simulation timeline.

    Created via :meth:`Kernel.spawn`; do not instantiate directly.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_interrupts")

    def __init__(self, kernel: "Kernel", generator: Generator[Event, Any, Any], name: str | None = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"spawn() needs a generator (did you forget to call the function?): {generator!r}"
            )
        super().__init__(kernel)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        self._interrupts: list[Interrupt] = []
        # Kick off on the next kernel step at the current time.
        bootstrap = Event(kernel)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    # -- public API ------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op (matching the common
        pattern of a supervisor interrupting workers that may have exited).
        Multiple interrupts queue and are delivered one per resumption.
        """
        if self.triggered:
            return
        self._interrupts.append(Interrupt(cause))
        if self._waiting_on is not None:
            target, self._waiting_on = self._waiting_on, None
            target.cancelled = True
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        # Deliver on the next kernel step so interrupt() is safe to call
        # from within another process or plain callback.
        wake = Event(self.kernel)
        wake.callbacks.append(self._resume)
        wake.succeed()

    # -- kernel plumbing --------------------------------------------------

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        # Attribute everything the generator schedules during this resumption
        # to this process (the determinism sanitizer reads _active_process).
        previous_active = self.kernel._active_process
        self.kernel._active_process = self
        try:
            try:
                if self._interrupts:
                    exc = self._interrupts.pop(0)
                    target = self.generator.throw(exc)
                elif event.ok:
                    target = self.generator.send(event.value)
                else:
                    value = event.value
                    if isinstance(event, Process) and not isinstance(value, BaseException):
                        value = ProcessDied(event, value)  # pragma: no cover - safety net
                    target = self.generator.throw(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt:
                # An uncaught interrupt terminates the process quietly: this is
                # the normal way daemons shut down.
                self.succeed(None)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self.fail(exc)
                if not self.callbacks:
                    # Nobody is waiting on this process: remember the crash so
                    # Kernel.run() can surface it instead of silently dropping it.
                    self.kernel._crashed_processes.append((self, exc))
                return
            if not isinstance(target, Event):
                exc = SimulationError(f"process {self.name} yielded non-event {target!r}")
                self.fail(exc)
                if not self.callbacks:
                    self.kernel._crashed_processes.append((self, exc))
                return
            if target.kernel is not self.kernel:
                exc = SimulationError("process yielded an event from a different kernel")
                self.fail(exc)
                if not self.callbacks:
                    self.kernel._crashed_processes.append((self, exc))
                return
            if target.processed:
                # Already settled: resume immediately via a zero-delay event.
                wake = Event(self.kernel)
                wake.callbacks.append(lambda _ev: self._resume(target))
                wake.succeed()
                self._waiting_on = None
            else:
                target.callbacks.append(self._resume)
                self._waiting_on = target
        finally:
            self.kernel._active_process = previous_active

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.is_alive else self.state
        return f"<Process {self.name} {status}>"
