"""Deployment of the full JOSHUA system on a simulated cluster.

:func:`build_joshua_stack` assembles the paper's Figure 8 architecture:

* on every head node: a TORQUE PBS server + Maui scheduler (FIFO,
  exclusive) + the joshua daemon;
* on every compute node: one PBS mom registered with *all* head-node
  servers (TORQUE v2.0p1 multi-server feature) with the jmutex prologue
  and jdone epilogue installed;
* all joshua daemons in one group over the simulated LAN.

Later heads can be added live with :meth:`JoshuaStack.add_head` — the new
head boots its own PBS stack, joins the group and receives state transfer,
reproducing the paper's head-node join.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.gcs.config import GroupConfig
from repro.joshua.commands import JoshuaClient
from repro.joshua.config import JOSHUA_GROUP_CONFIG
from repro.joshua.jmutex import install_jmutex
from repro.joshua.server import JoshuaServer
from repro.net.address import Address
from repro.pbs.mom import PBSMom
from repro.pbs.scheduler import MauiScheduler
from repro.pbs.server import PBS_MOM_PORT, PBS_SERVER_PORT, PBSServer
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.util.errors import JoshuaError

__all__ = ["JoshuaStack", "build_joshua_stack"]

#: All replicated servers share one logical server name so replayed
#: submissions yield identical job ids on every head (see DESIGN.md).
REPLICA_SERVER_NAME = "joshua"


@dataclass
class JoshuaStack:
    """Handles to a deployed JOSHUA system."""

    cluster: Cluster
    head_names: list[str]
    service_times: ServiceTimes
    group_config: GroupConfig
    state_transfer: str
    #: Independent ordering groups hosted on the shared heads. Every head
    #: runs one replica unit per shard; :meth:`add_head` joins all of them.
    shards: int = 1
    legacy_obit_retry: bool = False
    #: Maui policy. True is the paper's configuration ("each job exclusive
    #: access to our test cluster"); False is the future-work mode it
    #: forecasts — safe here because strict head-of-queue FIFO keeps the
    #: replicated schedulers' decisions convergent and the launch mutex
    #: arbitrates any transient divergence.
    exclusive: bool = True

    @property
    def mom_addresses(self) -> list[Address]:
        return [Address(c.name, PBS_MOM_PORT) for c in self.cluster.computes]

    def joshua(self, head: str) -> JoshuaServer:
        return self.cluster.node(head).daemon("joshua")  # type: ignore[return-value]

    def pbs(self, head: str) -> PBSServer:
        return self.cluster.node(head).daemon("pbs_server")  # type: ignore[return-value]

    def mom(self, compute: str) -> PBSMom:
        return self.cluster.node(compute).daemon("pbs_mom")  # type: ignore[return-value]

    def live_heads(self) -> list[str]:
        return [h for h in self.head_names if self.cluster.node(h).is_up]

    def client(self, node: str | None = None, **kwargs) -> JoshuaClient:
        """A JOSHUA command client on *node* (default: first head)."""
        return JoshuaClient(
            self.cluster.network,
            node or self.head_names[0],
            self.head_names,
            service_times=self.service_times,
            **kwargs,
        )

    def gateway(self, **kwargs) -> "JoshuaGateway":
        """A client gateway over this stack's heads (see
        :mod:`repro.joshua.gateway`)."""
        from repro.joshua.gateway import JoshuaGateway

        kwargs.setdefault("service_times", self.service_times)
        return JoshuaGateway(self.cluster.network, self.head_names, **kwargs)

    def _install_head_daemons(self, node: Node, *, initial: bool, contacts: list[str]) -> None:
        mom_addresses = self.mom_addresses
        server_address = Address(node.name, PBS_SERVER_PORT)
        times = self.service_times

        node.add_daemon(
            "pbs_server",
            lambda n: PBSServer(
                n,
                moms=mom_addresses,
                server_name=REPLICA_SERVER_NAME,
                service_times=times,
            ),
        )
        exclusive = self.exclusive
        node.add_daemon(
            "maui",
            lambda n: MauiScheduler(
                n, server=server_address, service_times=times, exclusive=exclusive
            ),
        )
        heads_at_creation = list(self.head_names)
        config = self.group_config
        mode = self.state_transfer
        shards = self.shards
        stack = self
        # A joshua daemon must only *boot* the group on its very first
        # start. Any later instantiation — the daemon was killed and
        # restarted, or its node crashed and rebooted — is a fresh
        # incarnation that must JOIN the existing group and receive state
        # transfer, or it would resurrect a stale divergent replica (the
        # paper's process-kill fault would otherwise split the brain).
        # Full-cluster cold restart is an operator action: redeploy.
        first_start = {"pending": initial}

        def joshua_factory(n: Node) -> JoshuaServer:
            if first_start["pending"]:
                first_start["pending"] = False
                return JoshuaServer(
                    n,
                    initial_heads=heads_at_creation,
                    group_config=config,
                    state_transfer=mode,
                    moms=mom_addresses,
                    shards=shards,
                )
            live = [h for h in stack.live_heads() if h != n.name]
            return JoshuaServer(
                n,
                contacts=live or contacts or [h for h in heads_at_creation if h != n.name],
                group_config=config,
                state_transfer=mode,
                moms=mom_addresses,
                shards=shards,
            )

        node.add_daemon("joshua", joshua_factory)

    def add_head(self, name: str | None = None) -> Node:
        """Bring a brand-new head node into the running system (join +
        state transfer). Returns the new node."""
        contacts = self.live_heads()
        if not contacts:
            raise JoshuaError("no live head to join through")
        name = name or f"head{len(self.head_names)}"
        node = Node(self.cluster.network, name, role="head")
        self.cluster.heads.append(node)
        self.cluster.register_node(node)
        self.head_names.append(name)
        self._install_head_daemons(node, initial=False, contacts=contacts)
        return node


def build_joshua_stack(
    cluster: Cluster,
    *,
    service_times: ServiceTimes = ERA_2006,
    group_config: GroupConfig = JOSHUA_GROUP_CONFIG,
    state_transfer: str = "replay",
    shards: int = 1,
    legacy_obit_retry: bool = False,
    exclusive: bool = True,
) -> JoshuaStack:
    """Deploy JOSHUA across every head node of *cluster*.

    *shards* > 1 partitions the ordering layer: N independent GCS groups
    over the same heads, job namespace split by PBS queue (PROTOCOLS.md
    §10). The default reproduces the paper's single group exactly.
    """
    if not cluster.heads:
        raise JoshuaError("cluster has no head nodes")
    if shards < 1:
        raise JoshuaError("shards must be >= 1")
    stack = JoshuaStack(
        cluster=cluster,
        head_names=[h.name for h in cluster.heads],
        service_times=service_times,
        group_config=group_config,
        state_transfer=state_transfer,
        shards=shards,
        legacy_obit_retry=legacy_obit_retry,
        exclusive=exclusive,
    )
    server_addresses = [Address(h, PBS_SERVER_PORT) for h in stack.head_names]
    for head in cluster.heads:
        stack._install_head_daemons(head, initial=True, contacts=[])

    def mom_factory(n: Node) -> PBSMom:
        mom = PBSMom(
            n,
            servers=list(server_addresses),
            service_times=service_times,
            legacy_obit_retry=legacy_obit_retry,
        )
        install_jmutex(mom)
        return mom

    for compute in cluster.computes:
        compute.add_daemon("pbs_mom", mom_factory)
    return stack
