"""``jmutex`` / ``jdone``: the distributed mutual exclusion in the mom's
job-start prologue.

Paper §4: "The JOSHUA scripts are part of the job start prologue and
perform a distributed mutual exclusion using the Transis group
communication system to ensure that the job gets started only once, and to
emulate the job start for all other attempts for this particular job. Once
the job has finished, the distributed mutual exclusion is released."

:func:`install_jmutex` wires a :class:`~repro.pbs.mom.PBSMom` with:

* a prologue hook that asks the attempting head's joshua server for the
  launch decision (the joshua servers arbitrate via SAFE-multicast claims;
  first claim in the total order wins). A silent joshua (its head just
  died) yields ``"emulate"`` — the launch-mutex revocation at the next view
  change requeues the job if the winner never actually launched it;
* an ``on_job_start`` notifier (the winning attempt confirms the launch
  really happened — this is what protects against revoking a job that *is*
  running);
* an ``on_job_done`` notifier (``jdone``: release the mutex so a recovered
  or re-run job id can be re-arbitrated).

Both notifiers are *first-responder*: one head accepting is enough, because
the accepting joshua multicasts the record to the whole group — so the
records survive the death of the head that happened to win. If no head
answers a pass (e.g. a transient full partition between the compute and
every head), the notifier backs off and retries the (re-read) head list for
a bounded number of passes rather than silently dropping the record, which
would leave the launch mutex unconfirmed or never released.
"""

from __future__ import annotations

from repro.joshua.wire import JDoneReq, JMutexReq, JStartedReq
from repro.net.address import Address
from repro.pbs.mom import PBSMom
from repro.pbs.wire import JobStartReq, JobObit
from repro.rpc import RpcTimeout, call as rpc_call, failover_call
from repro.util.errors import NoActiveHeadError, PBSError

__all__ = ["install_jmutex"]

#: Must match repro.joshua.server.JOSHUA_PORT (redeclared to avoid an
#: import cycle; asserted equal in tests).
_JOSHUA_PORT = 4412


def install_jmutex(
    mom: PBSMom,
    *,
    timeout: float = 2.0,
    notify_passes: int = 6,
    notify_backoff: float = 0.25,
    notify_backoff_cap: float = 2.0,
) -> None:
    """Attach the jmutex prologue hook and jdone epilogue to *mom*.

    ``notify_passes`` bounds how many times the Started/Done notifier
    sweeps the head list (with exponential backoff between sweeps, from
    ``notify_backoff`` up to ``notify_backoff_cap``) before abandoning the
    record and counting it in ``mom.stats["jnotify_abandoned"]``.
    """

    def jmutex_hook(mom_: PBSMom, req: JobStartReq):
        if req.server is None:
            return "run"  # not a server-driven attempt; nothing to arbitrate
        joshua = Address(req.server.node, _JOSHUA_PORT)
        try:
            response = yield from rpc_call(
                mom_.node.network, mom_.node.name, joshua,
                JMutexReq(req.job_id, req.server.node),
                timeout=timeout,
            )
            return response.decision
        except (RpcTimeout, PBSError):
            # The attempting head died mid-prologue. Emulating is the safe
            # answer: if the real winner also never launches, the view
            # change revokes the claim and the job is re-dispatched.
            return "emulate"

    def _notify_first_responder(request) -> None:
        """Deliver *request* to the first head that answers, retrying the
        whole head list with backoff until a bounded give-up.

        One acceptance suffices — the accepting joshua multicasts the
        Started/Done record group-wide. The head list is re-read each pass
        because ADMIN-SERVERS announcements may change it mid-retry.
        """

        def notifier():
            delay = notify_backoff
            for sweep in range(notify_passes):
                try:
                    # One acceptance pass over the head list. Down heads are
                    # still attempted (skip_down=False): the mom has no
                    # liveness oracle for heads, only the RPC timeout. Only a
                    # real acceptance counts — a (re)joining head answers
                    # with an error instead of recording the event, and the
                    # sweep must move on.
                    yield from failover_call(
                        mom.node.network, mom.node.name,
                        [Address(head, _JOSHUA_PORT)
                         for head in sorted({s.node for s in mom.servers})],
                        request,
                        timeout=timeout,
                        skip_down=False,
                        retry_error=lambda exc: True,
                        reject=lambda r: getattr(r, "decision", None) != "ok",
                    )
                    return
                except NoActiveHeadError:
                    pass
                if sweep + 1 < notify_passes:
                    yield mom.kernel.timeout(delay)
                    delay = min(delay * 2, notify_backoff_cap)
            mom.stats["jnotify_abandoned"] = (
                mom.stats.get("jnotify_abandoned", 0) + 1
            )
            mom.log.warning(
                mom.tag, f"abandoned jmutex notification {request!r}: no head answered"
            )

        mom.spawn(notifier(), name=f"{mom.tag}-jnotify")

    def on_start(req: JobStartReq) -> None:
        _notify_first_responder(JStartedReq(req.job_id))

    def on_done(obit: JobObit) -> None:
        _notify_first_responder(JDoneReq(obit.job_id))

    mom.prologue_hooks.append(jmutex_hook)
    mom.on_job_start = on_start
    mom.on_job_done = on_done
