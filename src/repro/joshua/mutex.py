"""Launch mutual exclusion (``jmutex``/``jdone``) claim arbitration.

Extracted from :class:`~repro.joshua.server.JoshuaServer`. Every head's
scheduler independently dispatches each job, so the mom receives one start
attempt per head; each attempt's prologue asks its head's joshua server,
which multicasts a SAFE :class:`~repro.joshua.wire.Claim`. The first claim
in the total order wins — only that head's attempt replies ``"run"``, the
rest emulate. ``jdone`` (from the mom's epilogue) releases the mutex.

Orphan-winner rerun: if a winner head dies *before* its launch actually
happened, every surviving server notices at the next view change (claim
present, no :class:`~repro.joshua.wire.Started`, winner not in view) and
enqueues a local ``qrerun`` through the serial executor, so the job is
re-dispatched and re-arbitrated rather than stranded in an emulated
RUNNING state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gcs.messages import SAFE
from repro.gcs.view import View
from repro.joshua.wire import Claim, Done, JMutexReq, JMutexResp, Started
from repro.net.address import Address
from repro.obs.collector import collector_of
from repro.pbs.wire import RerunReq
from repro.util.errors import PBSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.joshua.shard import ShardReplica

__all__ = ["MutexArbiter", "_MutexEntry"]


class _MutexEntry:
    __slots__ = ("winner", "started")

    def __init__(self, winner: str, started: bool = False):
        self.winner = winner
        self.started = started


class MutexArbiter:
    """Launch-mutex state and arbitration for one replica."""

    def __init__(self, replica: "ShardReplica"):
        self.s = replica
        #: Launch mutual exclusion state: job_id -> entry.
        self.entries: dict[str, _MutexEntry] = {}
        self.claimed: set[str] = set()  # job_ids we have claimed ourselves
        self._waiters: dict[str, list[tuple[Address, int]]] = {}

    # -- request side ---------------------------------------------------------

    def handle_jmutex(self, src: Address, request_id: int, req: JMutexReq) -> None:
        s = self.s
        collector = collector_of(s.node.network)
        if collector is not None:
            collector.job_event(s.node.name, "job.jmutex",
                                job_id=req.job_id, head=req.head)
        entry = self.entries.get(req.job_id)
        if entry is not None:
            decision = "run" if entry.winner == req.head else "emulate"
            s._reply(src, request_id, JMutexResp(decision, entry.winner))
            return
        self._waiters.setdefault(req.job_id, []).append((src, request_id))
        if req.job_id not in self.claimed and s.group.can_multicast:
            self.claimed.add(req.job_id)
            s.stats["claims"] += 1
            s.group.multicast(Claim(req.job_id, s.head_name), service=SAFE)

    def flush_waiters(self, job_id: str) -> None:
        s = self.s
        entry = self.entries.get(job_id)
        if entry is None:
            return
        waiters = self._waiters.pop(job_id, [])
        decision = "run" if entry.winner == s.head_name else "emulate"
        if waiters:
            collector = collector_of(s.node.network)
            if collector is not None:
                collector.job_event(s.node.name, "job.decided", job_id=job_id,
                                    decision=decision, winner=entry.winner)
        for src, request_id in waiters:
            s._reply(src, request_id, JMutexResp(decision, entry.winner))

    # -- delivered (totally ordered) side -------------------------------------

    def on_claim(self, claim: Claim) -> None:
        if claim.job_id not in self.entries:
            self.entries[claim.job_id] = _MutexEntry(claim.head)
            collector = collector_of(self.s.node.network)
            if collector is not None:
                collector.job_event(self.s.node.name, "job.claim",
                                    job_id=claim.job_id, head=claim.head)
        self.flush_waiters(claim.job_id)

    def on_started(self, started: Started) -> None:
        entry = self.entries.get(started.job_id)
        if entry is not None:
            entry.started = True

    def on_done(self, done: Done) -> None:
        self.entries.pop(done.job_id, None)
        self.claimed.discard(done.job_id)

    # -- orphan-winner revocation ---------------------------------------------

    def revoke_for_view(self, view: View) -> None:
        """Claims whose winner left the view without the job having started
        will never launch; requeue deterministically."""
        s = self.s
        member_nodes = {m.node for m in view.members}
        doomed = sorted(
            job_id
            for job_id, entry in self.entries.items()
            if entry.winner not in member_nodes and not entry.started
        )
        for job_id in doomed:
            self.entries.pop(job_id, None)
            self.claimed.discard(job_id)
            s.stats["revocations"] += 1
            s.executor.queue.put_nowait(("revoke", job_id))

    def execute_revoke(self, job_id: str):
        s = self.s
        try:
            yield from s.executor.local_rpc(RerunReq(job_id), retries=1)
            s.log.warning(s.tag, f"requeued {job_id}: launch winner died pre-start")
        except PBSError:
            pass  # job not running locally (already finished or unknown)
