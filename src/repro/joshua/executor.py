"""Serial command execution and the delivered-once output cache.

Extracted from :class:`~repro.joshua.server.JoshuaServer`: the replication
hot path of paper §4. Client commands are deduplicated by UUID (across
client retries *and* head failovers), multicast through the GCS with SAFE
service, and applied to the **local** TORQUE server by a strictly serial
executor — identical command order + deterministic server/scheduler =
identical replica state. The head that took the client connection replays
its cached local output back, exactly once.

The executor also drains two non-command work items that must serialise
with the command stream: launch-mutex revocations (delegated to
:class:`~repro.joshua.mutex.MutexArbiter`) and state-transfer markers
(delegated to the server's marker path, see :mod:`repro.joshua.xfer`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gcs.messages import SAFE
from repro.joshua.wire import Command, JDelReq, JSubReq, SeqStampedResp, XferMarker
from repro.net.address import Address
from repro.obs.collector import collector_of
from repro.pbs.wire import DeleteReq, ErrorResp, StatReq, SubmitReq, rpc_call
from repro.sim.resources import Store
from repro.util.errors import PBSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.joshua.shard import ShardReplica

__all__ = ["SerialExecutor"]


class SerialExecutor:
    """Command intake, dedup cache and serial executor for one replica."""

    def __init__(self, replica: "ShardReplica"):
        self.s = replica
        self.queue: Store = Store(replica.kernel)
        #: uuid -> cached local result (output dedup across retries).
        self.results: dict[str, object] = {}
        #: uuid -> applied_seq the command executed at on this replica
        #: (only recorded while the counter is exact; feeds SeqStampedResp).
        self.results_seq: dict[str, int] = {}
        #: uuid -> [(client src, rpc id, stamp seq?)] awaiting the result.
        self._pending_replies: dict[str, list[tuple[Address, int, bool]]] = {}
        #: uuids this server has multicast (avoid re-multicast on retry).
        self._multicast_uuids: set[str] = set()
        #: Replicated command log (delivered order) — used by tests and by
        #: replay-mode diagnostics; state transfer itself snapshots the
        #: local queue rather than replaying from time zero.
        self.command_log: list[Command] = []

    # -- client command intake ----------------------------------------------

    def submit(self, src: Address, request_id: int, payload):
        """Dedup an incoming ``jsub``/``jdel``/``jstat`` and multicast it."""
        s = self.s
        if not s.active or not s.group.can_multicast:
            # Inactive (state transfer in progress) or mid-(re)join after an
            # exclusion: either way we cannot order the command — send the
            # client to another head instead of crashing on the multicast.
            return ErrorResp("joining", "head is joining; retry another")
        uuid = payload.uuid
        track = bool(getattr(payload, "track_seq", False))
        if uuid in self.results:
            return self._stamped(self.results[uuid], uuid, track)
        self._pending_replies.setdefault(uuid, []).append((src, request_id, track))
        if uuid in self._multicast_uuids:
            return None  # already in flight; the delivery will answer
        self._multicast_uuids.add(uuid)
        if isinstance(payload, JSubReq):
            command = Command(uuid, "jsub", payload.spec)
        elif isinstance(payload, JDelReq):
            command = Command(uuid, "jdel", payload.job_id)
        else:
            command = Command(uuid, "jstat", payload.job_id)
        s.stats["commands"] += 1
        collector = collector_of(s.node.network)
        if collector is not None:
            collector.job_event(s.node.name, "job.received",
                                trace_id=uuid, command=command.kind,
                                **self._shard_label())
        s.group.multicast(command, service=SAFE)
        return None

    def _shard_label(self) -> dict:
        """Trace-event label naming the owning shard — only when sharding
        is actually on, so single-shard event payloads stay byte-identical
        to the historical stream."""
        if self.s.nshards == 1:
            return {}
        return {"shard": self.s.shard_id}

    # -- serial executor ------------------------------------------------------

    def loop(self):
        s = self.s
        while True:
            item = yield self.queue.get()
            if isinstance(item, tuple) and item and item[0] == "revoke":
                yield from s.arbiter.execute_revoke(item[1])
                continue
            payload = item.payload
            if isinstance(payload, XferMarker):
                yield from s._execute_marker(payload)
            elif isinstance(payload, Command):
                s.drained_commands += 1
                collector = collector_of(s.node.network)
                if collector is not None:
                    collector.job_event(s.node.name, "job.ordered",
                                        trace_id=payload.uuid,
                                        seq=item.seq, view=item.view_id,
                                        **self._shard_label())
                if not s.active and s.xfer.syncing_marker is not None:
                    # Commands queued between an abandoned marker and its
                    # replacement are covered by the fresh capture.
                    continue
                yield from self.execute_command(payload)

    def local_rpc(self, payload, *, timeout: float = 3.0, retries: int = 2):
        s = self.s
        response = yield from rpc_call(
            s.node.network, s.node.name, s.local_pbs, payload,
            timeout=timeout, retries=retries,
        )
        return response

    def execute_command(self, command: Command):
        if command.uuid in self.results:
            self.answer(command.uuid)
            return
        self.command_log.append(command)
        try:
            if command.kind == "jsub":
                # Sharded deployments stripe the job-id space: every
                # replica of this shard computes the same forced id from
                # the totally-ordered execution count. None = single
                # shard, the local PBS assigns ids itself.
                forced = self.s.next_forced_job_id()
                if forced is None:
                    request = SubmitReq(command.payload)
                else:
                    request = SubmitReq(command.payload, force_job_id=forced)
                response = yield from self.local_rpc(request)
                result = response
            elif command.kind == "jdel":
                response = yield from self.local_rpc(DeleteReq(command.payload))
                result = response
            elif command.kind == "jstat":
                response = yield from self.local_rpc(StatReq(command.payload))
                result = response
            else:  # pragma: no cover - protocol guard
                result = ErrorResp("bad-command", command.kind)
        except PBSError as exc:
            result = ErrorResp("pbs-error", str(exc))
        self.results[command.uuid] = result
        self.s.note_applied()
        if self.s.seq_exact:
            self.results_seq[command.uuid] = self.s.applied_seq
        self.s.stats["executed"] += 1
        collector = collector_of(self.s.node.network)
        if collector is not None:
            job_id = getattr(result, "job_id", None)
            if command.kind == "jsub" and job_id is not None:
                # Later lifecycle events (claims, launches, obits) are
                # keyed by PBS job id; tie them back to this command.
                collector.job_alias(command.uuid, job_id)
            collector.job_event(self.s.node.name, "job.executed",
                                trace_id=command.uuid, command=command.kind,
                                result=type(result).__name__,
                                **self._shard_label())
        yield self.s.kernel.timeout(self.s.times.cmd_reply)
        self.answer(command.uuid)

    def answer(self, uuid: str) -> None:
        result = self.results.get(uuid)
        for src, request_id, track in self._pending_replies.pop(uuid, []):
            self.s._reply(src, request_id, self._stamped(result, uuid, track))

    def _stamped(self, result, uuid: str, track: bool):
        """Wrap *result* in a :class:`SeqStampedResp` when the writer asked
        for its commit position — never for errors (the ``ErrorResp`` relay
        must reach the client unwrapped to re-raise as PBSError) and never
        from a floor counter (an understated stamp would admit stale RYW
        reads later)."""
        if (
            not track
            or isinstance(result, ErrorResp)
            or uuid not in self.results_seq
        ):
            return result
        return SeqStampedResp(result, self.s.shard_id, self.results_seq[uuid])
