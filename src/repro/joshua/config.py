"""JOSHUA timing calibration.

Two groups of constants:

* :class:`JoshuaTimes` — CPU costs of the joshua daemon itself (command
  receipt/relay on a 450 MHz head node).
* :data:`JOSHUA_GROUP_CONFIG` — the group-communication configuration used
  in deployments, including the Transis-era per-message processing cost and
  the deferred/staggered stability-acknowledgement model. Together with
  :data:`repro.pbs.service_times.ERA_2006` these put the reproduction's
  Figure 10 latencies in the right regime: ~36 ms JOSHUA overhead on one
  head (on-node communication), a large jump when going off-node, then
  roughly +40 ms per additional head (see EXPERIMENTS.md for measured vs
  paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gcs.config import GroupConfig

__all__ = ["JoshuaTimes", "ERA_2006_JOSHUA", "JOSHUA_GROUP_CONFIG"]


@dataclass(frozen=True)
class JoshuaTimes:
    """Processing costs (seconds) of the joshua daemon."""

    #: Receiving/validating a client command before multicasting it.
    cmd_receive: float = 0.002
    #: Relaying output back to the user after local execution.
    cmd_reply: float = 0.002
    #: Handling a jmutex/jstarted/jdone request from a mom.
    mutex_process: float = 0.002
    #: How long a read-your-writes ``jstat`` waits for the local replica to
    #: catch up to the client's floor before falling back to the ordered
    #: path (PROTOCOLS.md §12). Generous versus normal apply latency, small
    #: versus the client RPC timeout so the fallback still answers in time.
    read_catchup_timeout: float = 0.5
    #: Single-threaded occupancy of one local-replica status answer: the
    #: joshua daemon and its local PBS server are both single-threaded
    #: processes, so a head answers local reads serially — per-head read
    #: capacity is ``1 / read_service``, which is what the read-scaling
    #: bench measures. Roughly the era's qstat handling plus the daemon's
    #: receive/reply share.
    read_service: float = 0.014


ERA_2006_JOSHUA = JoshuaTimes()

#: GCS tuning for the testbed deployment. processing_delay is the per
#: protocol-message CPU cost of the Transis-era stack on the paper's
#: hardware; stable_ack_base/slot model its deferred, rank-staggered
#: acknowledgement cycle, which is what makes SAFE delivery — and therefore
#: every JOSHUA command — slower per additional head node.
JOSHUA_GROUP_CONFIG = GroupConfig(
    heartbeat_interval=0.25,
    suspect_timeout=0.75,
    flush_timeout=1.5,
    retransmit_interval=0.10,
    ordering="sequencer",
    processing_delay=0.010,
    stable_ack_base=0.118,
    stable_ack_slot=0.029,
)
