"""The ``repro trace`` scenario: a fully observed JOSHUA run.

Builds the standard replicated stack with a :class:`~repro.obs.collector.
TraceCollector` attached, drives a small deterministic ``jsub`` workload to
completion, and returns the collector plus per-run facts. The CLI renders
per-job causal timelines (jsub → ordered → qsub executed → jmutex →
launched → obit) and the aggregate per-phase latency breakdown — the same
decomposition Figure 10 reports as "Transis overhead vs. PBS execution".

Lives in the ``joshua`` layer (not ``obs``): the observability layer never
imports the stacks it observes; scenario *construction* belongs up here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.gcs.config import GroupConfig
from repro.joshua.config import JOSHUA_GROUP_CONFIG
from repro.joshua.deploy import build_joshua_stack
from repro.joshua.shard import queue_for_shard
from repro.obs.collector import TraceCollector, attach_collector
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import attach_recorder
from repro.obs.timeseries import attach_timeseries
from repro.util.errors import NoActiveHeadError

__all__ = ["TraceRun", "run_traced_scenario"]


@dataclass
class TraceRun:
    """Everything the trace surfaces need from one observed run."""

    seed: int
    heads: int
    computes: int
    ordering: str
    collector: TraceCollector
    cluster: Cluster
    submitted: list[str] = field(default_factory=list)
    failed_submits: int = 0
    #: Ordering-layer shard count (1 = single group, the default).
    shards: int = 1

    @property
    def registry(self) -> MetricsRegistry:
        return self.collector.registry

    @property
    def network(self):
        return self.cluster.network


def run_traced_scenario(
    *,
    seed: int = 7,
    heads: int = 3,
    computes: int = 2,
    jobs: int = 3,
    ordering: str = "sequencer",
    walltime: float = 1.0,
    shards: int = 1,
    registry: MetricsRegistry | None = None,
) -> TraceRun:
    """Run the observed scenario to completion; deterministic given *seed*.

    Jobs are submitted back-to-back from the login node (each waits for its
    jsub ack, the exclusive scheduler then runs them serially), so per-job
    timelines do not overlap and the per-phase breakdown is clean. With
    ``shards > 1`` the submissions round-robin across every shard's queue
    namespace and GCS spans/metrics carry ``shard=`` labels. The flight
    recorder and time-series sampler are always attached (passive).
    """
    group = GroupConfig(
        heartbeat_interval=JOSHUA_GROUP_CONFIG.heartbeat_interval,
        suspect_timeout=JOSHUA_GROUP_CONFIG.suspect_timeout,
        flush_timeout=JOSHUA_GROUP_CONFIG.flush_timeout,
        retransmit_interval=JOSHUA_GROUP_CONFIG.retransmit_interval,
        ordering=ordering,
        processing_delay=JOSHUA_GROUP_CONFIG.processing_delay,
        stable_ack_base=JOSHUA_GROUP_CONFIG.stable_ack_base,
        stable_ack_slot=JOSHUA_GROUP_CONFIG.stable_ack_slot,
    )
    cluster = Cluster(
        head_count=heads, compute_count=computes, login_node=True, seed=seed
    )
    stack = build_joshua_stack(cluster, group_config=group, shards=shards)
    collector = attach_collector(cluster.network, registry=registry)
    attach_recorder(cluster.network)
    attach_timeseries(cluster.network)
    run = TraceRun(
        seed=seed, heads=heads, computes=computes, ordering=ordering,
        collector=collector, cluster=cluster, shards=shards,
    )
    cluster.run(until=2.0)  # group formation

    client = stack.client("login")

    def workload():
        for i in range(jobs):
            extra = (
                {"queue": queue_for_shard(i % shards, shards)}
                if shards > 1 else {}
            )
            try:
                job_id = yield from client.jsub(
                    name=f"trace-{i}", walltime=walltime, **extra
                )
                run.submitted.append(job_id)
            except NoActiveHeadError:  # pragma: no cover - no faults here
                run.failed_submits += 1

    cluster.kernel.spawn(workload(), name="trace-workload")
    # Serial execution on an exclusive cluster: generous fixed horizon so
    # every job's obit lands before the run ends.
    cluster.run(until=2.0 + jobs * (walltime + 5.0) + 10.0)
    return run
