"""The JOSHUA control commands: ``jsub``, ``jdel``, ``jstat``.

PBS-interface-compliant replacements for ``qsub``/``qdel``/``qstat`` (the
paper suggests ``alias qsub=jsub`` for 100 % interface compliance). Each
invocation:

1. charges the same client-binary startup cost as the q-commands,
2. contacts a head node's joshua server (preferring a configured or
   caller-chosen head),
3. fails over to the next head on timeout or while a head is still joining,
4. is exactly-once end to end: the command carries a UUID, so a retry after
   a half-processed attempt returns the original result instead of
   re-executing.

Commands may run from any node — a head node, a compute node, or a login
node (paper: "The JOSHUA control commands may be invoked on any of the
active head nodes or from a separate login node").

Failover rides on :func:`repro.rpc.failover_call`; command UUIDs come from
the per-simulation allocator (:func:`repro.rpc.rpc_state`), so back-to-back
simulations in one interpreter see identical uuid strings (which matter:
they are on the wire and charged by size).
"""

from __future__ import annotations

from typing import Generator

from repro.joshua.wire import JDelReq, JStatReq, JSubReq, SeqStampedResp
from repro.net.address import Address
from repro.net.network import Network
from repro.obs.collector import collector_of
from repro.pbs.job import JobSpec
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.rpc import failover_call, rpc_state
from repro.util.errors import NoActiveHeadError

__all__ = ["JoshuaClient"]

_JOSHUA_PORT = 4412


class JoshuaClient:
    """jsub/jdel/jstat runner on one node, aware of every head node."""

    def __init__(
        self,
        network: Network,
        node: str,
        heads: list[str],
        *,
        service_times: ServiceTimes = ERA_2006,
        timeout: float = 5.0,
        prefer: str | None = None,
        track_writes: bool = False,
        consistency: str = "ordered",
    ):
        if not heads:
            raise NoActiveHeadError("no head nodes configured")
        self.network = network
        self.node = node
        self.heads = list(heads)
        self.times = service_times
        self.timeout = timeout
        self.prefer = prefer
        #: Ask heads to stamp each write's commit position (PROTOCOLS.md
        #: §12) — the floors ``ryw`` reads later present. Off by default:
        #: an untracked client is wire-identical to the historical one.
        self.track_writes = track_writes
        #: Default ``jstat`` consistency mode (overridable per call).
        self.consistency = consistency
        #: shard id -> highest commit position of this client's own writes.
        self.last_write_seq: dict[int, int] = {}
        #: The raw response of the most recent ``jstat`` (a ``JStatResp``
        #: for local reads, a plain PBS ``StatResp`` for ordered ones) —
        #: read-path tests and the chaos invariants inspect its ``as_of``.
        self.last_stat_response = None
        self.stats = {"failovers": 0}

    def _uuid(self, kind: str) -> str:
        return f"{kind}-{self.node}-{rpc_state(self.network).next_id('joshua-uuid')}"

    def _ordered_heads(self) -> list[str]:
        heads = list(self.heads)
        if self.prefer in heads:
            heads.remove(self.prefer)
            heads.insert(0, self.prefer)
        return heads

    def _call(self, payload) -> Generator:
        yield self.network.kernel.timeout(self.times.client_startup)
        collector = collector_of(self.network)
        uuid = getattr(payload, "uuid", None)
        if collector is not None and uuid is not None:
            # The command uuid is the causal trace id: already globally
            # unique, already on the wire — tracing adds no wire bytes.
            collector.job_event(self.node, "job.sent", trace_id=uuid,
                                command=uuid.split("-", 1)[0])
        # Skipping a down head models the instant connection-refused a dead
        # node's TCP stack (or ARP failure) produces, vs. a full RPC timeout;
        # a head answering "joining" cannot order commands yet — move on.
        try:
            response = yield from failover_call(
                self.network, self.node,
                [Address(h, _JOSHUA_PORT) for h in self._ordered_heads()],
                payload,
                timeout=self.timeout,
                retry_error=lambda exc: "joining" in str(exc),
                stats=self.stats,
                what=f"no active head answered {type(payload).__name__}",
            )
        except NoActiveHeadError:
            if collector is not None and uuid is not None:
                collector.job_event(self.node, "job.failed", trace_id=uuid)
            raise
        if collector is not None and uuid is not None:
            collector.job_event(self.node, "job.acked", trace_id=uuid,
                                response=type(response).__name__)
        if isinstance(response, SeqStampedResp):
            if response.seq > self.last_write_seq.get(response.shard, 0):
                self.last_write_seq[response.shard] = response.seq
            return response.result
        return response

    def jsub(self, spec: JobSpec | None = None, **spec_kwargs) -> Generator:
        """Submit a job to the replicated service; returns the job id."""
        spec = spec or JobSpec(**spec_kwargs)
        response = yield from self._call(
            JSubReq(self._uuid("jsub"), spec, self.track_writes)
        )
        return response.job_id

    def jdel(self, job_id: str) -> Generator:
        """Delete a job on every active head."""
        response = yield from self._call(
            JDelReq(self._uuid("jdel"), job_id, self.track_writes)
        )
        return response.job_id

    def jstat(
        self, job_id: str | None = None, *, consistency: str | None = None,
    ) -> Generator:
        """Status query; rows from the answering head.

        ``consistency`` (default: the client's configured mode):

        * ``"ordered"`` — through the ordered command stream, serialised
          against every committed write (the historical behaviour, wire-
          identical to the pre-read-path client);
        * ``"eventual"`` — answered immediately from the receiving head's
          local replica, however stale it happens to be;
        * ``"ryw"`` — like eventual, but the request carries this client's
          per-shard write floors; the head defers (bounded) until its
          replica has applied them, falling back to ordered on timeout.
        """
        mode = consistency if consistency is not None else self.consistency
        if mode == "ordered":
            request = JStatReq(self._uuid("jstat"), job_id)
        else:
            floors = (
                tuple(sorted(self.last_write_seq.items()))
                if mode == "ryw" else ()
            )
            request = JStatReq(self._uuid("jstat"), job_id, mode, floors)
        response = yield from self._call(request)
        self.last_stat_response = response
        return list(response.rows)

    def jsig(self, job_id: str, signal: str = "SIGTERM") -> Generator:
        """Signal a running job — the qsig passthrough.

        The paper deliberately provides no replicated jsig "as this
        operation does not appear to change the state of the HPC job and
        resource management service. The original PBS command may be
        executed independently of JOSHUA." We do exactly that: a plain
        qsig against the first live head's local PBS server, bypassing the
        group entirely.
        """
        from repro.pbs.server import PBS_SERVER_PORT
        from repro.pbs.wire import SignalReq

        yield self.network.kernel.timeout(self.times.client_startup)
        response = yield from failover_call(
            self.network, self.node,
            [Address(h, PBS_SERVER_PORT) for h in self._ordered_heads()],
            SignalReq(job_id, signal),
            timeout=self.timeout,
            what="no head answered qsig",
        )
        return response.detail
