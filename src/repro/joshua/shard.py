"""Per-shard replica unit: one ordering group's worth of JOSHUA state.

The sharded deployment (PROTOCOLS.md §10) partitions the job namespace by
PBS queue across N independent GCS groups hosted on the *same* head nodes.
Each :class:`ShardReplica` is what the pre-sharding ``JoshuaServer`` used
to be in miniature: it owns one :class:`~repro.gcs.member.GroupMember`
(bound to the per-shard port ``JOSHUA_GCS_PORT + index`` with
``group_id=index``, so frames from different shards can never
cross-deliver), one :class:`~repro.joshua.executor.SerialExecutor`, one
:class:`~repro.joshua.mutex.MutexArbiter` and one
:class:`~repro.joshua.xfer.StateTransfer`. The façade
:class:`~repro.joshua.server.JoshuaServer` keeps the single client-facing
endpoint and routes each request to the owning replica.

All replicas on one head apply commands to the *same* local PBS server, so
the job-id space is **striped**: shard *k* of *N* forces ids
``k+1, k+1+N, k+1+2N, …`` on its submissions, making ids globally unique,
deterministic across that shard's replicas, and instantly attributable
(``(seq-1) % N`` names the owning shard — the router's delete/stat/mutex
key). With one shard the stripe is disabled and the local PBS assigns ids
itself, byte-identical to the pre-sharding build.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import TYPE_CHECKING

from repro.gcs.member import GroupMember
from repro.gcs.messages import DeliveredMessage
from repro.gcs.view import View
from repro.joshua.executor import SerialExecutor
from repro.joshua.mutex import MutexArbiter
from repro.joshua.wire import Claim, Command, Done, Started, XferMarker
from repro.joshua.xfer import StateTransfer
from repro.net.address import Address
from repro.pbs.server import PBS_SERVER_PORT
from repro.pbs.wire import AdminServers

if TYPE_CHECKING:  # pragma: no cover
    from repro.gcs.config import GroupConfig
    from repro.joshua.server import JoshuaServer

__all__ = ["ShardReplica", "queue_for_shard"]

#: Mirrors :data:`repro.joshua.deploy.REPLICA_SERVER_NAME` (importing it
#: here would cycle deploy -> server -> shard -> deploy).
_REPLICA_SERVER_NAME = "joshua"


def queue_for_shard(shard: int, nshards: int) -> str:
    """The lowest-numbered queue name ``q<j>`` the router maps to *shard*.

    The router hashes queue names with CRC-32, so consecutive ``q0, q1, …``
    do **not** land on consecutive shards; workloads and benches that want
    to target (or evenly cover) specific shards use this search instead of
    guessing names.
    """
    j = 0
    while True:
        name = f"q{j}"
        if zlib.crc32(name.encode()) % nshards == shard:
            return name
        j += 1


class ShardReplica:
    """One shard's protocol engines on one head node.

    Everything the engines historically accessed on the ``JoshuaServer``
    façade (``s.group``, ``s.stats``, ``s.active``, ``s._reply`` …) lives
    here now; the attributes that are genuinely head-wide (the client
    endpoint, the RPC reply path, logging identity) delegate back to the
    façade so one head still looks like one daemon to the outside.
    """

    def __init__(
        self,
        server: "JoshuaServer",
        index: int,
        nshards: int,
        group_config: "GroupConfig",
        gcs_base_port: int,
    ):
        self.server = server
        self.index = index
        self.shard_id = index
        self.nshards = nshards
        self.gcs_port = gcs_base_port + index
        self.node = server.node
        self.kernel = server.kernel
        self.times = server.times
        self.local_pbs = server.local_pbs
        self.state_transfer = server.state_transfer
        self.contacts = server.contacts

        #: Fully in service (joined + state transferred) — per shard: one
        #: shard can be mid-resync while its siblings keep executing.
        self.active = False
        self.stats = {"commands": 0, "executed": 0, "claims": 0,
                      "revocations": 0, "state_transfers_served": 0,
                      "state_transfers_pulled": 0}
        #: jsub executions this shard has totally ordered — drives the
        #: striped force_job_id sequence (see :meth:`next_forced_job_id`).
        self.stripe_count = 0
        #: Commands this replica has actually applied to the local PBS
        #: (dedup-skipped re-deliveries do not count, so every replica of a
        #: shard computes the identical sequence) — the staleness position
        #: the read path reports and the RYW catch-up gate waits on.
        self.applied_seq = 0
        #: Whether ``applied_seq`` is exact (founders) or a floor (a joiner
        #: whose sponsor did not transfer its counter). A floor counter can
        #: serve eventual reads but must not stamp writes or satisfy RYW
        #: floors — understating a client's floor would admit stale reads.
        self.seq_exact = True
        #: Commands delivered by the group to this replica (applied or not)
        #: and commands its executor has drained — their difference is the
        #: read path's staleness-lag gauge (the local apply backlog).
        self.delivered_commands = 0
        self.drained_commands = 0
        #: RYW catch-up waiters: ``(floor, event)`` pairs; the executor
        #: succeeds the event once ``applied_seq`` reaches the floor.
        self._seq_waiters: list = []

        self.group = GroupMember(
            server.node.network.bind(server.node.name, self.gcs_port),
            dataclasses.replace(group_config, group_id=index, shard_count=nshards),
            on_deliver=self._on_deliver,
            on_view=self._on_view,
        )
        self.executor = SerialExecutor(self)
        self.arbiter = MutexArbiter(self)
        self.xfer = StateTransfer(self)

    # -- façade delegation ----------------------------------------------------

    @property
    def head_name(self) -> str:
        return self.server.head_name

    @property
    def address(self) -> Address:
        """The *client-facing* address (head:JOSHUA_PORT) — markers carry
        it, and it is shard-unambiguous because markers are multicast
        within one shard's own group."""
        return self.server.address

    @property
    def endpoint(self):
        return self.server.endpoint

    @property
    def log(self):
        return self.server.log

    @property
    def tag(self) -> str:
        if self.nshards == 1:
            return self.server.tag
        return f"{self.server.tag}[s{self.index}]"

    def _reply(self, dst: Address, request_id: int, response) -> None:
        # Looked up at call time, never captured: tests monkeypatch the
        # façade's _reply and must intercept replica traffic too.
        self.server._reply(dst, request_id, response)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Boot or join this shard's group (from the daemon's on_start)."""
        server = self.server
        if server.initial_heads:
            self.group.boot(
                [Address(h, self.gcs_port) for h in server.initial_heads]
            )
            self.active = True
        else:
            self.group.join([Address(h, self.gcs_port) for h in server.contacts])

    # -- job-id striping ------------------------------------------------------

    def next_forced_job_id(self) -> str | None:
        """The next striped job id, or ``None`` when striping is off.

        Advances only on totally-ordered jsub executions, so every replica
        of this shard computes the identical sequence. With one shard the
        local PBS assigns ids itself — the pre-sharding wire behaviour.
        """
        if self.nshards <= 1:
            return None
        seq = self.index + 1 + self.stripe_count * self.nshards
        self.stripe_count += 1
        return f"{seq}.{_REPLICA_SERVER_NAME}"

    # -- read-path sequence surface -------------------------------------------

    def note_applied(self) -> None:
        """One command actually applied to the local PBS: advance the
        applied position and release any RYW waiters it satisfies."""
        self.applied_seq += 1
        if not self._seq_waiters:
            return
        still_waiting = []
        for floor, event in self._seq_waiters:
            if self.applied_seq >= floor:
                if not event.triggered:
                    event.succeed(self.applied_seq)
            else:
                still_waiting.append((floor, event))
        self._seq_waiters = still_waiting

    def restore_applied(self, seq: int, exact: bool) -> None:
        """Re-anchor the applied position after a state transfer (the
        sponsor's counter at the marker cut) and release waiters the jump
        satisfies."""
        self.seq_exact = exact
        if seq > self.applied_seq:
            self.applied_seq = seq - 1
            self.note_applied()
        else:
            self.applied_seq = seq

    def waiter_for_seq(self, floor: int):
        """A kernel event that succeeds (with the applied position) once
        ``applied_seq`` reaches *floor* — immediately if it already has."""
        event = self.kernel.event()
        if self.applied_seq >= floor:
            event.succeed(self.applied_seq)
        else:
            self._seq_waiters.append((floor, event))
        return event

    def forget_waiter(self, event) -> None:
        """Drop a catch-up waiter that timed out (fell back to ordered)."""
        self._seq_waiters = [
            (floor, e) for floor, e in self._seq_waiters if e is not event
        ]

    # -- group callbacks ------------------------------------------------------

    def _on_deliver(self, msg: DeliveredMessage) -> None:
        payload = msg.payload
        if self.xfer.should_drop(payload):
            return
        if isinstance(payload, (Command, XferMarker)):
            if isinstance(payload, Command):
                self.delivered_commands += 1
            self.executor.queue.put_nowait(msg)
            self.xfer.note_enqueued(payload)
        elif isinstance(payload, Claim):
            self.arbiter.on_claim(payload)
        elif isinstance(payload, Started):
            self.arbiter.on_started(payload)
        elif isinstance(payload, Done):
            self.arbiter.on_done(payload)

    def _on_view(self, view: View) -> None:
        self.xfer.on_view(view)
        self.arbiter.revoke_for_view(view)
        # Tell every mom the current server set, so obituaries (and future
        # start attempts) reach exactly the live heads. Only shard 0
        # announces: every shard spans the same head set, and N copies of
        # the same list would just multiply mom traffic.
        if (
            self.index == 0
            and view.members
            and view.coordinator == self.group.address
        ):
            servers = tuple(
                sorted(Address(m.node, PBS_SERVER_PORT) for m in view.members)
            )
            for mom in self.server.moms:
                if not self.endpoint.closed:
                    self.endpoint.send(mom, AdminServers(servers))

    # -- state transfer (thin hooks; the executor calls _execute_marker) ------

    def _execute_marker(self, marker: XferMarker):
        if marker.joiner == self.address:
            yield from self._receive_state(marker)
        else:
            yield from self._serve_state(marker)

    def _serve_state(self, marker: XferMarker):
        yield from self.xfer.serve_state(marker)

    def _receive_state(self, marker: XferMarker):
        yield from self.xfer.receive_state(marker)
