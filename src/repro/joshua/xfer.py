"""State transfer: marker pinning, capture, and the replay/snapshot modes.

Extracted from :class:`~repro.joshua.server.JoshuaServer`: the join
protocol of paper §4. A joining server enters the group, multicasts an
:class:`~repro.joshua.wire.XferMarker` to pin a cut in the command stream,
discards deliveries ordered before its own marker, and asks the group for
the state as of the marker. Every active member captures its local queue
exactly when its serial executor reaches the marker (replicas are
identical at the cut, so the captures are too, and the joiner dedups).

Two transfer modes: ``"replay"`` re-submits live jobs through the PBS
interface (the prototype's approach; held jobs cannot be transferred —
reproduced limitation), ``"snapshot"`` bulk-loads job records (the
future-work mode).

The tracker also detects partition-merge demotion: an *established*
member whose GCS dissolved into the surviving component may have missed
commands, so the survivors are authoritative — it deactivates and resyncs
through a fresh marker even though it has no join contacts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.gcs.view import View
from repro.joshua.mutex import _MutexEntry
from repro.joshua.wire import StateXferReq, StateXferResp, XferMarker, XferPush
from repro.net.address import Address
from repro.pbs.job import Job, JobSpec, JobState
from repro.pbs.wire import LoadStateReq, PurgeReq, StatReq, SubmitReq
from repro.rpc import RpcTimeout, call as rpc_call, rpc_state
from repro.util.errors import PBSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.joshua.shard import ShardReplica

__all__ = ["StateTransfer"]

#: Must match repro.joshua.server.JOSHUA_PORT (redeclared to avoid an
#: import cycle — the server module imports this one).
_JOSHUA_PORT = 4412


class StateTransfer:
    """Marker-cut state transfer (both sponsor and joiner sides)."""

    def __init__(self, replica: "ShardReplica"):
        self.s = replica
        #: While syncing: drop deliveries ordered before our own marker.
        self.syncing_marker: str | None = None
        self.marker_seen = False
        self._responses: dict[str, StateXferResp] = {}
        #: Sponsor side: captures we already served, kept so a joiner whose
        #: pushed :class:`XferPush` frame was lost can pull them over RPC.
        self._served: dict[str, StateXferResp] = {}
        self._waiters: dict[str, object] = {}
        self._applied: set[str] = set()
        self._seen_rejoins = 0
        #: Set when a partition re-merge demotes us: an *established* member
        #: (no contacts) that must nevertheless pin a transfer marker.
        self.needs_resync = False

    def next_marker_uuid(self) -> str:
        marker_id = rpc_state(self.s.node.network).next_id("joshua-marker")
        return f"xfer-{self.s.node.name}-{marker_id}"

    # -- delivery gating ------------------------------------------------------

    def should_drop(self, payload) -> bool:
        """Everything ordered before our own marker is covered by the
        state transfer; drop it."""
        if self.syncing_marker is not None and not self.marker_seen:
            return not (
                isinstance(payload, XferMarker)
                and payload.marker_uuid == self.syncing_marker
            )
        return False

    def note_enqueued(self, payload) -> None:
        if isinstance(payload, XferMarker) and payload.marker_uuid == self.syncing_marker:
            self.marker_seen = True

    # -- view hook ------------------------------------------------------------

    def on_view(self, view: View) -> None:
        s = self.s
        rejoins = s.group.stats.get("rejoins", 0)
        if rejoins > self._seen_rejoins:
            self._seen_rejoins = rejoins
            if s.active and view.size > 1:
                # Our GCS member lost a partition merge and dissolved into
                # the surviving component (e.g. after a NIC blackout). Our
                # replica may have missed commands — or executed client
                # retries the majority already answered under different job
                # ids. The survivors are authoritative: demote and resync.
                s.log.warning(
                    s.tag, "re-merged from losing partition side; resyncing"
                )
                s.active = False
                self.syncing_marker = None
                self.needs_resync = True
        if self.syncing_marker is None and not s.active and (
            s.contacts or self.needs_resync
        ) and s.group.can_multicast:
            # First view containing us after a join: pin the transfer cut.
            marker = XferMarker(self.next_marker_uuid(), s.address)
            self.syncing_marker = marker.marker_uuid
            self.marker_seen = False
            s.group.multicast(marker)

    # -- sponsor side ---------------------------------------------------------

    def serve_state(self, marker: XferMarker):
        # Preferred sponsor = lowest-ranked *active* member other than the
        # joiner; but every active member serves (replicas are identical at
        # the marker cut, so the captures are too, and the joiner dedups).
        # A single designated sponsor can deadlock: two heads resyncing at
        # once would each elect the other — inactive and unable to serve.
        s = self.s
        view = s.group.view
        if view is None or not s.active:
            return
        # marker.joiner is the joiner's *joshua* endpoint; members are GCS
        # endpoints — compare by node.
        others = [m for m in view.members if m.node != marker.joiner.node]
        if not others:
            return
        response = yield from self.capture_state(marker)
        self._served[marker.marker_uuid] = response
        s.stats["state_transfers_served"] += 1
        if not s.endpoint.closed:
            s.endpoint.send(marker.joiner, XferPush(response, s.shard_id))

    def served(self, marker_uuid: str) -> StateXferResp | None:
        """The capture for *marker_uuid*, if this member already served it
        (backs the :class:`~repro.joshua.wire.StateXferReq` pull path)."""
        return self._served.get(marker_uuid)

    def capture_state(self, marker: XferMarker):
        s = self.s
        stat = yield from s.executor.local_rpc(StatReq(None))
        rows = list(stat.rows)
        if s.nshards > 1:
            # The local PBS holds every shard's jobs; capture only our
            # stripe. next_seq then carries the *stripe count* — taken from
            # the replica's own counter, not inferred from surviving rows,
            # because it advances in total order and therefore agrees
            # across replicas even after the highest-id job was deleted.
            rows = [r for r in rows if self._owned(r["job_id"])]
            next_seq = s.stripe_count
        else:
            next_seq = 1 + max(
                (int(r["job_id"].split(".")[0]) for r in rows), default=0
            )
        live = [r for r in rows if r["state"] in ("Q", "R", "E", "H", "W")]
        skipped: list[str] = []
        items: list = []
        if s.state_transfer == "replay":
            for row in live:
                if row["state"] == "H":
                    # The paper's documented limitation: command replay
                    # cannot reconstruct held jobs consistently.
                    skipped.append(row["job_id"])
                    continue
                items.append(("submit", self.spec_from_row(row), row["job_id"]))
        else:
            for row in live:
                items.append(self.job_from_row(row))
        mutex = tuple(
            (job_id, entry.winner, entry.started)
            for job_id, entry in sorted(s.arbiter.entries.items())
        )
        # The applied counter at the marker cut, so the joiner's read path
        # resumes with an exact staleness position. Only transferred once a
        # read/tracked request has latched seq_tracking on this head (the
        # field stays at its default — and off the wire — in deployments
        # that never use the read path) and only from an exact counter (a
        # floor would poison the joiner's RYW gate).
        applied = (
            s.applied_seq
            if s.server.seq_tracking and s.seq_exact
            else -1
        )
        return StateXferResp(
            marker.marker_uuid,
            s.state_transfer,
            tuple(items),
            next_seq,
            mutex,
            tuple(skipped),
            tuple(sorted(s.executor.results.items())),
            applied,
        )

    def _owned(self, job_id: str) -> bool:
        """*job_id* falls in this replica's stripe of the id space."""
        s = self.s
        return (int(job_id.split(".", 1)[0]) - 1) % s.nshards == s.shard_id

    @staticmethod
    def spec_from_row(row: dict) -> JobSpec:
        return JobSpec(
            name=row["name"],
            owner=row["owner"],
            nodes=row["nodes"],
            walltime=row["walltime"],
            queue=row["queue"],
        )

    def job_from_row(self, row: dict) -> Job:
        state = JobState(row["state"])
        job = Job(
            row["job_id"],
            self.spec_from_row(row),
            submit_time=self.s.kernel.now,
            comment="state transfer",
        )
        if state in (JobState.RUNNING, JobState.EXITING):
            job = job.transition(
                JobState.RUNNING,
                start_time=self.s.kernel.now,
                exec_nodes=tuple(row["exec_nodes"]),
                run_count=1,
            )
        elif state is JobState.HELD:
            job = job.transition(JobState.HELD)
        elif state is JobState.WAITING:
            job = job.transition(JobState.WAITING)
        return job

    # -- joiner side ----------------------------------------------------------

    def _pull_state(self, uuid: str):
        """Ask each active member directly for the capture of *uuid*.

        Fallback for a lost :class:`XferPush` frame: the sponsors may
        have captured and answered perfectly well without our ever hearing
        it. Returns the first matching :class:`StateXferResp`, or ``None``
        if nobody has one (sponsor died mid-capture → fresh marker cut).
        """
        s = self.s
        view = s.group.view
        if view is None:
            return None
        for member in sorted(view.members):
            if member.node == s.node.name:
                continue
            target = Address(member.node, _JOSHUA_PORT)
            try:
                response = yield from rpc_call(
                    s.node.network, s.node.name, target,
                    StateXferReq(uuid, s.address, s.shard_id),
                    timeout=s.group.config.flush_timeout,
                )
            except (RpcTimeout, PBSError):
                continue
            if isinstance(response, StateXferResp) and response.marker_uuid == uuid:
                s.stats["state_transfers_pulled"] += 1
                s.log.info(s.tag, f"pulled state for {uuid} from {member.node}")
                return response
        return None

    def handle_response(self, response: StateXferResp) -> None:
        self._responses[response.marker_uuid] = response
        waiter = self._waiters.pop(response.marker_uuid, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(response)

    def receive_state(self, marker: XferMarker):
        s = self.s
        uuid = marker.marker_uuid
        if uuid in self._applied or uuid != self.syncing_marker:
            return  # stale marker; we moved on to a fresh cut
        if uuid not in self._responses:
            waiter = s.kernel.event()
            self._waiters[uuid] = waiter
            deadline = s.kernel.timeout(s.group.config.flush_timeout * 4)
            yield s.kernel.any_of([waiter, deadline])
            if not waiter.triggered:
                self._waiters.pop(uuid, None)
                # The push frame may simply have been lost while the
                # sponsors captured fine: pull the state over RPC before
                # paying for a fresh marker cut.
                pulled = yield from self._pull_state(uuid)
                if pulled is not None:
                    self._responses[uuid] = pulled
            if uuid not in self._responses:
                # Sponsor silent (likely died mid-capture): pin a fresh cut.
                if not s.group.can_multicast:
                    # The group itself is mid-(re)join; a marker cannot be
                    # ordered right now. Drop the stale cut — the view that
                    # ends the join re-enters on_view, which pins a new one.
                    self.syncing_marker = None
                    return
                fresh = XferMarker(self.next_marker_uuid(), s.address)
                self.syncing_marker = fresh.marker_uuid
                self.marker_seen = False
                s.group.multicast(fresh)
                return  # the fresh marker's delivery re-enters here
        response = self._responses[uuid]
        self._applied.add(uuid)
        sharded = s.nshards > 1
        # Discard any stale local state (a rejoining head recovered its old
        # queue from disk; the transferred state supersedes it). Sharded:
        # wipe only our stripe — sibling replicas share this PBS server.
        if sharded:
            yield from s.executor.local_rpc(PurgeReq(s.nshards, s.shard_id))
        else:
            yield from s.executor.local_rpc(PurgeReq())
        if response.mode == "replay":
            if not sharded:
                # "Configuration file modification": align the id counter
                # first, then replay the live jobs through the ordinary PBS
                # interface. (Sharded submissions carry forced striped ids,
                # so there is no counter to align — next_seq is the stripe
                # count, restored below.)
                yield from s.executor.local_rpc(
                    LoadStateReq((), response.next_seq)
                )
            for _kind, spec, job_id in response.items:
                try:
                    yield from s.executor.local_rpc(SubmitReq(spec, force_job_id=job_id))
                except PBSError as exc:  # pragma: no cover - replay guard
                    s.log.error(s.tag, f"replay of {job_id} failed: {exc}")
            if response.skipped:
                s.log.warning(
                    s.tag,
                    f"replay could not transfer held jobs: {list(response.skipped)}",
                )
        else:
            # Sharded snapshots merge into the shared queue (other shards'
            # jobs survived the stripe purge) and leave the id counter to
            # the forced-id ratchet.
            yield from s.executor.local_rpc(
                LoadStateReq(
                    tuple(response.items),
                    0 if sharded else response.next_seq,
                    merge=sharded,
                )
            )
        if sharded:
            s.stripe_count = response.next_seq
        for job_id, winner, started in response.mutex:
            s.arbiter.entries.setdefault(job_id, _MutexEntry(winner, started))
        for uuid, cached in response.results:
            s.executor.results.setdefault(uuid, cached)
        # Re-anchor the read path's applied position at the marker cut:
        # post-marker commands execute after this method returns, so the
        # sponsor's exact counter is exact here too. Without a transferred
        # counter we restart at a floor — eventual reads stay safe, but RYW
        # floors and write stamps are disabled until the head re-founds.
        s.restore_applied(
            max(response.applied_seq, 0), response.applied_seq >= 0
        )
        self.syncing_marker = None
        self.needs_resync = False
        s.active = True
        s.log.info(s.tag, f"state transfer complete ({response.mode}), now active")
