"""Client gateway: spread command sessions across the active heads.

The paper runs every JOSHUA command against a preferred head with linear
failover — fine for one interactive user, but a thousand-client front-end
pointed at ``head0`` turns the symmetric active/active group into a
primary/backup one: one head pays every client RPC while its peers idle.
The gateway restores the symmetry *client-side*, with no new wire
protocol:

* each client session is pinned to a head by stable hash
  (``crc32(client_id) % live_heads``), so the session population spreads
  evenly and a given client keeps talking to the same head — which is
  what makes the local read path (PROTOCOLS.md §12) effective: the head
  answering your ``jstat`` is the head that stamped your writes;
* sessions default to ``track_writes=True`` and read-your-writes reads,
  the contract the local read path was built for;
* when a session's calls fail over away from its pinned head, the gateway
  marks that head dead, re-pins every session assigned to it, and
  forgives the head after a grace period (crash-restarted heads return to
  the rotation without an operator poke).

The gateway is pure client-side bookkeeping: it never touches the wire
format, never spawns a process, and draws no randomness — session
placement is a content hash, so any run is reproducible from its inputs.
"""

from __future__ import annotations

import zlib
from typing import Generator

from repro.joshua.commands import JoshuaClient
from repro.joshua.wire import JStatResp
from repro.net.network import Network
from repro.pbs.job import JobSpec
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.util.errors import NoActiveHeadError

__all__ = ["GatewaySession", "JoshuaGateway"]


class JoshuaGateway:
    """Head-affinity manager for a population of client sessions.

    Parameters
    ----------
    network:
        The simulated network (sessions build their clients on it).
    heads:
        All head names, live or not — liveness is learned from failovers.
    service_times / timeout:
        Forwarded to each session's :class:`JoshuaClient`.
    consistency:
        Default read mode for sessions (``"ryw"`` — the gateway exists to
        make read-your-writes cheap; pass ``"ordered"`` to reproduce the
        historical behaviour exactly).
    forgive_after:
        Seconds a failed-over head stays out of the placement rotation
        before it is retried (covers a crash + restart + rejoin).
    """

    def __init__(
        self,
        network: Network,
        heads: list[str],
        *,
        service_times: ServiceTimes = ERA_2006,
        timeout: float = 5.0,
        consistency: str = "ryw",
        forgive_after: float = 10.0,
    ):
        if not heads:
            raise NoActiveHeadError("no head nodes configured")
        self.network = network
        self.heads = list(heads)
        self.times = service_times
        self.timeout = timeout
        self.consistency = consistency
        self.forgive_after = forgive_after
        #: head -> simulation time it was marked dead.
        self._dead: dict[str, float] = {}
        self.sessions: list["GatewaySession"] = []
        self.stats = {
            "sessions": 0,
            "reassignments": 0,
            "failovers": 0,
            "writes": 0,
            "reads": 0,
            "reads_local": 0,
            "reads_fallback": 0,
        }

    # -- placement -----------------------------------------------------------

    def live_heads(self) -> list[str]:
        """Heads currently in the placement rotation (dead ones forgiven
        after the grace period; all-dead degrades to the full list so
        placement always has a target and failover does the rest)."""
        now = self.network.kernel.now
        for head in sorted(self._dead):
            if now - self._dead[head] >= self.forgive_after:
                del self._dead[head]
        live = [h for h in self.heads if h not in self._dead]
        return live if live else list(self.heads)

    def assign(self, client_id: str) -> str:
        """The pinned head for *client_id*: stable content hash over the
        live rotation."""
        live = self.live_heads()
        return live[zlib.crc32(client_id.encode()) % len(live)]

    def session(
        self,
        node: str,
        client_id: str | None = None,
        *,
        consistency: str | None = None,
        track_writes: bool = True,
    ) -> "GatewaySession":
        """Open a session for *client_id* (default: the node name) running
        its commands on *node*."""
        client_id = client_id if client_id is not None else node
        mode = consistency if consistency is not None else self.consistency
        head = self.assign(client_id)
        client = JoshuaClient(
            self.network, node, self.heads,
            service_times=self.times, timeout=self.timeout,
            prefer=head, track_writes=track_writes, consistency=mode,
        )
        session = GatewaySession(self, node, client_id, head, client)
        self.sessions.append(session)
        self.stats["sessions"] += 1
        return session

    # -- failure handling ----------------------------------------------------

    def note_failover(self, session: "GatewaySession", count: int) -> None:
        """A session's call failed over away from its pinned head: take the
        head out of the rotation and re-pin everyone parked on it."""
        self.stats["failovers"] += count
        self.mark_dead(session.head)

    def mark_dead(self, head: str) -> None:
        if head not in self.heads:
            return
        self._dead[head] = self.network.kernel.now
        for session in self.sessions:
            if session.head == head:
                self._repin(session)

    def mark_live(self, head: str) -> None:
        """Put *head* back in the rotation now (sessions stay where they
        are — re-pinning is driven by failures, not recoveries)."""
        self._dead.pop(head, None)

    def _repin(self, session: "GatewaySession") -> None:
        head = self.assign(session.client_id)
        if head == session.head:
            return
        session.head = head
        session.client.prefer = head
        self.stats["reassignments"] += 1


class GatewaySession:
    """One client's command channel through the gateway.

    Thin delegation over a :class:`JoshuaClient` pinned to the assigned
    head; every call reports observed failovers back to the gateway so
    placement tracks reality.
    """

    def __init__(
        self,
        gateway: JoshuaGateway,
        node: str,
        client_id: str,
        head: str,
        client: JoshuaClient,
    ):
        self.gateway = gateway
        self.node = node
        self.client_id = client_id
        self.head = head
        self.client = client

    def _watched(self, call) -> Generator:
        before = self.client.stats["failovers"]
        try:
            result = yield from call
        finally:
            moved = self.client.stats["failovers"] - before
            if moved > 0:
                self.gateway.note_failover(self, moved)
        return result

    def jsub(self, spec: JobSpec | None = None, **spec_kwargs) -> Generator:
        self.gateway.stats["writes"] += 1
        result = yield from self._watched(self.client.jsub(spec, **spec_kwargs))
        return result

    def jdel(self, job_id: str) -> Generator:
        self.gateway.stats["writes"] += 1
        result = yield from self._watched(self.client.jdel(job_id))
        return result

    def jstat(
        self, job_id: str | None = None, *, consistency: str | None = None,
    ) -> Generator:
        self.gateway.stats["reads"] += 1
        rows = yield from self._watched(
            self.client.jstat(job_id, consistency=consistency)
        )
        if isinstance(self.client.last_stat_response, JStatResp):
            self.gateway.stats["reads_local"] += 1
        else:
            self.gateway.stats["reads_fallback"] += 1
        return rows
