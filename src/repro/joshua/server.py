"""The ``joshua`` server daemon: one per active head node.

Replication model (paper §4): the daemon accepts ``jsub``/``jdel``/``jstat``
from clients, multicasts each command through the group communication
system with SAFE service (totally ordered *and* stable — the delivered-once
output guarantee rides on stability), and a strictly serial executor applies
delivered commands to the **local** TORQUE server through the ordinary PBS
wire protocol. Identical command order + deterministic server/scheduler =
identical replica state.

The daemon is a thin **front-end router** over one or more
:class:`~repro.joshua.shard.ShardReplica` units (PROTOCOLS.md §10). Each
replica owns a complete protocol stack — GCS membership on its own
per-shard port, :class:`~repro.joshua.executor.SerialExecutor`,
:class:`~repro.joshua.mutex.MutexArbiter` and
:class:`~repro.joshua.xfer.StateTransfer` — while the façade owns the one
client-facing endpoint and the typed RPC dispatcher, and routes each
request to the owning shard:

* ``jsub`` — by PBS queue name (falling back to the job owner), hashed
  with CRC-32 so the mapping is stable across runs and processes;
* anything keyed by job id (``jdel``, ``jstat <id>``, the jmutex/jdone
  traffic, state-transfer pulls) — by the id stripe ``(seq-1) % nshards``
  (see :mod:`repro.joshua.shard`);
* ``jstat`` with no id — shard 0. The local PBS holds every shard's jobs,
  so the listing is complete; it is only *ordered* against shard 0's
  command stream (cross-shard queries have no global order — the
  documented cost of sharding).

With ``shards=1`` (default) the router degenerates to a pass-through and
the daemon is wire-identical to the pre-sharding build
(``tests/integration/test_wire_baseline.py`` pins that).
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING

from repro.cluster.daemon import Daemon
from repro.gcs.config import GroupConfig
from repro.joshua.config import ERA_2006_JOSHUA, JOSHUA_GROUP_CONFIG, JoshuaTimes
from repro.joshua.mutex import _MutexEntry  # noqa: F401 (re-export)
from repro.joshua.shard import ShardReplica
from repro.joshua.wire import (
    Command,
    Done,
    JDelReq,
    JDoneReq,
    JMutexReq,
    JMutexResp,
    JStartedReq,
    JStatReq,
    JStatResp,
    JSubReq,
    Started,
    StateXferReq,
    XferMarker,
    XferPush,
)
from repro.joshua.xfer import StateTransfer
from repro.net.address import Address
from repro.obs.collector import collector_of
from repro.pbs.job import JobSpec
from repro.pbs.server import PBS_SERVER_PORT
from repro.pbs.wire import ErrorResp, StatReq
from repro.rpc import RpcDispatcher
from repro.util.errors import JoshuaError, PBSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["JoshuaServer", "JOSHUA_PORT", "JOSHUA_GCS_PORT"]

JOSHUA_PORT = 4412
JOSHUA_GCS_PORT = 4413


class JoshuaServer(Daemon):
    """The joshua daemon on one head node.

    Parameters
    ----------
    node:
        Hosting head node (must also run a PBS server + scheduler).
    initial_heads:
        Names of the founding head nodes (including this one) — the static
        bootstrap group. Mutually exclusive with *contacts*.
    contacts:
        For a later-joining head: names of head nodes to join through.
    group_config / times:
        Protocol calibration. The config's ``group_id`` is overridden per
        shard (shard *k* runs with ``group_id=k`` on GCS port
        ``JOSHUA_GCS_PORT + k``).
    state_transfer:
        ``"replay"`` (paper-faithful) or ``"snapshot"`` (extension).
    moms:
        Mom addresses, for post-view-change server-list announcements.
    shards:
        Number of independent ordering groups hosted on this head set.
    """

    def __init__(
        self,
        node: "Node",
        *,
        initial_heads: list[str] | None = None,
        contacts: list[str] | None = None,
        group_config: GroupConfig = JOSHUA_GROUP_CONFIG,
        times: JoshuaTimes = ERA_2006_JOSHUA,
        state_transfer: str = "replay",
        moms: list[Address] | None = None,
        shards: int = 1,
    ):
        super().__init__(node, "joshua", JOSHUA_PORT)
        if (initial_heads is None) == (contacts is None):
            raise JoshuaError("exactly one of initial_heads/contacts required")
        if state_transfer not in ("replay", "snapshot"):
            raise JoshuaError(f"unknown state_transfer mode {state_transfer!r}")
        if shards < 1:
            raise JoshuaError("shards must be >= 1")
        self.initial_heads = list(initial_heads or [])
        self.contacts = list(contacts or [])
        self.times = times
        self.state_transfer = state_transfer
        self.moms = list(moms or [])
        self.local_pbs = Address(node.name, PBS_SERVER_PORT)
        self.nshards = shards

        #: When the head is busy answering local reads until (simulation
        #: time): the daemon and its local PBS are single-threaded, so one
        #: status answer occupies the head at a time — per-head read
        #: capacity is ``1 / times.read_service`` (the scaling the
        #: read-path bench measures). Only the read path reserves it; the
        #: ordered paths keep their historical timing untouched.
        self._read_busy_until = 0.0

        #: Latched the first time any read-path or ``track_seq`` request
        #: arrives at this head. Gates the applied-counter transfer in
        #: :meth:`~repro.joshua.xfer.StateTransfer.capture_state`, so
        #: deployments that never use the read path never put the counter
        #: on the wire (the pinned baseline scenarios stay bit-identical).
        self.seq_tracking = False

        #: One replica unit per shard, each with its own ordering group.
        self.shards = [
            ShardReplica(self, k, shards, group_config, JOSHUA_GCS_PORT)
            for k in range(shards)
        ]
        self.rpc = self._build_dispatcher()

    # -- component state, exposed under the historical names ------------------
    #
    # With one shard these are the real per-replica objects (tests mutate
    # them); with several they are merged read views — per-shard state lives
    # on ``self.shards[k]``.

    @property
    def group(self):
        """Shard 0's GCS membership (the historical single-group handle)."""
        return self.shards[0].group

    @property
    def groups(self) -> list:
        """Every shard's GCS membership, in shard order."""
        return [replica.group for replica in self.shards]

    @property
    def executor(self):
        return self.shards[0].executor

    @property
    def arbiter(self):
        return self.shards[0].arbiter

    @property
    def xfer(self):
        return self.shards[0].xfer

    @property
    def active(self) -> bool:
        """Fully in service: every shard joined + state transferred."""
        return all(replica.active for replica in self.shards)

    @active.setter
    def active(self, value: bool) -> None:
        for replica in self.shards:
            replica.active = value

    @property
    def stats(self) -> dict[str, int]:
        """Engine counters summed across shards (per-shard counters are on
        ``self.shards[k].stats``)."""
        totals: dict[str, int] = {}
        for replica in self.shards:
            for key, value in sorted(replica.stats.items()):
                totals[key] = totals.get(key, 0) + value
        return totals

    @property
    def results(self) -> dict[str, object]:
        """uuid -> cached local result (output dedup across retries)."""
        if self.nshards == 1:
            return self.shards[0].executor.results
        merged: dict[str, object] = {}
        for replica in self.shards:
            merged.update(replica.executor.results)
        return merged

    @property
    def command_log(self) -> list[Command]:
        """Replicated command log in delivered order (concatenated by shard
        when sharded — there is no global order across shards)."""
        if self.nshards == 1:
            return self.shards[0].executor.command_log
        log: list[Command] = []
        for replica in self.shards:
            log.extend(replica.executor.command_log)
        return log

    @property
    def mutex(self) -> dict[str, _MutexEntry]:
        """Launch mutual exclusion state: job_id -> entry."""
        if self.nshards == 1:
            return self.shards[0].arbiter.entries
        merged: dict[str, _MutexEntry] = {}
        for replica in self.shards:
            merged.update(replica.arbiter.entries)
        return merged

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        for replica in self.shards:
            name = (
                f"{self.tag}-executor"
                if self.nshards == 1
                else f"{self.tag}-executor-s{replica.index}"
            )
            self.spawn(replica.executor.loop(), name=name)
            replica.start()

    def on_stop(self, *, crashed: bool) -> None:
        for replica in self.shards:
            replica.group.stop()

    def leave(self) -> None:
        """Voluntary departure — handled as a forced failure (paper §4:
        the JOSHUA server shuts down via a signal)."""
        for replica in self.shards:
            replica.group.leave()
        self.stop()

    @property
    def head_name(self) -> str:
        return self.node.name

    # ------------------------------------------------------------------
    # request routing
    # ------------------------------------------------------------------

    def shard_for_queue(self, spec: JobSpec) -> ShardReplica:
        """The shard owning *spec*'s namespace slice: CRC-32 of the PBS
        queue name (falling back to the owner for unqueued specs) — stable
        across runs, processes and hash seeds."""
        if self.nshards == 1:
            return self.shards[0]
        key = spec.queue or spec.owner
        return self.shards[zlib.crc32(key.encode()) % self.nshards]

    def shard_for_job(self, job_id: str) -> ShardReplica:
        """The shard owning *job_id*, from the id stripe ``(seq-1) % N``."""
        if self.nshards == 1:
            return self.shards[0]
        head = str(job_id).split(".", 1)[0]
        if not head.isdigit():
            return self.shards[0]
        return self.shards[(int(head) - 1) % self.nshards]

    def _route_command(self, payload) -> ShardReplica:
        if isinstance(payload, JSubReq):
            return self.shard_for_queue(payload.spec)
        if payload.job_id is None:  # jstat with no id: complete but only
            return self.shards[0]  # shard-0-ordered (see module docstring)
        return self.shard_for_job(payload.job_id)

    # ------------------------------------------------------------------
    # client / mom RPC handling
    # ------------------------------------------------------------------

    def run(self):
        # Non-RPC frames (fire-and-forget pushes) route through a typed
        # dispatch table, same shape as the RPC handler registry.
        pushes = {XferPush: self._handle_xfer_push}
        while True:
            delivery = yield self.endpoint.recv()
            frame = delivery.payload
            if self.rpc.handle_frame(delivery.src, frame):
                continue
            handler = pushes.get(type(frame))
            if handler is not None:
                handler(frame)

    def _handle_xfer_push(self, frame: XferPush) -> None:
        if 0 <= frame.shard < self.nshards:
            self.shards[frame.shard].xfer.handle_response(frame.response)

    def _build_dispatcher(self) -> RpcDispatcher:
        """Typed request routing with the calibrated receive delays."""
        t = self.times

        def fallback(src, request_id, payload):
            return ErrorResp("bad-request", str(type(payload)))

        rpc = RpcDispatcher(self, fallback=fallback)
        rpc.register((JSubReq, JDelReq, JStatReq), self._handle_command,
                     delay=t.cmd_receive)
        rpc.register(JMutexReq, self._handle_jmutex, delay=t.mutex_process)
        rpc.register(JStartedReq, self._handle_started, delay=t.mutex_process)
        rpc.register(JDoneReq, self._handle_done, delay=t.mutex_process)
        rpc.register(StateXferReq, self._handle_xfer_req, delay=t.cmd_receive)
        return rpc

    def _reply(self, dst: Address, request_id: int, response) -> None:
        self.rpc.reply(dst, request_id, response)

    def _handle_command(self, src: Address, request_id: int, payload):
        if isinstance(payload, JStatReq) and payload.consistency != "ordered":
            self.seq_tracking = True
            return self._read_locally(src, request_id, payload)
        if getattr(payload, "track_seq", False):
            self.seq_tracking = True
        replica = self._route_command(payload)
        return replica.executor.submit(src, request_id, payload)

    # ------------------------------------------------------------------
    # read path (PROTOCOLS.md §12)
    # ------------------------------------------------------------------

    def _read_locally(self, src: Address, request_id: int, req: JStatReq):
        """Answer a read-path ``jstat`` from the local PBS replica.

        ``eventual`` answers immediately; ``ryw`` first waits (bounded by
        ``times.read_catchup_timeout``) for every gated shard's applied
        position to reach the client's floor, then falls back to the
        ordered path. An id-less query gates on — and reports — **every**
        shard's position: all replicas on a head apply to the same local
        PBS, so one local stat *is* the per-shard fan-out, merged.
        """
        t0 = self.kernel.now
        if req.consistency not in ("eventual", "ryw"):
            return ErrorResp(
                "bad-request", f"unknown consistency {req.consistency!r}"
            )
        gating = (
            self.shards if req.job_id is None
            else [self.shard_for_job(req.job_id)]
        )
        if not all(replica.active for replica in gating):
            return ErrorResp("joining", "head is joining; retry another")
        floors = dict(req.min_seq) if req.consistency == "ryw" else {}
        unmet = []
        for replica in gating:
            floor = floors.get(replica.shard_id, 0)
            if floor <= 0:
                continue
            if not replica.seq_exact:
                # A floor counter cannot prove the client's write was
                # applied here; only the ordered path can serialise it.
                return self._read_fallback(src, request_id, req, floors, 0.0)
            if replica.applied_seq < floor:
                unmet.append((floor, replica))
        if unmet:
            deadline_at = self.kernel.now + self.times.read_catchup_timeout
            waiters = [(r, r.waiter_for_seq(floor)) for floor, r in unmet]
            for replica, waiter in waiters:
                if waiter.triggered:
                    continue
                remaining = deadline_at - self.kernel.now
                if remaining > 0:
                    yield self.kernel.any_of(
                        [waiter, self.kernel.timeout(remaining)]
                    )
                if not waiter.triggered:
                    for other, pending in waiters:
                        other.forget_waiter(pending)
                    return self._read_fallback(
                        src, request_id, req, floors, self.kernel.now - t0
                    )
            if not all(replica.active for replica in gating):
                # Demoted (view change / resync) while we waited.
                return ErrorResp("joining", "head is joining; retry another")
        # Reserve this head's serial read occupancy (floor-waiting above
        # costs none — a blocked read burns no CPU).
        start = max(self.kernel.now, self._read_busy_until)
        self._read_busy_until = start + self.times.read_service
        if start > self.kernel.now:
            yield self.kernel.timeout(start - self.kernel.now)
        try:
            stat = yield from gating[0].executor.local_rpc(StatReq(req.job_id))
        except PBSError as exc:
            result = ErrorResp("pbs-error", str(exc))
        else:
            as_of = tuple(sorted(
                (replica.shard_id, replica.applied_seq)
                for replica in gating if replica.seq_exact
            ))
            result = JStatResp(tuple(stat.rows), as_of, self.head_name)
        self._observe_read(req, "local", self.kernel.now - t0, gating)
        yield self.kernel.timeout(self.times.cmd_reply)
        return result

    def _read_fallback(
        self, src: Address, request_id: int, req: JStatReq,
        floors: dict, waited: float,
    ):
        """Route a read the local replica cannot serve in time into the
        ordered stream. An ordered command on shard *k* executes after all
        committed shard-*k* writes, so id-less queries go to the shard with
        the largest unmet floor — the one the client is actually waiting
        on. (Simultaneously lagging *several* shards of an id-less query
        is the documented cross-shard limitation, PROTOCOLS.md §12.)"""
        replica = self._route_command(req)
        if req.job_id is None and floors:
            best_lag = 0
            for candidate in self.shards:
                floor = floors.get(candidate.shard_id, 0)
                lag = floor - (
                    candidate.applied_seq if candidate.seq_exact else 0
                )
                if lag > best_lag:
                    best_lag, replica = lag, candidate
        self._observe_read(req, "fallback", waited, [replica])
        return replica.executor.submit(src, request_id, req)

    def _observe_read(
        self, req: JStatReq, outcome: str, waited: float, shards: list,
    ) -> None:
        collector = collector_of(self.node.network)
        if collector is None:
            return
        lag = sum(r.delivered_commands - r.drained_commands for r in shards)
        collector.joshua_read(
            self.node.name, trace_id=req.uuid, mode=req.consistency,
            outcome=outcome, wait_s=waited, lag=lag,
            shard=(
                shards[0].shard_id
                if self.nshards > 1 and len(shards) == 1 else None
            ),
        )

    def _handle_jmutex(self, src: Address, request_id: int, req: JMutexReq) -> None:
        self.shard_for_job(req.job_id).arbiter.handle_jmutex(src, request_id, req)

    def _handle_started(self, src: Address, request_id: int, payload: JStartedReq):
        replica = self.shard_for_job(payload.job_id)
        if replica.active and replica.group.can_multicast:
            replica.group.multicast(Started(payload.job_id))
            return JMutexResp("ok")
        # Refuse rather than ack-and-drop: the mom's notifier must
        # move on to a head that can actually record the event.
        return ErrorResp("joining", "not in view")

    def _handle_done(self, src: Address, request_id: int, payload: JDoneReq):
        replica = self.shard_for_job(payload.job_id)
        if replica.active and replica.group.can_multicast:
            replica.group.multicast(Done(payload.job_id))
            return JMutexResp("ok")
        return ErrorResp("joining", "not in view")

    def _handle_xfer_req(self, src: Address, request_id: int, payload: StateXferReq):
        # State is normally *pushed* when the executor reaches the marker;
        # a direct request means the joiner never heard that push (lost
        # frame). Re-serve the capture if we have it, else tell the joiner
        # to retry/recut.
        if not 0 <= payload.shard < self.nshards:
            return ErrorResp("bad-request", f"no shard {payload.shard}")
        response = self.shards[payload.shard].xfer.served(payload.marker_uuid)
        if response is not None:
            return response
        return ErrorResp("retry", "marker not reached")

    # ------------------------------------------------------------------
    # state transfer (thin hooks kept on the façade for tests/tools;
    # the executor drives the per-replica versions in shard.py)
    # ------------------------------------------------------------------

    def _execute_marker(self, marker: XferMarker):
        yield from self.shards[0]._execute_marker(marker)

    def _serve_state(self, marker: XferMarker):
        yield from self.shards[0]._serve_state(marker)

    def _receive_state(self, marker: XferMarker):
        yield from self.shards[0]._receive_state(marker)

    @staticmethod
    def _spec_from_row(row: dict):
        return StateTransfer.spec_from_row(row)

    def _job_from_row(self, row: dict):
        return self.shards[0].xfer.job_from_row(row)
