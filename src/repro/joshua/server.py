"""The ``joshua`` server daemon: one per active head node.

Replication model (paper §4): the daemon accepts ``jsub``/``jdel``/``jstat``
from clients, multicasts each command through the group communication
system with SAFE service (totally ordered *and* stable — the delivered-once
output guarantee rides on stability), and a strictly serial executor applies
delivered commands to the **local** TORQUE server through the ordinary PBS
wire protocol. Identical command order + deterministic server/scheduler =
identical replica state.

The daemon is a façade over three protocol engines plus the shared RPC
dispatch substrate:

* :class:`~repro.joshua.executor.SerialExecutor` — command dedup by UUID,
  SAFE multicast, the serial executor, the delivered-once output cache;
* :class:`~repro.joshua.mutex.MutexArbiter` — launch mutual exclusion
  (``jmutex``/``jdone``) claim arbitration and orphan-winner rerun;
* :class:`~repro.joshua.xfer.StateTransfer` — join/resync marker pinning,
  state capture at the marker cut, and the replay/snapshot transfer modes.

The façade owns what crosses all of them: the GCS membership (delivery and
view callbacks fan out to the engines in a fixed order), the typed RPC
dispatcher, and the post-view-change mom announcements.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.daemon import Daemon
from repro.gcs.config import GroupConfig
from repro.gcs.member import GroupMember
from repro.gcs.messages import DeliveredMessage
from repro.gcs.view import View
from repro.joshua.config import ERA_2006_JOSHUA, JOSHUA_GROUP_CONFIG, JoshuaTimes
from repro.joshua.executor import SerialExecutor
from repro.joshua.mutex import MutexArbiter, _MutexEntry  # noqa: F401 (re-export)
from repro.joshua.wire import (
    Claim,
    Command,
    Done,
    JDelReq,
    JDoneReq,
    JMutexReq,
    JMutexResp,
    JStartedReq,
    JStatReq,
    JSubReq,
    Started,
    StateXferReq,
    XferMarker,
)
from repro.joshua.xfer import StateTransfer
from repro.net.address import Address
from repro.pbs.server import PBS_SERVER_PORT
from repro.pbs.wire import ErrorResp
from repro.rpc import RpcDispatcher
from repro.util.errors import JoshuaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["JoshuaServer", "JOSHUA_PORT", "JOSHUA_GCS_PORT"]

JOSHUA_PORT = 4412
JOSHUA_GCS_PORT = 4413


class JoshuaServer(Daemon):
    """The joshua daemon on one head node.

    Parameters
    ----------
    node:
        Hosting head node (must also run a PBS server + scheduler).
    initial_heads:
        Names of the founding head nodes (including this one) — the static
        bootstrap group. Mutually exclusive with *contacts*.
    contacts:
        For a later-joining head: names of head nodes to join through.
    group_config / times:
        Protocol calibration.
    state_transfer:
        ``"replay"`` (paper-faithful) or ``"snapshot"`` (extension).
    moms:
        Mom addresses, for post-view-change server-list announcements.
    """

    def __init__(
        self,
        node: "Node",
        *,
        initial_heads: list[str] | None = None,
        contacts: list[str] | None = None,
        group_config: GroupConfig = JOSHUA_GROUP_CONFIG,
        times: JoshuaTimes = ERA_2006_JOSHUA,
        state_transfer: str = "replay",
        moms: list[Address] | None = None,
    ):
        super().__init__(node, "joshua", JOSHUA_PORT)
        if (initial_heads is None) == (contacts is None):
            raise JoshuaError("exactly one of initial_heads/contacts required")
        if state_transfer not in ("replay", "snapshot"):
            raise JoshuaError(f"unknown state_transfer mode {state_transfer!r}")
        self.initial_heads = list(initial_heads or [])
        self.contacts = list(contacts or [])
        self.times = times
        self.state_transfer = state_transfer
        self.moms = list(moms or [])
        self.local_pbs = Address(node.name, PBS_SERVER_PORT)

        self.group = GroupMember(
            node.network.bind(node.name, JOSHUA_GCS_PORT),
            group_config,
            on_deliver=self._on_deliver,
            on_view=self._on_view,
        )

        #: Fully in service (joined + state transferred).
        self.active = False
        self.stats = {"commands": 0, "executed": 0, "claims": 0, "revocations": 0,
                      "state_transfers_served": 0, "state_transfers_pulled": 0}
        self.executor = SerialExecutor(self)
        self.arbiter = MutexArbiter(self)
        self.xfer = StateTransfer(self)
        self.rpc = self._build_dispatcher()

    # -- component state, exposed under the historical names ------------------

    @property
    def results(self) -> dict[str, object]:
        """uuid -> cached local result (output dedup across retries)."""
        return self.executor.results

    @property
    def command_log(self) -> list[Command]:
        """Replicated command log in delivered order."""
        return self.executor.command_log

    @property
    def mutex(self) -> dict[str, _MutexEntry]:
        """Launch mutual exclusion state: job_id -> entry."""
        return self.arbiter.entries

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.spawn(self.executor.loop(), name=f"{self.tag}-executor")
        if self.initial_heads:
            self.group.boot(
                [Address(h, JOSHUA_GCS_PORT) for h in self.initial_heads]
            )
            self.active = True
        else:
            self.group.join([Address(h, JOSHUA_GCS_PORT) for h in self.contacts])

    def on_stop(self, *, crashed: bool) -> None:
        self.group.stop()

    def leave(self) -> None:
        """Voluntary departure — handled as a forced failure (paper §4:
        the JOSHUA server shuts down via a signal)."""
        self.group.leave()
        self.stop()

    @property
    def head_name(self) -> str:
        return self.node.name

    # ------------------------------------------------------------------
    # client / mom RPC handling
    # ------------------------------------------------------------------

    def run(self):
        while True:
            delivery = yield self.endpoint.recv()
            frame = delivery.payload
            if self.rpc.handle_frame(delivery.src, frame):
                continue
            if not isinstance(frame, tuple) or not frame:
                continue
            if frame[0] == "XFER":
                self.xfer.handle_response(frame[1])

    def _build_dispatcher(self) -> RpcDispatcher:
        """Typed request routing with the calibrated receive delays."""
        t = self.times

        def fallback(src, request_id, payload):
            return ErrorResp("bad-request", str(type(payload)))

        rpc = RpcDispatcher(self, fallback=fallback)
        rpc.register((JSubReq, JDelReq, JStatReq), self._handle_command,
                     delay=t.cmd_receive)
        rpc.register(JMutexReq, self._handle_jmutex, delay=t.mutex_process)
        rpc.register(JStartedReq, self._handle_started, delay=t.mutex_process)
        rpc.register(JDoneReq, self._handle_done, delay=t.mutex_process)
        rpc.register(StateXferReq, self._handle_xfer_req, delay=t.cmd_receive)
        return rpc

    def _reply(self, dst: Address, request_id: int, response) -> None:
        self.rpc.reply(dst, request_id, response)

    def _handle_command(self, src: Address, request_id: int, payload):
        return self.executor.submit(src, request_id, payload)

    def _handle_jmutex(self, src: Address, request_id: int, req: JMutexReq) -> None:
        self.arbiter.handle_jmutex(src, request_id, req)

    def _handle_started(self, src: Address, request_id: int, payload: JStartedReq):
        if self.active and self.group.can_multicast:
            self.group.multicast(Started(payload.job_id))
            return JMutexResp("ok")
        # Refuse rather than ack-and-drop: the mom's notifier must
        # move on to a head that can actually record the event.
        return ErrorResp("joining", "not in view")

    def _handle_done(self, src: Address, request_id: int, payload: JDoneReq):
        if self.active and self.group.can_multicast:
            self.group.multicast(Done(payload.job_id))
            return JMutexResp("ok")
        return ErrorResp("joining", "not in view")

    def _handle_xfer_req(self, src: Address, request_id: int, payload: StateXferReq):
        # State is normally *pushed* when the executor reaches the marker;
        # a direct request means the joiner never heard that push (lost
        # frame). Re-serve the capture if we have it, else tell the joiner
        # to retry/recut.
        response = self.xfer.served(payload.marker_uuid)
        if response is not None:
            return response
        return ErrorResp("retry", "marker not reached")

    # ------------------------------------------------------------------
    # group delivery
    # ------------------------------------------------------------------

    def _on_deliver(self, msg: DeliveredMessage) -> None:
        payload = msg.payload
        if self.xfer.should_drop(payload):
            return
        if isinstance(payload, (Command, XferMarker)):
            self.executor.queue.put_nowait(msg)
            self.xfer.note_enqueued(payload)
        elif isinstance(payload, Claim):
            self.arbiter.on_claim(payload)
        elif isinstance(payload, Started):
            self.arbiter.on_started(payload)
        elif isinstance(payload, Done):
            self.arbiter.on_done(payload)

    def _on_view(self, view: View) -> None:
        self.xfer.on_view(view)
        self.arbiter.revoke_for_view(view)
        # Tell every mom the current server set, so obituaries (and future
        # start attempts) reach exactly the live heads.
        if view.members and view.coordinator == self.group.address:
            servers = sorted(Address(m.node, PBS_SERVER_PORT) for m in view.members)
            for mom in self.moms:
                if not self.endpoint.closed:
                    self.endpoint.send(mom, ("ADMIN-SERVERS", servers))

    # ------------------------------------------------------------------
    # state transfer (kept as thin methods so tests can hook/override)
    # ------------------------------------------------------------------

    def _execute_marker(self, marker: XferMarker):
        if marker.joiner == self.address:
            yield from self._receive_state(marker)
        else:
            yield from self._serve_state(marker)

    def _serve_state(self, marker: XferMarker):
        yield from self.xfer.serve_state(marker)

    def _receive_state(self, marker: XferMarker):
        yield from self.xfer.receive_state(marker)

    @staticmethod
    def _spec_from_row(row: dict):
        return StateTransfer.spec_from_row(row)

    def _job_from_row(self, row: dict):
        return self.xfer.job_from_row(row)
