"""The ``joshua`` server daemon: one per active head node.

Replication model (paper §4): the daemon accepts ``jsub``/``jdel``/``jstat``
from clients, multicasts each command through the group communication
system with SAFE service (totally ordered *and* stable — the delivered-once
output guarantee rides on stability), and a strictly serial executor applies
delivered commands to the **local** TORQUE server through the ordinary PBS
wire protocol. Identical command order + deterministic server/scheduler =
identical replica state; the head that took the client connection relays
its local output back — exactly once, because commands are deduplicated by
UUID across client retries and head failovers.

Launch mutual exclusion (``jmutex``/``jdone``): every head's scheduler
independently dispatches each job, so the mom receives one start attempt
per head. Each attempt's prologue asks its head's joshua server, which
multicasts a SAFE :class:`~repro.joshua.wire.Claim`; the first claim in the
total order wins and only that head's attempt replies ``"run"`` — the rest
emulate. ``jdone`` (from the mom's epilogue) releases the mutex. If a
winner head dies *before* its launch actually happened, every surviving
server notices at the next view change (claim present, no
:class:`~repro.joshua.wire.Started`, winner not in view) and issues a local
``qrerun``, so the job is re-dispatched and re-arbitrated rather than
stranded in an emulated RUNNING state.

Join protocol: a joining server enters the group, multicasts an
:class:`~repro.joshua.wire.XferMarker` to pin a cut in the command stream,
discards deliveries ordered before its own marker, and asks the *sponsor*
(lowest-ranked other member) for the state as of the marker. The sponsor
captures its local queue exactly when its serial executor reaches the
marker, so joiner state + post-marker commands ≡ sponsor state. Two
transfer modes: ``"replay"`` re-submits live jobs through the PBS interface
(the prototype's approach; held jobs cannot be transferred — reproduced
limitation), ``"snapshot"`` bulk-loads job records (the future-work mode).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.cluster.daemon import Daemon
from repro.gcs.config import GroupConfig
from repro.gcs.member import GroupMember
from repro.gcs.messages import SAFE, DeliveredMessage
from repro.gcs.view import View
from repro.joshua.config import ERA_2006_JOSHUA, JOSHUA_GROUP_CONFIG, JoshuaTimes
from repro.joshua.wire import (
    Claim,
    Command,
    Done,
    JDelReq,
    JDoneReq,
    JMutexReq,
    JMutexResp,
    JStartedReq,
    JStatReq,
    JSubReq,
    Started,
    StateXferReq,
    StateXferResp,
    XferMarker,
)
from repro.net.address import Address
from repro.pbs.job import JobSpec
from repro.pbs.server import PBS_SERVER_PORT
from repro.pbs.wire import (
    DeleteReq,
    ErrorResp,
    LoadStateReq,
    PurgeReq,
    RerunReq,
    RpcTimeout,
    StatReq,
    SubmitReq,
    rpc_call,
)
from repro.pbs.job import Job, JobState
from repro.sim.resources import Store
from repro.util.errors import JoshuaError, PBSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["JoshuaServer", "JOSHUA_PORT", "JOSHUA_GCS_PORT"]

JOSHUA_PORT = 4412
JOSHUA_GCS_PORT = 4413

_MARKER_COUNTER = itertools.count(1)


class _MutexEntry:
    __slots__ = ("winner", "started")

    def __init__(self, winner: str, started: bool = False):
        self.winner = winner
        self.started = started


class JoshuaServer(Daemon):
    """The joshua daemon on one head node.

    Parameters
    ----------
    node:
        Hosting head node (must also run a PBS server + scheduler).
    initial_heads:
        Names of the founding head nodes (including this one) — the static
        bootstrap group. Mutually exclusive with *contacts*.
    contacts:
        For a later-joining head: names of head nodes to join through.
    group_config / times:
        Protocol calibration.
    state_transfer:
        ``"replay"`` (paper-faithful) or ``"snapshot"`` (extension).
    moms:
        Mom addresses, for post-view-change server-list announcements.
    """

    def __init__(
        self,
        node: "Node",
        *,
        initial_heads: list[str] | None = None,
        contacts: list[str] | None = None,
        group_config: GroupConfig = JOSHUA_GROUP_CONFIG,
        times: JoshuaTimes = ERA_2006_JOSHUA,
        state_transfer: str = "replay",
        moms: list[Address] | None = None,
    ):
        super().__init__(node, "joshua", JOSHUA_PORT)
        if (initial_heads is None) == (contacts is None):
            raise JoshuaError("exactly one of initial_heads/contacts required")
        if state_transfer not in ("replay", "snapshot"):
            raise JoshuaError(f"unknown state_transfer mode {state_transfer!r}")
        self.initial_heads = list(initial_heads or [])
        self.contacts = list(contacts or [])
        self.times = times
        self.state_transfer = state_transfer
        self.moms = list(moms or [])
        self.local_pbs = Address(node.name, PBS_SERVER_PORT)

        self.group = GroupMember(
            node.network.bind(node.name, JOSHUA_GCS_PORT),
            group_config,
            on_deliver=self._on_deliver,
            on_view=self._on_view,
        )

        #: Fully in service (joined + state transferred).
        self.active = False
        #: While syncing: drop deliveries ordered before our own marker.
        self._syncing_marker: str | None = None
        self._marker_seen = False
        self._xfer_responses: dict[str, StateXferResp] = {}
        self._xfer_waiters: dict[str, object] = {}
        self._applied_markers: set[str] = set()
        self._seen_rejoins = 0
        #: Set when a partition re-merge demotes us: an *established* member
        #: (no contacts) that must nevertheless pin a transfer marker.
        self._needs_resync = False

        #: uuid -> cached local result (output dedup across retries).
        self.results: dict[str, object] = {}
        #: uuid -> [(client src, rpc id)] awaiting the result.
        self._pending_replies: dict[str, list[tuple[Address, int]]] = {}
        #: uuids this server has multicast (avoid re-multicast on retry).
        self._multicast_uuids: set[str] = set()

        #: Launch mutual exclusion state: job_id -> entry.
        self.mutex: dict[str, _MutexEntry] = {}
        self._claimed: set[str] = set()  # job_ids we have claimed ourselves
        self._mutex_waiters: dict[str, list[tuple[Address, int]]] = {}

        #: Replicated command log (delivered order) — used by tests and by
        #: replay-mode diagnostics; state transfer itself snapshots the
        #: local queue rather than replaying from time zero.
        self.command_log: list[Command] = []

        self._executor_queue: Store = Store(self.kernel)
        self.stats = {"commands": 0, "executed": 0, "claims": 0, "revocations": 0,
                      "state_transfers_served": 0}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.spawn(self._executor(), name=f"{self.tag}-executor")
        if self.initial_heads:
            self.group.boot(
                [Address(h, JOSHUA_GCS_PORT) for h in self.initial_heads]
            )
            self.active = True
        else:
            self.group.join([Address(h, JOSHUA_GCS_PORT) for h in self.contacts])

    def on_stop(self, *, crashed: bool) -> None:
        self.group.stop()

    def leave(self) -> None:
        """Voluntary departure — handled as a forced failure (paper §4:
        the JOSHUA server shuts down via a signal)."""
        self.group.leave()
        self.stop()

    @property
    def head_name(self) -> str:
        return self.node.name

    # ------------------------------------------------------------------
    # client / mom RPC handling
    # ------------------------------------------------------------------

    def run(self):
        while True:
            delivery = yield self.endpoint.recv()
            frame = delivery.payload
            if not isinstance(frame, tuple) or not frame:
                continue
            if frame[0] == "RPC":
                _tag, request_id, payload = frame
                self.spawn(
                    self._handle_rpc(delivery.src, request_id, payload),
                    name=f"{self.tag}-rpc{request_id}",
                )
            elif frame[0] == "XFER":
                self._handle_xfer_response(frame[1])

    def _reply(self, dst: Address, request_id: int, response) -> None:
        if self.running and not self.endpoint.closed:
            self.endpoint.send(dst, ("RPC-R", request_id, response))

    def _handle_rpc(self, src: Address, request_id: int, payload):
        if isinstance(payload, (JSubReq, JDelReq, JStatReq)):
            yield self.kernel.timeout(self.times.cmd_receive)
            self._handle_command(src, request_id, payload)
        elif isinstance(payload, JMutexReq):
            yield self.kernel.timeout(self.times.mutex_process)
            self._handle_jmutex(src, request_id, payload)
        elif isinstance(payload, JStartedReq):
            yield self.kernel.timeout(self.times.mutex_process)
            if self.active and self.group.can_multicast:
                self.group.multicast(Started(payload.job_id))
                self._reply(src, request_id, JMutexResp("ok"))
            else:
                # Refuse rather than ack-and-drop: the mom's notifier must
                # move on to a head that can actually record the event.
                self._reply(src, request_id, ErrorResp("joining", "not in view"))
        elif isinstance(payload, JDoneReq):
            yield self.kernel.timeout(self.times.mutex_process)
            if self.active and self.group.can_multicast:
                self.group.multicast(Done(payload.job_id))
                self._reply(src, request_id, JMutexResp("ok"))
            else:
                self._reply(src, request_id, ErrorResp("joining", "not in view"))
        elif isinstance(payload, StateXferReq):
            yield self.kernel.timeout(self.times.cmd_receive)
            # Served from the executor when it reaches the marker; a direct
            # request here means the joiner retried — re-serve if captured.
            self._reply(src, request_id, ErrorResp("retry", "marker not reached"))
        else:
            self._reply(src, request_id, ErrorResp("bad-request", str(type(payload))))

    def _handle_command(self, src: Address, request_id: int, payload) -> None:
        if not self.active or not self.group.can_multicast:
            # Inactive (state transfer in progress) or mid-(re)join after an
            # exclusion: either way we cannot order the command — send the
            # client to another head instead of crashing on the multicast.
            self._reply(src, request_id, ErrorResp("joining", "head is joining; retry another"))
            return
        uuid = payload.uuid
        if uuid in self.results:
            self._reply(src, request_id, self.results[uuid])
            return
        self._pending_replies.setdefault(uuid, []).append((src, request_id))
        if uuid in self._multicast_uuids:
            return  # already in flight; the delivery will answer
        self._multicast_uuids.add(uuid)
        if isinstance(payload, JSubReq):
            command = Command(uuid, "jsub", payload.spec)
        elif isinstance(payload, JDelReq):
            command = Command(uuid, "jdel", payload.job_id)
        else:
            command = Command(uuid, "jstat", payload.job_id)
        self.stats["commands"] += 1
        self.group.multicast(command, service=SAFE)

    # ------------------------------------------------------------------
    # jmutex
    # ------------------------------------------------------------------

    def _handle_jmutex(self, src: Address, request_id: int, req: JMutexReq) -> None:
        entry = self.mutex.get(req.job_id)
        if entry is not None:
            decision = "run" if entry.winner == req.head else "emulate"
            self._reply(src, request_id, JMutexResp(decision, entry.winner))
            return
        self._mutex_waiters.setdefault(req.job_id, []).append((src, request_id))
        if req.job_id not in self._claimed and self.group.can_multicast:
            self._claimed.add(req.job_id)
            self.stats["claims"] += 1
            self.group.multicast(Claim(req.job_id, self.head_name), service=SAFE)

    def _flush_mutex_waiters(self, job_id: str) -> None:
        entry = self.mutex.get(job_id)
        if entry is None:
            return
        for src, request_id in self._mutex_waiters.pop(job_id, []):
            decision = "run" if entry.winner == self.head_name else "emulate"
            self._reply(src, request_id, JMutexResp(decision, entry.winner))

    # ------------------------------------------------------------------
    # group delivery
    # ------------------------------------------------------------------

    def _on_deliver(self, msg: DeliveredMessage) -> None:
        payload = msg.payload
        if self._syncing_marker is not None and not self._marker_seen:
            # Everything ordered before our own marker is covered by the
            # state transfer; drop it.
            if not (
                isinstance(payload, XferMarker)
                and payload.marker_uuid == self._syncing_marker
            ):
                return
        if isinstance(payload, (Command, XferMarker)):
            self._executor_queue.put_nowait(msg)
            if isinstance(payload, XferMarker) and payload.marker_uuid == self._syncing_marker:
                self._marker_seen = True
        elif isinstance(payload, Claim):
            if payload.job_id not in self.mutex:
                self.mutex[payload.job_id] = _MutexEntry(payload.head)
            self._flush_mutex_waiters(payload.job_id)
        elif isinstance(payload, Started):
            entry = self.mutex.get(payload.job_id)
            if entry is not None:
                entry.started = True
        elif isinstance(payload, Done):
            self.mutex.pop(payload.job_id, None)
            self._claimed.discard(payload.job_id)

    def _on_view(self, view: View) -> None:
        rejoins = self.group.stats.get("rejoins", 0)
        if rejoins > self._seen_rejoins:
            self._seen_rejoins = rejoins
            if self.active and view.size > 1:
                # Our GCS member lost a partition merge and dissolved into
                # the surviving component (e.g. after a NIC blackout). Our
                # replica may have missed commands — or executed client
                # retries the majority already answered under different job
                # ids. The survivors are authoritative: demote and resync.
                self.log.warning(
                    self.tag, "re-merged from losing partition side; resyncing"
                )
                self.active = False
                self._syncing_marker = None
                self._needs_resync = True
        if self._syncing_marker is None and not self.active and (
            self.contacts or self._needs_resync
        ) and self.group.can_multicast:
            # First view containing us after a join: pin the transfer cut.
            marker = XferMarker(
                f"xfer-{self.node.name}-{next(_MARKER_COUNTER)}",
                self.address,
            )
            self._syncing_marker = marker.marker_uuid
            self._marker_seen = False
            self.group.multicast(marker)
        # Launch-mutex revocation: claims whose winner left the view without
        # the job having started will never launch; requeue deterministically.
        member_nodes = {m.node for m in view.members}
        doomed = sorted(
            job_id
            for job_id, entry in self.mutex.items()
            if entry.winner not in member_nodes and not entry.started
        )
        for job_id in doomed:
            self.mutex.pop(job_id, None)
            self._claimed.discard(job_id)
            self.stats["revocations"] += 1
            self._executor_queue.put_nowait(("revoke", job_id))
        # Tell every mom the current server set, so obituaries (and future
        # start attempts) reach exactly the live heads.
        if view.members and view.coordinator == self.group.address:
            servers = sorted(Address(m.node, PBS_SERVER_PORT) for m in view.members)
            for mom in self.moms:
                if not self.endpoint.closed:
                    self.endpoint.send(mom, ("ADMIN-SERVERS", servers))

    # ------------------------------------------------------------------
    # serial executor
    # ------------------------------------------------------------------

    def _executor(self):
        while True:
            item = yield self._executor_queue.get()
            if isinstance(item, tuple) and item and item[0] == "revoke":
                yield from self._execute_revoke(item[1])
                continue
            payload = item.payload
            if isinstance(payload, XferMarker):
                yield from self._execute_marker(payload)
            elif isinstance(payload, Command):
                if not self.active and self._syncing_marker is not None:
                    # Commands queued between an abandoned marker and its
                    # replacement are covered by the fresh capture.
                    continue
                yield from self._execute_command(payload)

    def _local_rpc(self, payload, *, timeout: float = 3.0, retries: int = 2):
        response = yield from rpc_call(
            self.node.network, self.node.name, self.local_pbs, payload,
            timeout=timeout, retries=retries,
        )
        return response

    def _execute_command(self, command: Command):
        if command.uuid in self.results:
            self._answer(command.uuid)
            return
        self.command_log.append(command)
        try:
            if command.kind == "jsub":
                response = yield from self._local_rpc(SubmitReq(command.payload))
                result = response
            elif command.kind == "jdel":
                response = yield from self._local_rpc(DeleteReq(command.payload))
                result = response
            elif command.kind == "jstat":
                response = yield from self._local_rpc(StatReq(command.payload))
                result = response
            else:  # pragma: no cover - protocol guard
                result = ErrorResp("bad-command", command.kind)
        except PBSError as exc:
            result = ErrorResp("pbs-error", str(exc))
        self.results[command.uuid] = result
        self.stats["executed"] += 1
        yield self.kernel.timeout(self.times.cmd_reply)
        self._answer(command.uuid)

    def _answer(self, uuid: str) -> None:
        result = self.results.get(uuid)
        for src, request_id in self._pending_replies.pop(uuid, []):
            self._reply(src, request_id, result)

    def _execute_revoke(self, job_id: str):
        try:
            yield from self._local_rpc(RerunReq(job_id), retries=1)
            self.log.warning(self.tag, f"requeued {job_id}: launch winner died pre-start")
        except PBSError:
            pass  # job not running locally (already finished or unknown)

    # ------------------------------------------------------------------
    # state transfer
    # ------------------------------------------------------------------

    def _execute_marker(self, marker: XferMarker):
        if marker.joiner == self.address:
            yield from self._receive_state(marker)
        else:
            yield from self._serve_state(marker)

    def _serve_state(self, marker: XferMarker):
        # Preferred sponsor = lowest-ranked *active* member other than the
        # joiner; but every active member serves (replicas are identical at
        # the marker cut, so the captures are too, and the joiner dedups).
        # A single designated sponsor can deadlock: two heads resyncing at
        # once would each elect the other — inactive and unable to serve.
        view = self.group.view
        if view is None or not self.active:
            return
        # marker.joiner is the joiner's *joshua* endpoint; members are GCS
        # endpoints — compare by node.
        others = [m for m in view.members if m.node != marker.joiner.node]
        if not others:
            return
        response = yield from self._capture_state(marker)
        self.stats["state_transfers_served"] += 1
        if not self.endpoint.closed:
            self.endpoint.send(marker.joiner, ("XFER", response))

    def _capture_state(self, marker: XferMarker):
        stat = yield from self._local_rpc(StatReq(None))
        rows = list(stat.rows)
        next_seq = 1 + max((int(r["job_id"].split(".")[0]) for r in rows), default=0)
        live = [r for r in rows if r["state"] in ("Q", "R", "E", "H", "W")]
        skipped: list[str] = []
        items: list = []
        if self.state_transfer == "replay":
            for row in live:
                if row["state"] == "H":
                    # The paper's documented limitation: command replay
                    # cannot reconstruct held jobs consistently.
                    skipped.append(row["job_id"])
                    continue
                items.append(("submit", self._spec_from_row(row), row["job_id"]))
        else:
            for row in live:
                items.append(self._job_from_row(row))
        mutex = tuple(
            (job_id, entry.winner, entry.started)
            for job_id, entry in sorted(self.mutex.items())
        )
        return StateXferResp(
            marker.marker_uuid,
            self.state_transfer,
            tuple(items),
            next_seq,
            mutex,
            tuple(skipped),
            tuple(sorted(self.results.items())),
        )

    @staticmethod
    def _spec_from_row(row: dict) -> JobSpec:
        return JobSpec(
            name=row["name"],
            owner=row["owner"],
            nodes=row["nodes"],
            walltime=row["walltime"],
            queue=row["queue"],
        )

    def _job_from_row(self, row: dict) -> Job:
        state = JobState(row["state"])
        job = Job(
            row["job_id"],
            self._spec_from_row(row),
            submit_time=self.kernel.now,
            comment="state transfer",
        )
        if state in (JobState.RUNNING, JobState.EXITING):
            job = job.transition(
                JobState.RUNNING,
                start_time=self.kernel.now,
                exec_nodes=tuple(row["exec_nodes"]),
                run_count=1,
            )
        elif state is JobState.HELD:
            job = job.transition(JobState.HELD)
        elif state is JobState.WAITING:
            job = job.transition(JobState.WAITING)
        return job

    def _handle_xfer_response(self, response: StateXferResp) -> None:
        self._xfer_responses[response.marker_uuid] = response
        waiter = self._xfer_waiters.pop(response.marker_uuid, None)
        if waiter is not None and not waiter.triggered:
            waiter.succeed(response)

    def _receive_state(self, marker: XferMarker):
        uuid = marker.marker_uuid
        if uuid in self._applied_markers or uuid != self._syncing_marker:
            return  # stale marker; we moved on to a fresh cut
        if uuid not in self._xfer_responses:
            waiter = self.kernel.event()
            self._xfer_waiters[uuid] = waiter
            deadline = self.kernel.timeout(self.group.config.flush_timeout * 4)
            yield self.kernel.any_of([waiter, deadline])
            if not waiter.triggered:
                # Sponsor silent (likely died mid-capture): pin a fresh cut.
                self._xfer_waiters.pop(uuid, None)
                if not self.group.can_multicast:
                    # The group itself is mid-(re)join; a marker cannot be
                    # ordered right now. Drop the stale cut — the view that
                    # ends the join re-enters _on_view, which pins a new one.
                    self._syncing_marker = None
                    return
                fresh = XferMarker(
                    f"xfer-{self.node.name}-{next(_MARKER_COUNTER)}", self.address
                )
                self._syncing_marker = fresh.marker_uuid
                self._marker_seen = False
                self.group.multicast(fresh)
                return  # the fresh marker's delivery re-enters here
        response = self._xfer_responses[uuid]
        self._applied_markers.add(uuid)
        # Discard any stale local state (a rejoining head recovered its old
        # queue from disk; the transferred state supersedes it).
        yield from self._local_rpc(PurgeReq())
        if response.mode == "replay":
            # "Configuration file modification": align the id counter first,
            # then replay the live jobs through the ordinary PBS interface.
            yield from self._local_rpc(LoadStateReq((), response.next_seq))
            for _kind, spec, job_id in response.items:
                try:
                    yield from self._local_rpc(SubmitReq(spec, force_job_id=job_id))
                except PBSError as exc:  # pragma: no cover - replay guard
                    self.log.error(self.tag, f"replay of {job_id} failed: {exc}")
            if response.skipped:
                self.log.warning(
                    self.tag,
                    f"replay could not transfer held jobs: {list(response.skipped)}",
                )
        else:
            yield from self._local_rpc(
                LoadStateReq(tuple(response.items), response.next_seq)
            )
        for job_id, winner, started in response.mutex:
            self.mutex.setdefault(job_id, _MutexEntry(winner, started))
        for uuid, cached in response.results:
            self.results.setdefault(uuid, cached)
        self._syncing_marker = None
        self._needs_resync = False
        self.active = True
        self.log.info(self.tag, f"state transfer complete ({response.mode}), now active")
