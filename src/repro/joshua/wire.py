"""JOSHUA wire messages: client commands, mutex traffic, state transfer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.address import Address
from repro.net.codec import register_wire_types
from repro.pbs.job import JobSpec

__all__ = [
    "JSubReq", "JDelReq", "JStatReq",
    "JMutexReq", "JMutexResp", "JStartedReq", "JDoneReq",
    "StateXferReq", "StateXferResp", "XferPush",
    "Command", "Claim", "Started", "Done", "XferMarker",
]


# -- client -> joshua server ---------------------------------------------------


@dataclass(frozen=True)
class JSubReq:
    """``jsub``: replicated job submission."""

    uuid: str
    spec: JobSpec


@dataclass(frozen=True)
class JDelReq:
    """``jdel``: replicated job deletion."""

    uuid: str
    job_id: str


@dataclass(frozen=True)
class JStatReq:
    """``jstat``: status query, ordered with the state changes so every
    user sees a queue consistent with the command order."""

    uuid: str
    job_id: str | None = None


# -- mom prologue/epilogue -> joshua server ----------------------------------------


@dataclass(frozen=True)
class JMutexReq:
    """``jmutex``: may this head's start attempt actually launch the job?"""

    job_id: str
    head: str  # head-node name of the attempting server


@dataclass(frozen=True)
class JMutexResp:
    decision: str  # "run" | "emulate"
    winner: str | None = None


@dataclass(frozen=True)
class JStartedReq:
    """The winning attempt really did start the job on the mom."""

    job_id: str


@dataclass(frozen=True)
class JDoneReq:
    """``jdone``: the job finished; release the launch mutex."""

    job_id: str


# -- state transfer ---------------------------------------------------------------


@dataclass(frozen=True)
class StateXferReq:
    """Joiner -> sponsor: send me the state as of my marker."""

    marker_uuid: str
    joiner: Address
    #: Which ordering shard's replica unit this transfer belongs to (the
    #: front-end router on JOSHUA_PORT serves every shard hosted on the
    #: head; 0 is the only shard in an unsharded deployment).
    shard: int = 0


@dataclass(frozen=True)
class StateXferResp:
    marker_uuid: str
    mode: str  # "replay" | "snapshot"
    #: replay: tuple of (kind, payload) commands to re-execute;
    #: snapshot: tuple of Job records.
    items: tuple
    next_seq: int
    #: job_id -> (winner head, started) launch-mutex entries.
    mutex: tuple
    #: Job ids the sponsor could not transfer (held jobs in replay mode —
    #: the paper's documented limitation).
    skipped: tuple = ()
    #: (uuid, cached response) pairs: the sponsor's command dedup cache, so
    #: a client retrying an already-executed command against the joiner is
    #: answered from cache instead of re-executing (and possibly
    #: re-launching) it.
    results: tuple = ()


@dataclass(frozen=True)
class XferPush:
    """Sponsor -> joiner: unsolicited state-transfer capture push.

    Fire-and-forget (not request/response — the joiner asked via the
    ordered :class:`XferMarker`, not an RPC); sent to the joiner's joshua
    endpoint when the sponsor's executor reaches the marker cut. *shard*
    routes the push to the owning replica unit behind the front-end.
    """

    response: StateXferResp
    shard: int = 0


# -- group multicast payloads --------------------------------------------------------


@dataclass(frozen=True)
class Command:
    """A totally ordered user command, executed at every head."""

    uuid: str
    kind: str  # "jsub" | "jdel" | "jstat"
    payload: Any


@dataclass(frozen=True)
class Claim:
    """SAFE-delivered launch-mutex claim; first claim per job wins."""

    job_id: str
    head: str


@dataclass(frozen=True)
class Started:
    job_id: str


@dataclass(frozen=True)
class Done:
    job_id: str


@dataclass(frozen=True)
class XferMarker:
    """Joiner's cut point in the command stream for state transfer."""

    marker_uuid: str
    joiner: Address


register_wire_types(
    JSubReq, JDelReq, JStatReq,
    JMutexReq, JMutexResp, JStartedReq, JDoneReq,
    StateXferReq, StateXferResp, XferPush,
    Command, Claim, Started, Done, XferMarker,
)
