"""JOSHUA wire messages: client commands, mutex traffic, state transfer.

The read-path records (PROTOCOLS.md §12) grow existing requests by
**wire-optional trailing fields** (:func:`repro.net.codec.mark_wire_optional`):
a request whose new fields still hold their defaults encodes — and reprs —
byte-identically to the pre-extension declaration, which is what keeps the
``consistency="ordered"`` default bit-identical on the wire (the pinned
``tests/data/wire_baseline.json`` digests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.address import Address
from repro.net.codec import elided_repr, mark_wire_optional, register_wire_types
from repro.pbs.job import JobSpec

__all__ = [
    "JSubReq", "JDelReq", "JStatReq", "JStatResp", "SeqStampedResp",
    "JMutexReq", "JMutexResp", "JStartedReq", "JDoneReq",
    "StateXferReq", "StateXferResp", "XferPush",
    "Command", "Claim", "Started", "Done", "XferMarker",
]


# -- client -> joshua server ---------------------------------------------------


@dataclass(frozen=True, repr=False)
class JSubReq:
    """``jsub``: replicated job submission.

    ``track_seq`` asks the head to stamp the commit sequence of this write
    into the reply (:class:`SeqStampedResp`) so the client can later issue
    read-your-writes ``jstat`` requests against it.
    """

    uuid: str
    spec: JobSpec
    track_seq: bool = False

    __repr__ = elided_repr


@dataclass(frozen=True, repr=False)
class JDelReq:
    """``jdel``: replicated job deletion."""

    uuid: str
    job_id: str
    track_seq: bool = False

    __repr__ = elided_repr


@dataclass(frozen=True, repr=False)
class JStatReq:
    """``jstat``: status query.

    With ``consistency="ordered"`` (the legacy default) the query rides the
    totally ordered stream exactly like a write, so every user sees a queue
    consistent with the command order. ``"eventual"`` and ``"ryw"`` answer
    from the receiving head's local replica without entering the ordered
    stream; ``min_seq`` carries the client's read-your-writes floors as
    sorted ``(shard, applied_seq)`` pairs.
    """

    uuid: str
    job_id: str | None = None
    consistency: str = "ordered"
    min_seq: tuple = ()

    __repr__ = elided_repr


@dataclass(frozen=True)
class JStatResp:
    """A local-replica answer to a read-path ``jstat``.

    ``as_of_seq`` is the answering replica's applied position per shard
    (sorted ``(shard, applied_seq)`` pairs, exact counters only) — the
    staleness bound the client/invariants can check against their floors.
    Ordered-path queries keep answering with a plain PBS ``StatResp``; the
    response *type* is how a client distinguishes a local read from an
    ordered fallback.
    """

    rows: tuple
    as_of_seq: tuple = ()
    node: str = ""


@dataclass(frozen=True)
class SeqStampedResp:
    """A write reply carrying its commit position: the wrapped PBS result
    plus the (shard, applied_seq) the command executed at on the answering
    head. Only sent when the writer asked via ``track_seq``."""

    result: Any
    shard: int
    seq: int


# -- mom prologue/epilogue -> joshua server ----------------------------------------


@dataclass(frozen=True)
class JMutexReq:
    """``jmutex``: may this head's start attempt actually launch the job?"""

    job_id: str
    head: str  # head-node name of the attempting server


@dataclass(frozen=True)
class JMutexResp:
    decision: str  # "run" | "emulate"
    winner: str | None = None


@dataclass(frozen=True)
class JStartedReq:
    """The winning attempt really did start the job on the mom."""

    job_id: str


@dataclass(frozen=True)
class JDoneReq:
    """``jdone``: the job finished; release the launch mutex."""

    job_id: str


# -- state transfer ---------------------------------------------------------------


@dataclass(frozen=True)
class StateXferReq:
    """Joiner -> sponsor: send me the state as of my marker."""

    marker_uuid: str
    joiner: Address
    #: Which ordering shard's replica unit this transfer belongs to (the
    #: front-end router on JOSHUA_PORT serves every shard hosted on the
    #: head; 0 is the only shard in an unsharded deployment).
    shard: int = 0


@dataclass(frozen=True, repr=False)
class StateXferResp:
    marker_uuid: str
    mode: str  # "replay" | "snapshot"
    #: replay: tuple of (kind, payload) commands to re-execute;
    #: snapshot: tuple of Job records.
    items: tuple
    next_seq: int
    #: job_id -> (winner head, started) launch-mutex entries.
    mutex: tuple
    #: Job ids the sponsor could not transfer (held jobs in replay mode —
    #: the paper's documented limitation).
    skipped: tuple = ()
    #: (uuid, cached response) pairs: the sponsor's command dedup cache, so
    #: a client retrying an already-executed command against the joiner is
    #: answered from cache instead of re-executing (and possibly
    #: re-launching) it.
    results: tuple = ()
    #: The sponsor's exact applied-command counter at the marker cut, so
    #: the joiner's read path resumes with an exact staleness position.
    #: -1 (elided on the wire) when the sponsor is not tracking sequences —
    #: the joiner then restarts with a floor counter (eventual reads only).
    applied_seq: int = -1

    __repr__ = elided_repr


@dataclass(frozen=True)
class XferPush:
    """Sponsor -> joiner: unsolicited state-transfer capture push.

    Fire-and-forget (not request/response — the joiner asked via the
    ordered :class:`XferMarker`, not an RPC); sent to the joiner's joshua
    endpoint when the sponsor's executor reaches the marker cut. *shard*
    routes the push to the owning replica unit behind the front-end.
    """

    response: StateXferResp
    shard: int = 0


# -- group multicast payloads --------------------------------------------------------


@dataclass(frozen=True)
class Command:
    """A totally ordered user command, executed at every head."""

    uuid: str
    kind: str  # "jsub" | "jdel" | "jstat"
    payload: Any


@dataclass(frozen=True)
class Claim:
    """SAFE-delivered launch-mutex claim; first claim per job wins."""

    job_id: str
    head: str


@dataclass(frozen=True)
class Started:
    job_id: str


@dataclass(frozen=True)
class Done:
    job_id: str


@dataclass(frozen=True)
class XferMarker:
    """Joiner's cut point in the command stream for state transfer."""

    marker_uuid: str
    joiner: Address


mark_wire_optional(JSubReq, "track_seq")
mark_wire_optional(JDelReq, "track_seq")
mark_wire_optional(JStatReq, "consistency", "min_seq")
mark_wire_optional(StateXferResp, "applied_seq")

register_wire_types(
    JSubReq, JDelReq, JStatReq, JStatResp, SeqStampedResp,
    JMutexReq, JMutexResp, JStartedReq, JDoneReq,
    StateXferReq, StateXferResp, XferPush,
    Command, Claim, Started, Done, XferMarker,
)
