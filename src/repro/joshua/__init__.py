"""JOSHUA — the paper's contribution: symmetric active/active replication
for PBS-compliant HPC job and resource management.

Architecture (paper Figures 8-9), reproduced component for component:

* :class:`~repro.joshua.server.JoshuaServer` — the ``joshua`` daemon on each
  head node. It intercepts the PBS user commands, pushes them through the
  group communication system for reliable, totally ordered (SAFE) delivery,
  and executes the equivalent ``q``-command against the *local* TORQUE
  server on every active head — external replication: the PBS stack is
  never modified, only driven through its service interface.
* :mod:`~repro.joshua.commands` — the ``jsub``/``jdel``/``jstat`` control
  commands, drop-in equivalents of ``qsub``/``qdel``/``qstat`` (the paper
  suggests ``alias qsub=jsub``). They contact any live head and fail over
  on timeout; command UUIDs make retries exactly-once.
* :mod:`~repro.joshua.jmutex` — the ``jmutex``/``jdone`` scripts: a
  distributed mutual exclusion in the mom's job-start prologue, built on
  SAFE multicast, guaranteeing each job launches exactly once even though
  every head's scheduler independently dispatches it.
* join/leave — a head node joins by entering the group and receiving state
  transfer; the paper's prototype transferred state by configuration-file
  modification plus user-command replay, which cannot reproduce held jobs
  (reproduced as ``state_transfer="replay"``, the default); the snapshot
  mode the paper's future work points at is also implemented
  (``state_transfer="snapshot"``). Leaving is handled as a forced failure,
  exactly as in the paper.

Deployment helper: :func:`~repro.joshua.deploy.build_joshua_stack`.
"""

from repro.joshua.server import JoshuaServer, JOSHUA_PORT, JOSHUA_GCS_PORT
from repro.joshua.commands import JoshuaClient
from repro.joshua.deploy import build_joshua_stack, JoshuaStack
from repro.joshua.config import JOSHUA_GROUP_CONFIG, JoshuaTimes, ERA_2006_JOSHUA

__all__ = [
    "JoshuaServer",
    "JoshuaClient",
    "JoshuaStack",
    "build_joshua_stack",
    "JOSHUA_PORT",
    "JOSHUA_GCS_PORT",
    "JOSHUA_GROUP_CONFIG",
    "JoshuaTimes",
    "ERA_2006_JOSHUA",
]
