"""Command-line interface: regenerate any experiment without writing code.

::

    python -m repro figure10 [--trials N] [--seed S]
    python -m repro figure11 [--jobs 10 50 100]
    python -m repro figure12 [--mttf H] [--mttr H] [--empirical]
    python -m repro compare  [--seed S]
    python -m repro correlated [--cc-mttf H] [--cc-mttr H]
    python -m repro ablations {ordering,batching,detection,slot,all}
    python -m repro chaos run  [--seed S] [--schedule FILE] [...]
    python -m repro chaos soak [--seed S] [--runs N] [...]
    python -m repro trace [--seed S] [--jobs N] [--jsonl FILE]
    python -m repro postmortem BUNDLE [--limit N]
    python -m repro lint  [--rule RN ...] [--jsonl] [--ignores]
    python -m repro schema {extract,update,diff} [--root DIR] [--jsonl]

Every command prints the same tables the benchmark suite produces; all
runs are deterministic given ``--seed``. The chaos commands exit non-zero
on invariant violations and print the offending seed + schedule JSON so
the exact scenario can be replayed. ``trace`` runs a fully observed
scenario and prints per-job causal timelines plus the Figure-10-style
per-phase latency breakdown; ``--jsonl`` exports the merged span/log/
metric/time-series stream for offline analysis. ``postmortem`` renders a
flight-recorder bundle (the JSONL files a failed ``chaos run`` writes) as
a human-readable merged timeline. ``schema`` manages the committed wire
schema (``WIRE_SCHEMA.lock``): ``extract`` prints the working tree's
schema, ``update`` regenerates the lockfile (the reviewed acceptance step
for any wire change rule R7 flags), and ``diff`` renders the classified
deltas (exit 1 when any is breaking).
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="JOSHUA (CLUSTER 2006) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig10 = sub.add_parser("figure10", help="job submission latency table")
    fig10.add_argument("--trials", type=int, default=10)
    fig10.add_argument("--seed", type=int, default=1)

    fig11 = sub.add_parser("figure11", help="job submission throughput table")
    fig11.add_argument("--jobs", type=int, nargs="+", default=[10, 50, 100])
    fig11.add_argument("--seed", type=int, default=1)

    fig12 = sub.add_parser("figure12", help="availability/downtime table")
    fig12.add_argument("--mttf", type=float, default=5000.0, help="node MTTF (hours)")
    fig12.add_argument("--mttr", type=float, default=72.0, help="node MTTR (hours)")
    fig12.add_argument("--empirical", action="store_true",
                       help="add the Monte-Carlo cross-check (slower)")
    fig12.add_argument("--years", type=float, default=1000.0,
                       help="Monte-Carlo horizon in simulated years")

    compare = sub.add_parser("compare", help="HA model comparison")
    compare.add_argument("--seed", type=int, default=101)

    correlated = sub.add_parser("correlated", help="correlated-failure analysis")
    correlated.add_argument("--mttf", type=float, default=5000.0)
    correlated.add_argument("--mttr", type=float, default=72.0)
    correlated.add_argument("--cc-mttf", type=float, default=50_000.0,
                            help="common-cause MTTF (hours)")
    correlated.add_argument("--cc-mttr", type=float, default=24.0,
                            help="common-cause MTTR (hours)")
    correlated.add_argument("--max-nodes", type=int, default=6)

    ablations = sub.add_parser("ablations", help="design-choice sweeps")
    ablations.add_argument(
        "which",
        choices=["ordering", "batching", "detection", "slot", "all"],
        nargs="?",
        default="all",
    )

    chaos = sub.add_parser("chaos", help="fault injection with live invariants")
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)

    def _common_chaos_args(p):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--heads", type=int, default=3)
        p.add_argument("--computes", type=int, default=2)
        p.add_argument("--jobs", type=int, default=6)
        p.add_argument("--duration", type=float, default=30.0)
        p.add_argument("--intensity", type=int, default=3,
                       help="faults per randomly generated scenario")
        p.add_argument("--read-mix", type=float, default=0.0, metavar="P",
                       help="fraction of client operations that are "
                            "read-your-writes jstat queries through the "
                            "gateway (0 = historical write-only workload)")

    chaos_run = chaos_sub.add_parser("run", help="one scenario (random or from file)")
    _common_chaos_args(chaos_run)
    chaos_run.add_argument("--ordering", choices=["sequencer", "token"],
                           default="sequencer")
    chaos_run.add_argument("--shards", type=int, default=1,
                           help="independent ordering groups over the same "
                                "heads (PROTOCOLS.md §10); workload is "
                                "spread across every shard's queues")
    chaos_run.add_argument("--shard", type=int, default=None,
                           help="restrict the per-shard tables to one shard")
    chaos_run.add_argument("--schedule", metavar="FILE",
                           help="JSON fault schedule (default: random from seed)")
    chaos_run.add_argument("--jsonl", metavar="FILE",
                           help="write structured log records + metrics + "
                                "time-series samples as JSONL")
    chaos_run.add_argument("--postmortem-dir", metavar="DIR", default=".",
                           help="where a failed run writes its flight-"
                                "recorder bundles (default: cwd)")

    chaos_soak = chaos_sub.add_parser("soak", help="many seeded scenarios")
    _common_chaos_args(chaos_soak)
    chaos_soak.add_argument("--runs", type=int, default=20)

    trace = sub.add_parser(
        "trace", help="observed run: per-job timelines + phase breakdown"
    )
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--heads", type=int, default=3)
    trace.add_argument("--computes", type=int, default=2)
    trace.add_argument("--jobs", type=int, default=3)
    trace.add_argument("--ordering", choices=["sequencer", "token"],
                       default="sequencer")
    trace.add_argument("--shards", type=int, default=1,
                       help="independent ordering groups over the same heads; "
                            "submissions round-robin across shard queues")
    trace.add_argument("--shard", type=int, default=None,
                       help="restrict the per-shard tables to one shard")
    trace.add_argument("--jsonl", metavar="FILE",
                       help="write the merged span/log/metric/time-series "
                            "stream as JSONL")
    trace.add_argument("--rpc", action="store_true",
                       help="also print the per-request-type RPC table")

    postmortem = sub.add_parser(
        "postmortem",
        help="render a flight-recorder bundle as a merged timeline",
    )
    postmortem.add_argument("bundle", metavar="BUNDLE",
                            help="bundle file written by a failed chaos run "
                                 "(JSONL, header + merged records)")
    postmortem.add_argument("--limit", type=int, default=None, metavar="N",
                            help="show only the last N records (closest to "
                                 "the trigger; default: all)")

    lint = sub.add_parser(
        "lint", help="determinism & protocol static analysis (rules R1–R7)"
    )
    lint.add_argument(
        "--rule", action="append",
        choices=["R1", "R2", "R3", "R4", "R5", "R6", "R7"],
        metavar="RN", help="run only these rules (repeatable; default: all)",
    )
    lint.add_argument("--jsonl", action="store_true",
                      help="one JSON object per finding instead of text")
    lint.add_argument("--root", metavar="DIR",
                      help="package root to lint (default: the installed repro package)")
    lint.add_argument("--ignores", action="store_true",
                      help="list every active '# repro-lint: ignore[RN]' "
                           "directive (file:line, rules, reason) instead of "
                           "linting")

    schema = sub.add_parser(
        "schema",
        help="wire-schema lockfile: extract / update / diff (rule R7)",
    )
    schema_sub = schema.add_subparsers(dest="schema_command", required=True)
    schema_extract = schema_sub.add_parser(
        "extract", help="print the schema extracted from the working tree")
    schema_update = schema_sub.add_parser(
        "update", help="regenerate WIRE_SCHEMA.lock from the working tree "
                       "(the reviewed acceptance step for R7 findings)")
    schema_diff = schema_sub.add_parser(
        "diff", help="classified deltas vs the lockfile (exit 1 on breaking)")
    schema_diff.add_argument("--jsonl", action="store_true",
                             help="one JSON object per delta instead of text")
    for sub_cmd in (schema_extract, schema_update, schema_diff):
        sub_cmd.add_argument(
            "--root", metavar="DIR",
            help="package root (default: the installed repro package)")
    return parser


def _cmd_figure10(args) -> str:
    from repro.bench.experiments.latency import figure10
    from repro.bench.reporting import bar_chart
    rows = figure10(trials=args.trials, seed=args.seed)
    for row in rows:
        row["config"] = f"{row['system']} x{row['heads']}"
    table = format_table(
        rows,
        ["system", "heads", "measured_ms", "paper_ms",
         "measured_overhead_pct", "paper_overhead_pct"],
        title="Figure 10 — job submission latency (ms)",
    )
    chart = bar_chart(
        rows, label="config", series=["measured_ms", "paper_ms"],
        title="shape (shared scale):",
    )
    return f"{table}\n\n{chart}"


def _cmd_figure11(args) -> str:
    from repro.bench.experiments.throughput import figure11
    rows = figure11(job_counts=tuple(args.jobs), seed=args.seed)
    return format_table(rows, title="Figure 11 — submission throughput (s)")


def _cmd_figure12(args) -> str:
    from repro.bench.experiments.availability import figure12, figure12_empirical
    out = [format_table(
        figure12(mttf_hours=args.mttf, mttr_hours=args.mttr),
        title=f"Figure 12 — MTTF={args.mttf} h, MTTR={args.mttr} h",
    )]
    if args.empirical:
        out.append(format_table(
            figure12_empirical(
                max_nodes=3, mttf_hours=args.mttf, mttr_hours=args.mttr,
                horizon_years=args.years,
            ),
            title=f"Monte-Carlo cross-check ({args.years:.0f} simulated years)",
        ))
    return "\n\n".join(out)


def _cmd_compare(args) -> str:
    from repro.bench.experiments.models import compare_models
    rows = compare_models(seed=args.seed)
    return format_table(rows, title="HA model comparison (identical workload + fault)")


def _cmd_correlated(args) -> str:
    from repro.ha.correlated import correlated_table, diminishing_returns
    rows = correlated_table(
        args.max_nodes,
        mttf_hours=args.mttf, mttr_hours=args.mttr,
        cc_mttf_hours=args.cc_mttf, cc_mttr_hours=args.cc_mttr,
    )
    table = format_table(
        rows, title="Correlated failures — independent vs common-cause-capped"
    )
    point = diminishing_returns(
        mttf_hours=args.mttf, mttr_hours=args.mttr,
        cc_mttf_hours=args.cc_mttf, cc_mttr_hours=args.cc_mttr,
    )
    return (f"{table}\n\nDiminishing returns after {point} head node(s): "
            "past that, spend on a second failure domain, not more heads.")


def _cmd_ablations(args) -> str:
    from repro.bench.experiments import ablations as ab
    sections = []
    if args.which in ("ordering", "all"):
        sections.append(format_table(
            ab.ordering_engine_latency(trials=10),
            title="Ablation — sequencer vs token ordering (ms)",
        ))
    if args.which in ("batching", "all"):
        sections.append(format_table(
            ab.sequencer_batching(), title="Ablation — ORDER batching delay"
        ))
    if args.which in ("detection", "all"):
        sections.append(format_table(
            ab.failure_detection_sweep(),
            title="Ablation — suspect timeout vs view change",
        ))
    if args.which in ("slot", "all"):
        sections.append(format_table(
            ab.stable_slot_sweep(), title="Ablation — stability-ack slot vs jsub"
        ))
    return "\n\n".join(sections)


def _cmd_chaos(args):
    import json

    from repro.faults import FaultSchedule, run_chaos, soak
    from repro.util.errors import ClusterError

    try:
        if args.chaos_command == "run":
            schedule = None
            if args.schedule:
                try:
                    with open(args.schedule) as f:
                        schedule = FaultSchedule.from_json(f.read())
                except (OSError, json.JSONDecodeError) as exc:
                    return f"error: cannot load schedule {args.schedule}: {exc}", 2
            report = run_chaos(
                schedule,
                seed=args.seed, heads=args.heads, computes=args.computes,
                jobs=args.jobs, duration=args.duration, ordering=args.ordering,
                intensity=args.intensity, shards=args.shards,
                read_mix=args.read_mix,
            )
            reports = [report]
            if args.jsonl:
                from repro.obs.export import metric_records, write_jsonl
                records = list(report.log_records)
                records.extend(metric_records(report.registry))
                records.extend(report.timeseries)
                write_jsonl(args.jsonl, records)
        else:
            reports = soak(
                args.seed, args.runs,
                heads=args.heads, computes=args.computes, jobs=args.jobs,
                duration=args.duration, intensity=args.intensity,
                read_mix=args.read_mix,
            )
    except ClusterError as exc:
        # Bad schedule contents or bad knob values (e.g. --intensity 0):
        # a usage error, not a crash.
        return f"error: {exc}", 2

    from repro.obs.report import (
        rpc_latency_lines,
        shard_breakdown_lines,
        wire_bytes_lines,
    )

    lines = [r.summary() for r in reports]
    failed = [r for r in reports if not r.ok]
    if args.chaos_command == "run":
        report = reports[0]
        lines.append("")
        lines.append("rpc conversations (per request type):")
        lines.extend(rpc_latency_lines(report.registry))
        if report.shards > 1 or args.shard is not None:
            lines.append("")
            lines.append("per-shard ordering pipeline:")
            lines.extend(shard_breakdown_lines(report.registry, args.shard))
        lines.append("")
        lines.append("wire bytes by message type:")
        lines.extend(wire_bytes_tables(report))
        if report.timeseries:
            lines.append("")
            lines.append("busiest time series (per 1s window):")
            lines.extend(timeseries_top_lines(report.timeseries,
                                              shard=args.shard))
    for r in failed:
        lines.append("")
        lines.append(f"FAILED seed={r.seed} ordering={r.ordering} — replay with:")
        lines.append(f"  repro chaos run --seed {r.seed} --ordering {r.ordering}")
        lines.extend(f"  {v}" for v in r.violations)
        if r.rpc_timeouts:
            # Which destinations went dark, and on which request types:
            # usually the fastest pointer from a violation to its fault.
            lines.append(f"  rpc timeouts ({len(r.rpc_timeouts)}, most recent last):")
            lines.extend(f"    {t.describe()}" for t in r.rpc_timeouts[-10:])
        if r.postmortems:
            bundle_dir = getattr(args, "postmortem_dir", ".")
            lines.append("  flight-recorder bundles (render with "
                         "`repro postmortem FILE`):")
            lines.extend(
                f"    {path}"
                for path in _write_postmortems(r, bundle_dir)
            )
        lines.append("  schedule:")
        lines.extend("  " + line for line in r.schedule.to_json().splitlines())
    if not failed:
        lines.append(f"{len(reports)} run(s), zero invariant violations")
    return "\n".join(lines), (1 if failed else 0)


def _write_postmortems(report, directory) -> list[str]:
    """Write a failed chaos run's flight-recorder bundles as JSONL files
    (``postmortem-<seed>-<n>.jsonl``); returns the paths written."""
    import os

    from repro.obs.recorder import write_bundle

    os.makedirs(directory, exist_ok=True)
    paths = []
    for i, bundle in enumerate(report.postmortems):
        path = os.path.join(directory, f"postmortem-{report.seed}-{i}.jsonl")
        write_bundle(bundle, path)
        paths.append(path)
    return paths


def wire_bytes_tables(report) -> list[str]:
    """The wire/offered byte table from a :class:`ChaosReport`'s captured
    ledgers (same shape as :func:`repro.obs.report.wire_bytes_lines`, which
    reads a live network)."""
    from repro.obs.report import wire_bytes_lines

    class _Ledgers:
        wire_bytes_by_type = report.wire_bytes_by_type
        offered_bytes_by_type = report.offered_bytes_by_type

    return wire_bytes_lines(_Ledgers)


def timeseries_top_lines(samples, *, shard=None, limit: int = 12) -> list[str]:
    """Render a ``repro top`` table from already-captured time-series
    records (a :class:`ChaosReport` carries the samples, not the sampler)."""
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timeseries import TimeSeriesSampler

    sampler = TimeSeriesSampler(MetricsRegistry())
    sampler.samples = list(samples)
    return sampler.top_lines(limit=limit, shard=shard)


def _cmd_trace(args):
    from repro.joshua.trace import run_traced_scenario
    from repro.obs.export import collector_records, write_jsonl
    from repro.obs.report import (
        job_timeline_lines,
        phase_breakdown_lines,
        rpc_latency_lines,
        shard_breakdown_lines,
        wire_bytes_lines,
    )
    from repro.obs.timeseries import timeseries_of

    run = run_traced_scenario(
        seed=args.seed, heads=args.heads, computes=args.computes,
        jobs=args.jobs, ordering=args.ordering, shards=args.shards,
    )
    lines = [
        f"traced run: seed={run.seed} heads={run.heads} "
        f"computes={run.computes} ordering={run.ordering} "
        f"shards={run.shards} jobs={len(run.submitted)}",
    ]
    for trace in run.collector.job_traces():
        lines.append("")
        lines.extend(job_timeline_lines(trace))
    lines.append("")
    lines.append("per-phase latency breakdown (Figure 10 decomposition):")
    lines.extend(phase_breakdown_lines(run.registry))
    if args.rpc:
        lines.append("")
        lines.append("rpc conversations (per request type):")
        lines.extend(rpc_latency_lines(run.registry))
    if run.shards > 1 or args.shard is not None:
        lines.append("")
        lines.append("per-shard ordering pipeline:")
        lines.extend(shard_breakdown_lines(run.registry, args.shard))
    lines.append("")
    lines.append("wire bytes by message type:")
    lines.extend(wire_bytes_lines(run.network))
    sampler = timeseries_of(run.network)
    if sampler is not None:
        lines.append("")
        lines.append("busiest time series (per 1s window):")
        lines.extend(sampler.top_lines(shard=args.shard))
    if args.jsonl:
        records = collector_records(run.collector, run.cluster.kernel.log)
        if sampler is not None:
            records.extend(sampler.records())
        count = write_jsonl(args.jsonl, records)
        lines.append("")
        lines.append(f"wrote {count} records to {args.jsonl}")
    return "\n".join(lines)


def _cmd_postmortem(args):
    from repro.obs.recorder import read_bundle, timeline_lines

    try:
        bundle = read_bundle(args.bundle)
    except (OSError, ValueError) as exc:
        return f"error: {exc}", 2
    return "\n".join(timeline_lines(bundle, limit=args.limit))


def _cmd_lint(args):
    from repro.analysis import list_ignores, run_lint

    if args.ignores:
        rows = [
            (
                f"{path}:{directive.line}",
                ", ".join(directive.rules),
                directive.reason,
            )
            for path, directive in list_ignores(root=args.root)
        ]
        lines = [
            f"{location:<32} [{rules}] {reason}"
            for location, rules, reason in rows
        ]
        lines.append(f"{len(rows)} active ignore directive(s)")
        return "\n".join(lines), 0
    findings = run_lint(root=args.root, rules=args.rule)
    if args.jsonl:
        lines = [f.to_json() for f in findings]
    else:
        lines = [f.render() for f in findings]
        which = ", ".join(args.rule) if args.rule else "R1–R7"
        lines.append(
            f"{len(findings)} finding(s) ({which})"
            + ("" if findings else " — determinism/protocol contract holds")
        )
    return "\n".join(lines), (1 if findings else 0)


def _cmd_schema(args):
    import json

    from repro.analysis import schema as schema_mod

    current, _ = schema_mod.extract_from_root(args.root)
    lock_path = schema_mod.lockfile_path(args.root)
    counts = (
        f"{len(current['records'])} records, {len(current['enums'])} enums"
    )
    if args.schema_command == "extract":
        return json.dumps(current, indent=1, sort_keys=True), 0
    if args.schema_command == "update":
        schema_mod.write_lockfile(current, lock_path)
        return f"wrote {lock_path} ({counts})", 0
    locked = schema_mod.load_lockfile(lock_path)
    if locked is None:
        return (
            f"no lockfile at {lock_path} — run `repro schema update` "
            "and commit it",
            1,
        )
    deltas = schema_mod.diff_schemas(locked, current)
    if not deltas:
        return f"lockfile matches the working tree ({counts})", 0
    text = schema_mod.render_deltas(deltas, jsonl=args.jsonl)
    breaking = sum(1 for d in deltas if d.severity == schema_mod.BREAKING)
    if not args.jsonl:
        text += (
            f"\n{len(deltas)} delta(s), {breaking} breaking — review and "
            "run `repro schema update` to accept"
        )
    return text, (1 if breaking else 0)


_COMMANDS = {
    "figure10": _cmd_figure10,
    "figure11": _cmd_figure11,
    "figure12": _cmd_figure12,
    "compare": _cmd_compare,
    "correlated": _cmd_correlated,
    "ablations": _cmd_ablations,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "postmortem": _cmd_postmortem,
    "lint": _cmd_lint,
    "schema": _cmd_schema,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    result = _COMMANDS[args.command](args)
    text, code = result if isinstance(result, tuple) else (result, 0)
    print(text)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
