"""Link timing and loss models.

The paper's testbed used a single Fast Ethernet (100 Mbit/s full duplex) hub
between dual-P3-450 nodes. :class:`LinkModel` captures the pieces of that
which matter to the experiments:

* **propagation + protocol stack latency** — a fixed per-message base;
* **serialisation** — message size over bandwidth;
* **jitter** — uniform random extra delay (OS scheduling noise);
* **loss** — i.i.d. drop probability, for stressing the reliable transport
  and the GCS retransmission machinery (0 by default: the paper's LAN was
  reliable; its failures were whole cables, modelled as partitions).

Same-node ("loopback") messages skip the wire and use a much smaller base
latency: the paper explicitly attributes the single-head JOSHUA overhead
(36 ms) to *on-node* communication between jsub, Transis and joshua, and the
1→2 head jump to *off-node* communication — so the distinction is load-bearing
for reproducing Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinkModel", "FAST_ETHERNET", "LOOPBACK"]


@dataclass(frozen=True)
class LinkModel:
    """Timing/loss parameters for one class of link.

    Parameters
    ----------
    base_latency:
        Fixed one-way latency in seconds (propagation + kernel/IP stack).
    bandwidth:
        Bytes per second available to a single message's serialisation.
    jitter:
        Upper bound of uniform extra delay in seconds.
    loss:
        Probability an individual message is silently dropped.
    """

    base_latency: float = 0.0002
    bandwidth: float = 100e6 / 8
    jitter: float = 0.0
    loss: float = 0.0

    def __post_init__(self):
        if self.base_latency < 0 or self.jitter < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("loss must be a probability < 1")

    def delay(self, size: int, rng: np.random.Generator) -> float:
        """One-way delay for a *size*-byte message."""
        delay = self.base_latency + size / self.bandwidth
        if self.jitter > 0:
            delay += float(rng.uniform(0.0, self.jitter))
        return delay

    def dropped(self, rng: np.random.Generator) -> bool:
        """Whether this transmission is lost."""
        return self.loss > 0 and float(rng.random()) < self.loss

    def with_loss(self, loss: float) -> "LinkModel":
        """Copy of this model with a different loss probability."""
        return LinkModel(self.base_latency, self.bandwidth, self.jitter, loss)

    def with_jitter(self, jitter: float) -> "LinkModel":
        """Copy of this model with a different jitter bound."""
        return LinkModel(self.base_latency, self.bandwidth, jitter, self.loss)


#: The testbed LAN: Fast Ethernet through a hub, circa-2006 kernel stacks.
#: ~200 us one-way latency is representative of 100 Mbit NICs of the era.
FAST_ETHERNET = LinkModel(base_latency=0.0002, bandwidth=100e6 / 8, jitter=0.00005)

#: Same-node communication via the loopback interface / Unix sockets.
LOOPBACK = LinkModel(base_latency=0.00002, bandwidth=1e9, jitter=0.0)
