"""Partition and link-cut bookkeeping.

The paper injected network failures by unplugging cables. Two fault shapes
cover that:

* **link cut** — the pair ``(a, b)`` cannot exchange messages (one cable
  between two specific nodes);
* **partition** — the node set is split into groups; only same-group pairs
  communicate (a whole hub port unplugged, or a hub split).

Both compose: a pair is reachable iff no cut applies *and* the partition map
(if any) places both ends in the same group.
"""

from __future__ import annotations

from repro.util.errors import NetworkError

__all__ = ["PartitionState"]


class PartitionState:
    """Tracks which node pairs can currently communicate."""

    def __init__(self):
        self._cut_links: set[frozenset[str]] = set()
        self._group_of: dict[str, int] = {}
        self._partitioned = False

    # -- link cuts ---------------------------------------------------------

    def cut_link(self, a: str, b: str) -> None:
        """Unplug the (bidirectional) cable between *a* and *b*."""
        if a == b:
            raise NetworkError("cannot cut a node's loopback link")
        self._cut_links.add(frozenset((a, b)))

    def restore_link(self, a: str, b: str) -> None:
        """Re-plug a previously cut cable (no-op if not cut)."""
        self._cut_links.discard(frozenset((a, b)))

    @property
    def cut_links(self) -> list[tuple[str, str]]:
        return sorted(tuple(sorted(pair)) for pair in self._cut_links)

    # -- partitions ----------------------------------------------------------

    def set_partitions(self, groups: list[list[str]]) -> None:
        """Split the network into *groups*; unlisted nodes are unreachable
        from every listed group (their own implicit singleton)."""
        seen: set[str] = set()
        for group in groups:
            for node in group:
                if node in seen:
                    raise NetworkError(f"node {node!r} appears in two partition groups")
                seen.add(node)
        self._group_of = {
            node: index for index, group in enumerate(groups) for node in group
        }
        self._partitioned = True

    def heal_partitions(self) -> None:
        """Remove the partition map (cut links remain cut)."""
        self._group_of = {}
        self._partitioned = False

    @property
    def partitioned(self) -> bool:
        return self._partitioned

    # -- queries -------------------------------------------------------------

    def reachable(self, a: str, b: str) -> bool:
        """True if a message can travel from *a* to *b* right now."""
        if a == b:
            return True
        if frozenset((a, b)) in self._cut_links:
            return False
        if self._partitioned:
            ga = self._group_of.get(a)
            gb = self._group_of.get(b)
            if ga is None or gb is None or ga != gb:
                return False
        return True
