"""Reliable FIFO point-to-point channels over the lossy datagram fabric.

:class:`Transport` gives a daemon TCP-like channel semantics per peer:

* every payload is delivered **at most once** (duplicate suppression),
* payloads from one sender arrive **in send order** (per-peer FIFO),
* lost datagrams are **retransmitted** until cumulatively acknowledged,
* a peer that crashes and restarts begins a fresh *epoch*, so stale
  sequence numbers from its previous life are not mistaken for new traffic.

The group communication system builds its multicast on these channels: total
order and view synchrony are GCS concerns, but per-link reliability lives
here, mirroring how Transis rode on UDP with its own recovery layer.

Wire frames are the typed records of :mod:`repro.net.frames`
(:class:`~repro.net.frames.DataFrame`, :class:`~repro.net.frames.AckFrame`,
:class:`~repro.net.frames.RawFrame`), encoded byte-exactly by the codec.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.net.address import Address, Delivery
from repro.net.frames import AckFrame, DataFrame, RawFrame
from repro.net.network import Endpoint
from repro.util.errors import NetworkError

__all__ = ["Transport", "ReliableChannel"]

def _next_epoch(network) -> int:
    """Allocate a channel epoch unique within *network*'s simulation.

    Per-network (not module-level) so that two simulations in one
    interpreter draw identical epoch numbers — epochs ride in every frame
    and frame bytes feed the bandwidth model.
    """
    counter = getattr(network, "_transport_epochs", None)
    if counter is None:
        counter = network._transport_epochs = itertools.count(1)
    return next(counter)


class ReliableChannel:
    """Sender-side state for one destination (one direction)."""

    def __init__(self, dst: Address, epoch: int):
        self.dst = dst
        self.epoch = epoch
        self.next_seq = 0
        #: seq -> payload, unacknowledged and subject to retransmission.
        self.unacked: dict[int, Any] = {}
        self.acked_through = -1

    def outstanding(self) -> int:
        return len(self.unacked)


class _PeerReceiveState:
    """Receiver-side reordering state for one (peer, epoch)."""

    def __init__(self, epoch: int):
        self.epoch = epoch
        self.next_expected = 0
        self.out_of_order: dict[int, Any] = {}


class Transport:
    """Reliable FIFO messaging bound to one :class:`Endpoint`.

    Parameters
    ----------
    endpoint:
        The bound endpoint to send/receive through.
    retransmit_interval:
        Seconds between retransmission sweeps of unacked frames.
    on_message:
        ``callback(src: Address, payload)`` invoked for each in-order,
        deduplicated application payload.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        *,
        retransmit_interval: float = 0.05,
        on_message: Callable[[Address, Any], None] | None = None,
    ):
        self.endpoint = endpoint
        self.kernel = endpoint.network.kernel
        self.retransmit_interval = retransmit_interval
        self.epoch = _next_epoch(endpoint.network)
        self._channels: dict[Address, ReliableChannel] = {}
        #: dst -> epoch to use when a channel dropped by forget_peer is
        #: recreated (see forget_peer).
        self._reopen_epochs: dict[Address, int] = {}
        self._recv_states: dict[Address, _PeerReceiveState] = {}
        self._on_message = on_message
        self._on_raw: Callable[[Address, Any], None] | None = None
        self._closed = False
        endpoint.on_delivery(self._on_delivery)
        self._retransmitter = self.kernel.spawn(
            self._retransmit_loop(), name=f"transport-rtx@{endpoint.address}"
        )
        self.stats = {"sent": 0, "retransmitted": 0, "delivered": 0, "duplicates": 0}

    # -- public API ------------------------------------------------------------

    @property
    def address(self) -> Address:
        return self.endpoint.address

    def on_message(self, callback: Callable[[Address, Any], None] | None) -> None:
        self._on_message = callback

    def on_raw(self, callback: Callable[[Address, Any], None] | None) -> None:
        """Handler for frames that bypass the reliable layer (heartbeats)."""
        self._on_raw = callback

    def send_raw(self, dst: Address, payload: Any) -> None:
        """Fire-and-forget datagram: no sequencing, no retransmission.

        Used for traffic where timeliness beats reliability — a retransmitted
        stale heartbeat would defeat the failure detector's purpose.
        """
        if self._closed:
            raise NetworkError(f"transport at {self.address} is closed")
        self.endpoint.send(dst, RawFrame(payload))

    def send(self, dst: Address, payload: Any) -> None:
        """Queue *payload* for reliable in-order delivery to *dst*."""
        if self._closed:
            raise NetworkError(f"transport at {self.address} is closed")
        channel = self._channels.get(dst)
        if channel is None:
            epoch = self._reopen_epochs.pop(dst, self.epoch)
            channel = self._channels[dst] = ReliableChannel(dst, epoch)
        seq = channel.next_seq
        channel.next_seq += 1
        channel.unacked[seq] = payload
        self.stats["sent"] += 1
        self.endpoint.send(dst, DataFrame(channel.epoch, seq, payload))

    def outstanding_to(self, dst: Address) -> int:
        """Frames sent to *dst* not yet acknowledged."""
        channel = self._channels.get(dst)
        return channel.outstanding() if channel else 0

    def forget_peer(self, dst: Address) -> None:
        """Drop sender state for *dst* (it was declared failed); pending
        frames to it are abandoned rather than retransmitted forever.

        If the peer turns out to be alive after all (false suspicion, healed
        partition), later sends must open a *fresh epoch*: re-using the old
        one would restart the sequence numbers at 0 below the peer's
        ``next_expected``, and every frame on the reopened channel — join
        requests included — would be discarded as a duplicate forever."""
        if self._channels.pop(dst, None) is not None:
            self._reopen_epochs[dst] = _next_epoch(self.endpoint.network)

    def close(self) -> None:
        """Stop retransmitting and detach from the endpoint."""
        if self._closed:
            return
        self._closed = True
        self._retransmitter.interrupt("transport closed")
        if not self.endpoint.closed:
            self.endpoint.on_delivery(None)

    # -- wire handling ---------------------------------------------------------

    def _on_delivery(self, delivery: Delivery) -> None:
        frame = delivery.payload
        if isinstance(frame, DataFrame):
            self._handle_data(delivery.src, frame)
        elif isinstance(frame, AckFrame):
            self._handle_ack(delivery.src, frame)
        elif isinstance(frame, RawFrame):
            if self._on_raw is not None:
                self._on_raw(delivery.src, frame.payload)
        # anything else is not ours; ignore garbage

    def _handle_data(self, src: Address, frame: DataFrame) -> None:
        epoch, seq, payload = frame.epoch, frame.seq, frame.payload
        state = self._recv_states.get(src)
        if state is None or state.epoch != epoch:
            if state is not None and epoch < state.epoch:
                return  # stale traffic from the peer's previous life
            state = self._recv_states[src] = _PeerReceiveState(epoch)
        if seq < state.next_expected or seq in state.out_of_order:
            self.stats["duplicates"] += 1
        else:
            state.out_of_order[seq] = payload
            while state.next_expected in state.out_of_order:
                ready = state.out_of_order.pop(state.next_expected)
                state.next_expected += 1
                self.stats["delivered"] += 1
                if self._on_message is not None:
                    self._on_message(src, ready)
        # Cumulative ack for everything contiguously received.
        if not self.endpoint.closed:
            self.endpoint.send(src, AckFrame(epoch, state.next_expected - 1))

    def _handle_ack(self, src: Address, frame: AckFrame) -> None:
        epoch, cum_seq = frame.epoch, frame.cum_seq
        channel = self._channels.get(src)
        if channel is None or channel.epoch != epoch:
            return
        channel.acked_through = max(channel.acked_through, cum_seq)
        for seq in [s for s in channel.unacked if s <= cum_seq]:
            del channel.unacked[seq]

    def _retransmit_loop(self):
        while True:
            yield self.kernel.timeout(self.retransmit_interval)
            if self._closed or self.endpoint.closed:
                return
            if not self.endpoint.network.node_is_up(self.address.node):
                # Down or blacked out, but not torn down (a crash closes the
                # endpoint and is caught above): stay dormant and resume
                # retransmitting when the node's network comes back.
                continue
            for _dst, channel in sorted(self._channels.items()):
                for seq in sorted(channel.unacked):
                    self.stats["retransmitted"] += 1
                    self.endpoint.send(
                        channel.dst,
                        DataFrame(channel.epoch, seq, channel.unacked[seq]),
                    )
