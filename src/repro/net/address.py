"""Network addresses and delivered-message records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple

from repro.net.codec import register_wire_types

__all__ = ["Address", "Delivery"]


class Address(NamedTuple):
    """A network endpoint: a named node plus a port number.

    Comparable and hashable, so addresses can key routing tables and be
    totally ordered (used by the GCS to pick coordinators/sequencers
    deterministically).
    """

    node: str
    port: int

    def __str__(self) -> str:
        return f"{self.node}:{self.port}"


@dataclass(frozen=True)
class Delivery:
    """A message as handed to the receiving endpoint's mailbox."""

    src: Address
    dst: Address
    payload: Any
    #: Simulated send timestamp (seconds).
    sent_at: float
    #: Simulated delivery timestamp (seconds).
    delivered_at: float
    #: Exact encoded wire size in bytes, datagram header included (this is
    #: the size the bandwidth/contention model charged for).
    size: int = field(default=0)

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


# Addresses ride inside many wire records (membership lists, job routing);
# Delivery itself is the local mailbox wrapper and never crosses the wire.
register_wire_types(Address)
