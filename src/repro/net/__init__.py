"""Simulated network substrate.

Models the paper's testbed LAN — a single Fast Ethernet (100 Mbit/s) segment
connecting head nodes and compute nodes — plus the fault injection the paper
performed by unplugging network cables.

Layers
------
:mod:`repro.net.address`
    ``Address = (node, port)`` endpoints and delivered-message records.
:mod:`repro.net.link`
    Latency/bandwidth/jitter/loss models for a message on the wire.
:mod:`repro.net.network`
    The :class:`Network` fabric: endpoint registry, datagram delivery with
    node-down/partition/loss semantics, optional shared-medium contention.
:mod:`repro.net.partition`
    Named partition/link-cut bookkeeping used by :class:`Network`.
:mod:`repro.net.transport`
    :class:`ReliableChannel` — per-peer FIFO channels with sequence numbers,
    positive acks, retransmission and duplicate suppression, built on the
    lossy datagram layer. The group communication system uses these for its
    point-to-point traffic.

Semantics
---------
* Messages to a crashed node, an unbound port, or across a partition are
  silently dropped (fail-stop network, like the paper's unplugged cables).
* All randomness (jitter, loss) draws from dedicated
  :class:`~repro.util.rng.RandomStreams` streams, so network noise never
  perturbs failure schedules or workloads.
"""

from repro.net.address import Address, Delivery
from repro.net.link import LinkModel
from repro.net.network import Endpoint, Network
from repro.net.partition import PartitionState
from repro.net.transport import ReliableChannel, Transport

__all__ = [
    "Address",
    "Delivery",
    "LinkModel",
    "Endpoint",
    "Network",
    "PartitionState",
    "ReliableChannel",
    "Transport",
]
