"""The network fabric: endpoints, datagram delivery, fault semantics.

:class:`Network` is the single shared LAN of the simulated cluster. Daemons
:meth:`~Network.bind` an :class:`Endpoint` (a ``(node, port)`` address plus a
mailbox) and exchange *datagrams*: unreliable, unordered-between-pairs
point-to-point messages. Reliability and FIFO ordering are layered on top by
:mod:`repro.net.transport`, mirroring how real stacks separate IP from TCP.

Fault semantics (all fail-stop, like the paper's):

* destination node down → message silently dropped;
* destination port unbound → dropped (connection refused is invisible to a
  datagram sender);
* sender's node down → :class:`~repro.util.errors.NodeDown` is raised — a
  crashed daemon must not transmit;
* pair unreachable per :class:`~repro.net.partition.PartitionState` → dropped;
* random loss per the link model → dropped.

Beyond fail-stop, the fault-injection layer (:mod:`repro.faults`) drives
three extra knobs:

* **pause/resume** (:meth:`Network.pause_node`): the node's NIC goes dark —
  ``node_is_up`` reports ``False`` and traffic to/from it is dropped — but
  its endpoints stay bound and its processes keep running, modelling a
  wedged NIC or a switch port blackout rather than a crash;
* **per-node slowdown** (:meth:`Network.set_node_slowdown`): extra one-way
  latency added to every message touching the node (an overloaded host);
* **drop filters** (:meth:`Network.add_drop_filter`): predicates that force-
  drop matching datagrams, for targeted loss such as ordering-token frames.

Contention: with ``shared_medium=True`` (the default, matching the paper's
hub) all *off-node* transmissions serialise through a single token process —
each occupies the wire for its serialisation time before propagating. With a
switched model, messages only experience their own delay.

Serialization boundary: every payload is encoded to bytes by the
:data:`~repro.net.codec.WIRE` codec at send time — the encoded length (plus
a fixed datagram header) is what the link and contention models charge — and
decoded to a *fresh* object at delivery time, so no Python object identity
ever crosses a node boundary. With ``Kernel(sanitize=True)`` the determinism
sanitizer additionally audits each delivery for aliasing between the sent
and the delivered object graphs.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.net.address import Address, Delivery
from repro.net.codec import WIRE, Codec
from repro.net.link import FAST_ETHERNET, LOOPBACK, LinkModel
from repro.net.partition import PartitionState
from repro.sim.kernel import Kernel
from repro.sim.resources import Store
from repro.util.errors import AddressInUse, NetworkError, NodeDown

__all__ = ["Endpoint", "Network", "DATAGRAM_OVERHEAD"]

#: Fixed per-datagram header charge (IP + UDP), added to every encoded frame.
DATAGRAM_OVERHEAD = 28


def _payload_kind(payload: Any) -> str:
    """Ledger key for the per-message-type byte accounting.

    Envelope frames (DataFrame, RawFrame, rpc Request/Reply) are unwrapped
    one level so the ledger reports the protocol message that caused the
    traffic, not the envelope."""
    inner = getattr(payload, "payload", None)
    if inner is not None:
        return type(inner).__name__
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        return payload[0]
    return type(payload).__name__


class Endpoint:
    """A bound ``(node, port)`` with a mailbox of :class:`Delivery` records.

    Obtained from :meth:`Network.bind`. Receiving daemons either block on
    :meth:`recv` or register an :meth:`on_delivery` callback (used by
    daemons that multiplex many conversations).
    """

    def __init__(self, network: "Network", address: Address):
        self.network = network
        self.address = address
        self.mailbox: Store = Store(network.kernel)
        self._callback: Callable[[Delivery], None] | None = None
        self.closed = False

    def send(self, dst: Address, payload: Any):
        """Transmit a datagram; returns immediately (fire and forget)."""
        self.network.send(self.address, dst, payload)

    def recv(self):
        """Event that succeeds with the next :class:`Delivery`."""
        return self.mailbox.get()

    def on_delivery(self, callback: Callable[[Delivery], None] | None) -> None:
        """Route future deliveries to *callback* instead of the mailbox."""
        self._callback = callback

    def close(self) -> None:
        """Unbind; subsequent messages to this address are dropped."""
        if not self.closed:
            self.network._unbind(self)
            self.closed = True
            self.mailbox.cancel_all(NetworkError(f"endpoint {self.address} closed"))

    def _deliver(self, delivery: Delivery) -> None:
        if self._callback is not None:
            self._callback(delivery)
        else:
            self.mailbox.put_nowait(delivery)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<Endpoint {self.address} {state}>"


class Network:
    """The cluster's shared LAN.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    lan:
        Link model for off-node messages (default: the paper's Fast
        Ethernet).
    loopback:
        Link model for same-node messages.
    shared_medium:
        Serialise off-node transmissions through a single shared wire (hub
        behaviour). Switched behaviour (no cross-message contention) when
        false.
    """

    def __init__(
        self,
        kernel: Kernel,
        *,
        lan: LinkModel = FAST_ETHERNET,
        loopback: LinkModel = LOOPBACK,
        shared_medium: bool = True,
    ):
        self.kernel = kernel
        self.lan = lan
        self.loopback = loopback
        self.shared_medium = shared_medium
        self.partitions = PartitionState()
        self._nodes_up: dict[str, bool] = {}
        self._paused: set[str] = set()
        self._slowdown: dict[str, float] = {}
        self._drop_filters: dict[int, Callable[[Address, Address, Any], bool]] = {}
        self._drop_filter_ids = 0
        self._pair_seq: dict[tuple[Address, Address], int] = {}
        self._endpoints: dict[Address, Endpoint] = {}
        #: Per-node codec overrides (rolling-upgrade harness): a node bound
        #: here encodes its sends and decodes its deliveries with its *own*
        #: codec — typically ``WIRE.clone(overrides=...)`` carrying an
        #: evolved wire record. Unbound nodes use the shared ``WIRE``.
        self._node_codecs: dict[str, Codec] = {}
        self._rng = kernel.streams.get("net")
        #: Simulated time at which the shared wire next becomes free.
        self._wire_free_at = 0.0
        # Delivery statistics (observability for tests and benches). Byte
        # counters are measured, not estimated: encoded frame + header.
        #   bytes_offered   — every frame a live sender handed to the fabric;
        #   bytes_wire      — off-node frames that actually occupied the wire
        #                     (survived down/partition/filter/loss) — this is
        #                     exactly what the contention model charged for;
        #   bytes_delivered — frames that reached a bound endpoint.
        self.stats = {"sent": 0, "delivered": 0, "dropped_down": 0,
                      "dropped_unreachable": 0, "dropped_loss": 0,
                      "dropped_unbound": 0, "dropped_paused": 0,
                      "dropped_filtered": 0, "bytes_offered": 0,
                      "bytes_wire": 0, "bytes_delivered": 0}
        #: Off-node bytes-on-wire per protocol message type (envelopes
        #: unwrapped one level) — the Figure 11 bandwidth breakdown.
        self.wire_bytes_by_type: dict[str, int] = {}
        #: Every offered frame per protocol message type, counted at the
        #: same site as ``bytes_offered`` — i.e. *before* the down/partition/
        #: filter/loss drop decisions, so drop-filtered traffic (which
        #: ``bytes_offered`` includes but ``wire_bytes_by_type`` never sees)
        #: still shows up in a per-type breakdown.
        self.offered_bytes_by_type: dict[str, int] = {}
        #: Hooks ``fn(now, src, dst, kind, size)`` fired for every offered
        #: frame, at the same site as the ``bytes_offered`` accounting.
        #: Observation only — the flight recorder in ``repro.obs`` registers
        #: here; empty by default, costing one truthiness check per send.
        self.on_frame: list = []

    # -- node lifecycle ------------------------------------------------------

    def register_node(self, name: str) -> None:
        """Make *name* known to the fabric (initially up)."""
        if name in self._nodes_up:
            raise NetworkError(f"node {name!r} already registered")
        self._nodes_up[name] = True

    def node_is_up(self, name: str) -> bool:
        if name not in self._nodes_up:
            raise NetworkError(f"unknown node {name!r}")
        return self._nodes_up[name] and name not in self._paused

    def set_node_up(self, name: str, up: bool) -> None:
        if name not in self._nodes_up:
            raise NetworkError(f"unknown node {name!r}")
        self._nodes_up[name] = up
        # A crash or repair supersedes any network blackout in progress.
        self._paused.discard(name)
        if not up:
            # A crashed node's endpoints vanish with it.
            for address in [a for a in self._endpoints if a.node == name]:
                self._endpoints[address].close()

    def set_node_codec(self, name: str, codec: Codec | None) -> None:
        """Bind *name* to its own codec (``None`` reverts to the shared
        ``WIRE``) — the mixed-version harness: a node running an evolved
        wire module encodes with the evolved shape and decodes peers'
        frames through its own tolerance/strictness setting."""
        if name not in self._nodes_up:
            raise NetworkError(f"unknown node {name!r}")
        if codec is None:
            self._node_codecs.pop(name, None)
        else:
            self._node_codecs[name] = codec

    def codec_for(self, node: str) -> Codec:
        """The codec *node* encodes/decodes with (default: shared WIRE)."""
        return self._node_codecs.get(node, WIRE)

    def pause_node(self, name: str) -> None:
        """Black out *name*'s network: unreachable, but processes/endpoints
        survive (a wedged NIC, not a crash). Reversed by :meth:`resume_node`."""
        if name not in self._nodes_up:
            raise NetworkError(f"unknown node {name!r}")
        self._paused.add(name)

    def resume_node(self, name: str) -> None:
        self._paused.discard(name)

    def node_is_paused(self, name: str) -> bool:
        return name in self._paused

    def set_node_slowdown(self, name: str, extra_latency: float) -> None:
        """Add *extra_latency* seconds one-way to every message touching
        *name* (0 clears the episode)."""
        if name not in self._nodes_up:
            raise NetworkError(f"unknown node {name!r}")
        if extra_latency < 0:
            raise NetworkError("slowdown must be non-negative")
        if extra_latency > 0:
            self._slowdown[name] = extra_latency
        else:
            self._slowdown.pop(name, None)

    def node_slowdown(self, name: str) -> float:
        return self._slowdown.get(name, 0.0)

    def add_drop_filter(self, predicate: Callable[[Address, Address, Any], bool]) -> int:
        """Force-drop every datagram for which ``predicate(src, dst,
        payload)`` is true; returns a token for :meth:`remove_drop_filter`."""
        self._drop_filter_ids += 1
        self._drop_filters[self._drop_filter_ids] = predicate
        return self._drop_filter_ids

    def remove_drop_filter(self, token: int) -> None:
        self._drop_filters.pop(token, None)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes_up)

    # -- endpoints -------------------------------------------------------------

    def bind(self, node: str, port: int) -> Endpoint:
        """Bind and return an endpoint at ``(node, port)``."""
        if node not in self._nodes_up:
            raise NetworkError(f"unknown node {node!r}")
        if not self._nodes_up[node]:
            raise NodeDown(f"cannot bind on crashed node {node!r}")
        address = Address(node, port)
        if address in self._endpoints:
            raise AddressInUse(f"{address} already bound")
        endpoint = Endpoint(self, address)
        self._endpoints[address] = endpoint
        return endpoint

    def _unbind(self, endpoint: Endpoint) -> None:
        self._endpoints.pop(endpoint.address, None)

    def endpoint_at(self, address: Address) -> Endpoint | None:
        return self._endpoints.get(address)

    # -- datagram delivery --------------------------------------------------------

    def send(self, src: Address, dst: Address, payload: Any) -> None:
        """Send one datagram from *src* to *dst*; drops are silent.

        The payload is encoded to wire bytes *here*: the exact frame length
        drives the link/contention models, and delivery decodes a fresh
        object — the sender's object reference never leaves its node.
        """
        if not self.node_is_up(src.node):
            if self._nodes_up.get(src.node) and src.node in self._paused:
                # Blacked-out NIC: the sending process is alive but its
                # packets never reach the wire; swallow rather than raise.
                self.stats["dropped_paused"] += 1
                return
            raise NodeDown(f"send from crashed node {src.node!r}")
        self.stats["sent"] += 1
        frame = self.codec_for(src.node).encode(payload)
        size = len(frame) + DATAGRAM_OVERHEAD
        self.stats["bytes_offered"] += size
        offered_kind = _payload_kind(payload)
        self.offered_bytes_by_type[offered_kind] = (
            self.offered_bytes_by_type.get(offered_kind, 0) + size
        )
        if self.on_frame:
            for hook in self.on_frame:
                hook(self.kernel.now, src, dst, offered_kind, size)

        if not self.node_is_up(dst.node):
            if self._nodes_up.get(dst.node) and dst.node in self._paused:
                self.stats["dropped_paused"] += 1
            else:
                self.stats["dropped_down"] += 1
            return
        if not self.partitions.reachable(src.node, dst.node):
            self.stats["dropped_unreachable"] += 1
            return
        for _token, predicate in sorted(self._drop_filters.items()):
            if predicate(src, dst, payload):
                self.stats["dropped_filtered"] += 1
                return

        local = src.node == dst.node
        model = self.loopback if local else self.lan
        if model.dropped(self._rng):
            self.stats["dropped_loss"] += 1
            return

        now = self.kernel.now
        if not local:
            # The frame survived every drop decision: it occupies the wire.
            self.stats["bytes_wire"] += size
            kind = _payload_kind(payload)
            self.wire_bytes_by_type[kind] = (
                self.wire_bytes_by_type.get(kind, 0) + size
            )
        if local or not self.shared_medium:
            delay = model.delay(size, self._rng)
        else:
            # Hub: wait for the wire, occupy it for the serialisation time,
            # then propagate. Contention shows up as queueing delay.
            serialisation = size / model.bandwidth
            start = max(now, self._wire_free_at)
            self._wire_free_at = start + serialisation
            delay = (start - now) + model.delay(size, self._rng)
        # Slow-node episodes: an overloaded host adds stack latency to every
        # message it sends or receives.
        delay += self._slowdown.get(src.node, 0.0) + self._slowdown.get(dst.node, 0.0)

        sent_at = now
        def deliver(_event) -> None:
            # Re-check at delivery time: the destination may have crashed or
            # become unreachable while the message was in flight.
            if not self.node_is_up(dst.node):
                if self._nodes_up.get(dst.node) and dst.node in self._paused:
                    self.stats["dropped_paused"] += 1
                else:
                    self.stats["dropped_down"] += 1
                return
            endpoint = self._endpoints.get(dst)
            if endpoint is None or endpoint.closed:
                self.stats["dropped_unbound"] += 1
                return
            # Decode a *fresh* object graph from the frame bytes — the
            # receiver never sees the sender's objects, and a node with its
            # own codec sees the frame through its own wire-module version.
            fresh = self.codec_for(dst.node).decode(frame)
            sanitizer = self.kernel.sanitizer
            if sanitizer is not None:
                sanitizer.check_payload_isolation(
                    self.kernel.now, src, dst, payload, fresh
                )
            self.stats["delivered"] += 1
            self.stats["bytes_delivered"] += size
            endpoint._deliver(
                Delivery(src, dst, fresh, sent_at, self.kernel.now, size)
            )

        # The det_key tags the in-flight datagram for the determinism
        # sanitizer: same-instant deliveries are distinguishable ties, not
        # ambiguous ones — by (src, dst), and among same-pair datagrams by
        # the per-pair send sequence (per-pair send order is part of the
        # determinism contract).
        seq = self._pair_seq.get((src, dst), 0) + 1
        self._pair_seq[(src, dst)] = seq
        timer = self.kernel.timeout(delay, det_key=(str(src), str(dst), seq))
        timer.callbacks.append(deliver)
