"""Typed transport wire frames.

:class:`~repro.net.transport.Transport` used to frame its traffic as plain
tuples ``("DATA", epoch, seq, payload)``; these are now declared record
shapes so the codec sizes them exactly and lint rule R4 can check that each
frame kind has a dispatcher and a constructor. The frame classes live here —
not in ``transport.py`` — so the wire surface of the transport layer is one
importable module, mirroring ``pbs/wire.py`` and friends.

``DataFrame``
    One reliably-sequenced payload: *seq* is the per-destination sequence
    number within *epoch* (a fresh epoch per transport incarnation keeps a
    restarted peer's stale numbering from being mistaken for new traffic).
``AckFrame``
    Cumulative acknowledgement: all DATA with ``seq <= cum_seq`` in *epoch*
    have been received.
``RawFrame``
    Bypasses sequencing/retransmission entirely (heartbeats, probes) —
    timeliness beats reliability there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.net.codec import register_wire_types

__all__ = ["DataFrame", "AckFrame", "RawFrame"]


@dataclass(frozen=True)
class DataFrame:
    """Reliable-channel payload frame (FIFO within its epoch)."""

    epoch: int
    seq: int
    payload: Any


@dataclass(frozen=True)
class AckFrame:
    """Cumulative ack: everything ``<= cum_seq`` in *epoch* is received."""

    epoch: int
    cum_seq: int


@dataclass(frozen=True)
class RawFrame:
    """Unsequenced fire-and-forget frame (failure-detector traffic)."""

    payload: Any


register_wire_types(DataFrame, AckFrame, RawFrame)
