"""The wire codec: a typed encode/decode registry for every wire record.

Every payload handed to :meth:`repro.net.network.Network.send` is encoded to
``bytes`` at the sender and decoded to a *fresh* object at the receiver. The
encoded length — not an estimate — is what the link model and the shared-
medium contention model charge for, and the decode step guarantees that no
Python object identity ever crosses a node boundary (one node can no longer
mutate state another node still holds).

Format
------
A self-describing tag-byte format, deterministic by construction (no
timestamps, no hashes, no interpreter-dependent state):

=====  ======================================================================
tag    encoding
=====  ======================================================================
0x00   ``None``
0x01   ``False``
0x02   ``True``
0x03   ``int`` — zig-zag LEB128 varint (arbitrary precision)
0x04   ``float`` — 8-byte big-endian IEEE-754 (exact round trip)
0x05   ``str`` — varint byte length + UTF-8
0x06   ``bytes`` — varint length + raw
0x07   ``tuple`` — varint count + encoded items
0x08   ``list`` — varint count + encoded items
0x09   ``dict`` — varint count + encoded key/value pairs, insertion order
0x0A   registered record — name + encoded fields in declaration order
0x0B   registered enum — name + encoded member value
=====  ======================================================================

Records are tagged by **class name** (stable across processes and import
orders, unlike a numeric id assigned at registration time); the registry
rejects duplicate names. Sets and unregistered classes are *encode errors*:
sets would smuggle hash order onto the wire, and an unregistered dataclass
is a wire type the protocol layer forgot to declare (lint rule R6 enforces
the declaration statically).

Registry
--------
Registration is decentralised to respect the layering contract: each wire
module calls :func:`register_wire_types` / :func:`register_wire_enum` on its
own dataclasses at import time (``gcs/messages.py`` registers the GCS
messages, ``pbs/wire.py`` the PBS requests, ...). The module-level ``WIRE``
singleton is append-only and written only at import time — the same
discipline as the ``__rpc_error_relay__`` class marker, so it stays safe for
two simulations sharing one interpreter.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import Any

from repro.util.errors import NetworkError

__all__ = [
    "Codec",
    "CodecError",
    "WIRE",
    "register_wire_types",
    "register_wire_enum",
    "encoded_size",
]


class CodecError(NetworkError):
    """A value could not be encoded to, or decoded from, wire bytes."""


_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_RECORD = 0x0A
_T_ENUM = 0x0B

_FLOAT = struct.Struct(">d")


def _encode_varint(value: int, out: bytearray) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> (value.bit_length() + 1)) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


@dataclasses.dataclass(frozen=True)
class _Record:
    """One registered record class: its wire name and field order."""

    name: str
    cls: type
    fields: tuple[str, ...]


def _record_fields(cls: type) -> tuple[str, ...]:
    if dataclasses.is_dataclass(cls):
        return tuple(f.name for f in dataclasses.fields(cls))
    if issubclass(cls, tuple) and hasattr(cls, "_fields"):
        return tuple(cls._fields)
    raise CodecError(
        f"{cls.__name__} is neither a dataclass nor a NamedTuple; "
        "only declared record shapes can cross the wire"
    )


class Codec:
    """Encode/decode registry mapping record classes to byte frames.

    The registry is append-only: :meth:`register` at import time, then only
    :meth:`encode` / :meth:`decode` at run time. Decoding always constructs
    fresh objects — two calls never return the same container identity.
    """

    def __init__(self) -> None:
        self._records_by_name: dict[str, _Record] = {}
        self._records_by_type: dict[type, _Record] = {}
        self._enums_by_name: dict[str, type] = {}
        self._enum_types: dict[type, str] = {}

    # -- registration -----------------------------------------------------------

    def register(self, cls: type, *, name: str | None = None) -> type:
        """Register a dataclass or NamedTuple as a wire record.

        Idempotent for the same class; a *different* class under an already-
        taken name is an error (names are the wire tag and must be unique)."""
        wire_name = name or cls.__name__
        existing = self._records_by_name.get(wire_name)
        if existing is not None:
            if existing.cls is cls:
                return cls
            raise CodecError(
                f"wire name {wire_name!r} already registered for "
                f"{existing.cls.__module__}.{existing.cls.__qualname__}"
            )
        record = _Record(wire_name, cls, _record_fields(cls))
        self._records_by_name[wire_name] = record
        self._records_by_type[cls] = record
        return cls

    def register_enum(self, cls: type, *, name: str | None = None) -> type:
        """Register an :class:`enum.Enum` whose members may ride in fields."""
        if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
            raise CodecError(f"{cls!r} is not an Enum")
        wire_name = name or cls.__name__
        existing = self._enums_by_name.get(wire_name)
        if existing is not None:
            if existing is cls:
                return cls
            raise CodecError(f"enum wire name {wire_name!r} already registered")
        self._enums_by_name[wire_name] = cls
        self._enum_types[cls] = wire_name
        return cls

    def registered_records(self) -> list[type]:
        """Registered record classes, sorted by wire name (for tests/CI)."""
        return [r.cls for _, r in sorted(self._records_by_name.items())]

    def registered_enums(self) -> list[type]:
        return [cls for _, cls in sorted(self._enums_by_name.items())]

    def is_registered(self, cls: type) -> bool:
        return cls in self._records_by_type or cls in self._enum_types

    # -- encoding ---------------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        """Serialise *value* to a byte frame."""
        out = bytearray()
        self._encode_value(value, out)
        return bytes(out)

    def _encode_str(self, value: str, out: bytearray) -> None:
        raw = value.encode("utf-8")
        _encode_varint(len(raw), out)
        out += raw

    def _encode_value(self, value: Any, out: bytearray) -> None:
        # Exact-type dispatch first: bool before int, and registered record
        # classes (including NamedTuple subclasses of tuple) before their
        # builtin bases.
        cls = type(value)
        record = self._records_by_type.get(cls)
        if record is not None:
            out.append(_T_RECORD)
            self._encode_str(record.name, out)
            for field in record.fields:
                self._encode_value(getattr(value, field), out)
            return
        enum_name = self._enum_types.get(cls)
        if enum_name is not None:
            out.append(_T_ENUM)
            self._encode_str(enum_name, out)
            self._encode_value(value.value, out)
            return
        if value is None:
            out.append(_T_NONE)
        elif cls is bool:
            out.append(_T_TRUE if value else _T_FALSE)
        elif cls is int:
            out.append(_T_INT)
            _encode_varint(_zigzag(value), out)
        elif cls is float:
            out.append(_T_FLOAT)
            out += _FLOAT.pack(value)
        elif cls is str:
            out.append(_T_STR)
            self._encode_str(value, out)
        elif cls is bytes:
            out.append(_T_BYTES)
            _encode_varint(len(value), out)
            out += value
        elif cls is tuple:
            out.append(_T_TUPLE)
            _encode_varint(len(value), out)
            for item in value:
                self._encode_value(item, out)
        elif cls is list:
            out.append(_T_LIST)
            _encode_varint(len(value), out)
            for item in value:
                self._encode_value(item, out)
        elif cls is dict:
            out.append(_T_DICT)
            _encode_varint(len(value), out)
            # repro-lint: ignore[R3] insertion order IS the wire contract here: the sender's dict order is encoded verbatim and reproduced by decode, so it is deterministic iff the sender built the dict deterministically (which R3 checks at the send sites)
            for key, item in value.items():
                self._encode_value(key, out)
                self._encode_value(item, out)
        elif isinstance(value, (set, frozenset)):
            raise CodecError(
                "sets cannot cross the wire: their iteration order is hash-"
                "dependent; send a sorted tuple instead"
            )
        else:
            raise CodecError(
                f"unregistered wire type {cls.__module__}.{cls.__qualname__}; "
                "declare it with register_wire_types()/register_wire_enum()"
            )

    # -- decoding ---------------------------------------------------------------

    def decode(self, frame: bytes) -> Any:
        """Reconstruct a fresh value from a byte frame."""
        value, pos = self._decode_value(frame, 0)
        if pos != len(frame):
            raise CodecError(f"{len(frame) - pos} trailing bytes after decoded value")
        return value

    def _decode_str(self, data: bytes, pos: int) -> tuple[str, int]:
        length, pos = _decode_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated string")
        return data[pos:end].decode("utf-8"), end

    def _decode_value(self, data: bytes, pos: int) -> tuple[Any, int]:
        if pos >= len(data):
            raise CodecError("truncated frame")
        tag = data[pos]
        pos += 1
        if tag == _T_NONE:
            return None, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_INT:
            raw, pos = _decode_varint(data, pos)
            return _unzigzag(raw), pos
        if tag == _T_FLOAT:
            end = pos + 8
            if end > len(data):
                raise CodecError("truncated float")
            return _FLOAT.unpack(data[pos:end])[0], end
        if tag == _T_STR:
            return self._decode_str(data, pos)
        if tag == _T_BYTES:
            length, pos = _decode_varint(data, pos)
            end = pos + length
            if end > len(data):
                raise CodecError("truncated bytes")
            return data[pos:end], end
        if tag in (_T_TUPLE, _T_LIST):
            count, pos = _decode_varint(data, pos)
            items = []
            for _ in range(count):
                item, pos = self._decode_value(data, pos)
                items.append(item)
            return (tuple(items) if tag == _T_TUPLE else items), pos
        if tag == _T_DICT:
            count, pos = _decode_varint(data, pos)
            mapping = {}
            for _ in range(count):
                key, pos = self._decode_value(data, pos)
                item, pos = self._decode_value(data, pos)
                mapping[key] = item
            return mapping, pos
        if tag == _T_RECORD:
            name, pos = self._decode_str(data, pos)
            record = self._records_by_name.get(name)
            if record is None:
                raise CodecError(f"unknown wire record {name!r}")
            values = []
            for _ in record.fields:
                value, pos = self._decode_value(data, pos)
                values.append(value)
            return record.cls(*values), pos
        if tag == _T_ENUM:
            name, pos = self._decode_str(data, pos)
            cls = self._enums_by_name.get(name)
            if cls is None:
                raise CodecError(f"unknown wire enum {name!r}")
            value, pos = self._decode_value(data, pos)
            return cls(value), pos
        raise CodecError(f"unknown wire tag 0x{tag:02X}")

    # -- diagnostics ------------------------------------------------------------

    def self_check(self) -> None:
        """Cheap structural audit of the registry (run by the CI smoke):
        every registered record must still construct from positional fields,
        and names must round-trip through the name table."""
        # repro-lint: ignore[R3] pure audit — raises on the first inconsistency regardless of visit order, no wire or protocol effect
        for record in self._records_by_name.values():
            if _record_fields(record.cls) != record.fields:
                raise CodecError(
                    f"{record.name}: field list changed after registration"
                )
            if self._records_by_type.get(record.cls) is not record:
                raise CodecError(f"{record.name}: type table out of sync")


#: The process-wide registry. Append-only, written only at import time by the
#: wire modules themselves; :class:`~repro.net.network.Network` reads it on
#: every send/deliver.
WIRE = Codec()


def register_wire_types(*classes: type) -> None:
    """Register *classes* (dataclasses / NamedTuples) on the shared codec.

    Called at the bottom of each wire module for its own types — the only
    sanctioned write to :data:`WIRE`."""
    for cls in classes:
        WIRE.register(cls)


def register_wire_enum(cls: type) -> type:
    """Register an enum whose members appear inside wire records."""
    return WIRE.register_enum(cls)


def encoded_size(value: Any, codec: Codec | None = None) -> int:
    """Exact on-wire byte count of *value* (excluding datagram header)."""
    return len((codec or WIRE).encode(value))
