"""The wire codec: a typed encode/decode registry for every wire record.

Every payload handed to :meth:`repro.net.network.Network.send` is encoded to
``bytes`` at the sender and decoded to a *fresh* object at the receiver. The
encoded length — not an estimate — is what the link model and the shared-
medium contention model charge for, and the decode step guarantees that no
Python object identity ever crosses a node boundary (one node can no longer
mutate state another node still holds).

Format
------
A self-describing tag-byte format, deterministic by construction (no
timestamps, no hashes, no interpreter-dependent state):

=====  ======================================================================
tag    encoding
=====  ======================================================================
0x00   ``None``
0x01   ``False``
0x02   ``True``
0x03   ``int`` — zig-zag LEB128 varint (arbitrary precision)
0x04   ``float`` — 8-byte big-endian IEEE-754 (exact round trip)
0x05   ``str`` — varint byte length + UTF-8
0x06   ``bytes`` — varint length + raw
0x07   ``tuple`` — varint count + encoded items
0x08   ``list`` — varint count + encoded items
0x09   ``dict`` — varint count + encoded key/value pairs, insertion order
0x0A   registered record — name + 16-bit schema fingerprint + varint field
       count + encoded fields in declaration order
0x0B   registered enum — name + encoded member value
=====  ======================================================================

Records are tagged by **class name** (stable across processes and import
orders, unlike a numeric id assigned at registration time); the registry
rejects duplicate names. Sets and unregistered classes are *encode errors*:
sets would smuggle hash order onto the wire, and an unregistered dataclass
is a wire type the protocol layer forgot to declare (lint rule R6 enforces
the declaration statically).

Schema evolution
----------------
Each record frame carries a 2-byte :func:`schema_fingerprint` (a CRC of the
record name and its field names, folded to 16 bits) plus the encoded field
count — 3 bytes that let a receiver running a *different version* of a wire
module detect the skew. Decode has two modes:

* **tolerant** (the default): a frame with *more* fields than the local
  declaration decodes positionally and skips the unknown trailing fields; a
  frame with *fewer* fields fills the absent trailing fields from the local
  declaration's defaults. Either way the sender's field prefix is trusted
  positionally — which is exactly the evolution contract lint rule R7
  enforces statically against ``WIRE_SCHEMA.lock`` (appends at the tail
  only, never renames/reorders). A fingerprint mismatch at *equal* field
  count (a rename or reorder — unalignable positionally) is always an
  error.
* **strict** (``Codec(strict=True)`` or ``decode(frame, strict=True)``):
  any fingerprint or count mismatch is a :class:`CodecError`.

:meth:`Codec.clone` derives a per-node codec with individual records
swapped for evolved versions — the rolling-upgrade harness used by the
mixed-version integration tests (the superseded class stays encodable, so
shared protocol code that still constructs it keeps working).

Wire-optional trailing fields
-----------------------------
:func:`mark_wire_optional` declares a contiguous *defaulted tail* of a
record's fields as elidable: when every field of a trailing run still holds
its declared default, the encoder omits that run and emits the fingerprint
and count of the remaining *prefix* declaration instead. A record that has
never set its new fields therefore produces **byte-identical frames to the
pre-extension declaration** — which is how a wire record can grow without
perturbing pinned wire-digest baselines. The decoder recognises the prefix
fingerprints of its own declaration and fills the elided tail from the
defaults — even in strict mode, because a compact frame of the *same*
declaration is not version skew.

Registry
--------
Registration is decentralised to respect the layering contract: each wire
module calls :func:`register_wire_types` / :func:`register_wire_enum` on its
own dataclasses at import time (``gcs/messages.py`` registers the GCS
messages, ``pbs/wire.py`` the PBS requests, ...). The module-level ``WIRE``
singleton is append-only and written only at import time — the same
discipline as the ``__rpc_error_relay__`` class marker, so it stays safe for
two simulations sharing one interpreter.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
import zlib
from typing import Any

from repro.util.errors import NetworkError

__all__ = [
    "Codec",
    "CodecError",
    "WIRE",
    "register_wire_types",
    "register_wire_enum",
    "mark_wire_optional",
    "elided_repr",
    "encoded_size",
    "schema_fingerprint",
]


class CodecError(NetworkError):
    """A value could not be encoded to, or decoded from, wire bytes.

    Decode-side errors carry ``offset`` (byte position in the frame) and,
    when the failure happened inside a record's field list,
    ``record_context`` / ``field`` naming the innermost in-progress record.
    """

    offset: int | None = None
    record_context: str | None = None
    field: str | None = None


def _codec_error(message: str, offset: int) -> CodecError:
    """A decode error annotated with the byte offset it occurred at."""
    exc = CodecError(f"{message} at byte {offset}")
    exc.offset = offset
    return exc


def _annotate(exc: CodecError, record: str, field: str) -> None:
    """Attach the *innermost* in-progress record/field to a decode error
    (outer records re-raise without overwriting, so nested failures name
    the record actually being decoded when the bytes ran out)."""
    if exc.record_context is None:
        exc.record_context = record
        exc.field = field
        exc.args = (
            f"{exc.args[0]} (while decoding field {field!r} of {record})",
        )


_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_RECORD = 0x0A
_T_ENUM = 0x0B

_FLOAT = struct.Struct(">d")


def _encode_varint(value: int, out: bytearray) -> None:
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise _codec_error("truncated varint", pos)
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> (value.bit_length() + 1)) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def schema_fingerprint(name: str, fields: tuple[str, ...]) -> int:
    """16-bit schema fingerprint of a record: CRC-32 of the wire name and
    field names (declaration order), folded to 16 bits. Carried in every
    record frame (2 bytes) so a receiver can detect version skew; the
    static extractor (``repro.analysis.schema``) computes the identical
    value from the AST, which is what the lockfile completeness test pins.

    Field *names* only — a type-annotation change is invisible at runtime
    (the codec is self-describing per value) and is gated statically by
    lint rule R7 instead."""
    crc = zlib.crc32(",".join((name, *fields)).encode("utf-8"))
    return (crc ^ (crc >> 16)) & 0xFFFF


@dataclasses.dataclass(frozen=True, eq=False)
class _Record:
    """One registered record class: wire name, field order, and the
    schema-evolution metadata (fingerprint, precomputed frame header,
    zero-arg default factories for tolerant decode). Records with a
    :func:`mark_wire_optional` tail additionally carry the per-prefix
    headers/fingerprints the elision paths use."""

    name: str
    cls: type
    fields: tuple[str, ...]
    fingerprint: int
    header: bytes                 # fingerprint (>H) + varint field count
    defaults: dict[str, Any]      # field name -> zero-arg factory
    min_fields: int               # shortest sendable prefix length
    optional_defaults: tuple[Any, ...]   # default values, fields[min_fields:]
    prefix_headers: tuple[bytes, ...]    # header per count k - min_fields
    prefix_fingerprints: dict[int, int]  # sendable count k -> fingerprint


def _record_fields(cls: type) -> tuple[str, ...]:
    if dataclasses.is_dataclass(cls):
        return tuple(f.name for f in dataclasses.fields(cls))
    if issubclass(cls, tuple) and hasattr(cls, "_fields"):
        return tuple(cls._fields)
    raise CodecError(
        f"{cls.__name__} is neither a dataclass nor a NamedTuple; "
        "only declared record shapes can cross the wire"
    )


def _record_defaults(cls: type) -> dict[str, Any]:
    """Field name -> zero-arg factory for every field with a declared
    default (what tolerant decode fills absent trailing fields from)."""
    factories: dict[str, Any] = {}
    if dataclasses.is_dataclass(cls):
        for f in dataclasses.fields(cls):
            if f.default is not dataclasses.MISSING:
                default = f.default
                factories[f.name] = lambda default=default: default
            elif f.default_factory is not dataclasses.MISSING:
                factories[f.name] = f.default_factory
    elif hasattr(cls, "_field_defaults"):
        for field_name, default in sorted(cls._field_defaults.items()):
            factories[field_name] = lambda default=default: default
    return factories


def _record_header(fingerprint: int, count: int) -> bytes:
    header = bytearray(struct.pack(">H", fingerprint))
    _encode_varint(count, header)
    return bytes(header)


def _make_record(wire_name: str, cls: type) -> _Record:
    fields = _record_fields(cls)
    fingerprint = schema_fingerprint(wire_name, fields)
    defaults = _record_defaults(cls)
    optional = tuple(getattr(cls, "__wire_optional__", ()))
    if optional:
        if optional != fields[len(fields) - len(optional):]:
            raise CodecError(
                f"{wire_name}: __wire_optional__ {optional!r} is not the "
                f"trailing run of the declared fields {fields!r}"
            )
        missing = [f for f in optional if f not in defaults]
        if missing:
            raise CodecError(
                f"{wire_name}: wire-optional fields {missing!r} declare no "
                "default — elision needs a value to fill back in"
            )
    min_fields = len(fields) - len(optional)
    optional_defaults = tuple(defaults[f]() for f in optional)
    prefix_headers = tuple(
        _record_header(schema_fingerprint(wire_name, fields[:k]), k)
        for k in range(min_fields, len(fields) + 1)
    )
    prefix_fingerprints = {
        k: schema_fingerprint(wire_name, fields[:k])
        for k in range(min_fields, len(fields))
    }
    return _Record(
        wire_name, cls, fields, fingerprint, prefix_headers[-1],
        defaults, min_fields, optional_defaults, prefix_headers,
        prefix_fingerprints,
    )


class Codec:
    """Encode/decode registry mapping record classes to byte frames.

    The registry is append-only: :meth:`register` at import time, then only
    :meth:`encode` / :meth:`decode` at run time. Decoding always constructs
    fresh objects — two calls never return the same container identity.
    """

    def __init__(self, *, strict: bool = False) -> None:
        self._records_by_name: dict[str, _Record] = {}
        self._records_by_type: dict[type, _Record] = {}
        self._enums_by_name: dict[str, type] = {}
        self._enum_types: dict[type, str] = {}
        self._strict = strict

    # -- registration -----------------------------------------------------------

    def register(
        self, cls: type, *, name: str | None = None, replace: bool = False
    ) -> type:
        """Register a dataclass or NamedTuple as a wire record.

        Idempotent for the same class; a *different* class under an already-
        taken name is an error (names are the wire tag and must be unique)
        unless *replace* is set — then the new class takes over the name for
        decode and the superseded class stays registered for encode only
        (under its own, older shape), which is how :meth:`clone` models a
        node whose wire module evolved while shared protocol code still
        constructs the old class."""
        wire_name = name or cls.__name__
        existing = self._records_by_name.get(wire_name)
        if existing is not None:
            if existing.cls is cls:
                return cls
            if not replace:
                raise CodecError(
                    f"wire name {wire_name!r} already registered for "
                    f"{existing.cls.__module__}.{existing.cls.__qualname__}"
                )
        record = _make_record(wire_name, cls)
        self._records_by_name[wire_name] = record
        self._records_by_type[cls] = record
        return cls

    def register_enum(
        self, cls: type, *, name: str | None = None, replace: bool = False
    ) -> type:
        """Register an :class:`enum.Enum` whose members may ride in fields."""
        if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
            raise CodecError(f"{cls!r} is not an Enum")
        wire_name = name or cls.__name__
        existing = self._enums_by_name.get(wire_name)
        if existing is not None:
            if existing is cls:
                return cls
            if not replace:
                raise CodecError(
                    f"enum wire name {wire_name!r} already registered"
                )
        self._enums_by_name[wire_name] = cls
        self._enum_types[cls] = wire_name
        return cls

    def clone(
        self,
        overrides: dict[str, type] | None = None,
        *,
        strict: bool | None = None,
    ) -> Codec:
        """A new codec with this one's registry, optionally with individual
        wire names rebound to evolved classes (*overrides* maps wire name ->
        class). The superseded class remains encodable under its old shape,
        so shared code constructing it still works — the rolling-upgrade
        harness for mixed-version groups (``Network.set_node_codec``)."""
        other = Codec(strict=self._strict if strict is None else strict)
        for wire_name, record in sorted(self._records_by_name.items()):
            other.register(record.cls, name=wire_name)
        for wire_name, cls in sorted(self._enums_by_name.items()):
            other.register_enum(cls, name=wire_name)
        for wire_name, cls in sorted((overrides or {}).items()):
            if isinstance(cls, type) and issubclass(cls, enum.Enum):
                other.register_enum(cls, name=wire_name, replace=True)
            else:
                other.register(cls, name=wire_name, replace=True)
        return other

    def registered_records(self) -> list[type]:
        """Registered record classes, sorted by wire name (for tests/CI)."""
        return [r.cls for _, r in sorted(self._records_by_name.items())]

    def registered_enums(self) -> list[type]:
        return [cls for _, cls in sorted(self._enums_by_name.items())]

    def is_registered(self, cls: type) -> bool:
        return cls in self._records_by_type or cls in self._enum_types

    def record_shapes(self) -> dict[str, dict[str, Any]]:
        """Wire name -> ``{"module", "fields", "defaults", "fingerprint"}``
        for every registered record — the runtime half of what the static
        schema extractor derives from the AST (the lockfile completeness
        test asserts the two agree)."""
        return {
            wire_name: {
                "module": record.cls.__module__,
                "fields": list(record.fields),
                "defaults": sorted(record.defaults),
                "fingerprint": record.fingerprint,
            }
            for wire_name, record in sorted(self._records_by_name.items())
        }

    def enum_shapes(self) -> dict[str, dict[str, Any]]:
        """Wire name -> ``{"module", "members"}`` for registered enums."""
        return {
            wire_name: {
                "module": cls.__module__,
                "members": {member.name: member.value for member in cls},
            }
            for wire_name, cls in sorted(self._enums_by_name.items())
        }

    # -- encoding ---------------------------------------------------------------

    def encode(self, value: Any) -> bytes:
        """Serialise *value* to a byte frame."""
        out = bytearray()
        self._encode_value(value, out)
        return bytes(out)

    def _encode_str(self, value: str, out: bytearray) -> None:
        raw = value.encode("utf-8")
        _encode_varint(len(raw), out)
        out += raw

    def _encode_value(self, value: Any, out: bytearray) -> None:
        # Exact-type dispatch first: bool before int, and registered record
        # classes (including NamedTuple subclasses of tuple) before their
        # builtin bases.
        cls = type(value)
        record = self._records_by_type.get(cls)
        if record is not None:
            out.append(_T_RECORD)
            self._encode_str(record.name, out)
            send = len(record.fields)
            if record.min_fields < send:
                # Elide the longest trailing run of wire-optional fields
                # still holding their declared defaults (type-exact compare:
                # ``False == 0`` must not elide an int against a bool).
                while send > record.min_fields:
                    default = record.optional_defaults[send - 1 - record.min_fields]
                    held = getattr(value, record.fields[send - 1])
                    if type(held) is type(default) and held == default:
                        send -= 1
                    else:
                        break
            out += record.prefix_headers[send - record.min_fields]
            for field in record.fields[:send]:
                self._encode_value(getattr(value, field), out)
            return
        enum_name = self._enum_types.get(cls)
        if enum_name is not None:
            out.append(_T_ENUM)
            self._encode_str(enum_name, out)
            self._encode_value(value.value, out)
            return
        if value is None:
            out.append(_T_NONE)
        elif cls is bool:
            out.append(_T_TRUE if value else _T_FALSE)
        elif cls is int:
            out.append(_T_INT)
            _encode_varint(_zigzag(value), out)
        elif cls is float:
            out.append(_T_FLOAT)
            out += _FLOAT.pack(value)
        elif cls is str:
            out.append(_T_STR)
            self._encode_str(value, out)
        elif cls is bytes:
            out.append(_T_BYTES)
            _encode_varint(len(value), out)
            out += value
        elif cls is tuple:
            out.append(_T_TUPLE)
            _encode_varint(len(value), out)
            for item in value:
                self._encode_value(item, out)
        elif cls is list:
            out.append(_T_LIST)
            _encode_varint(len(value), out)
            for item in value:
                self._encode_value(item, out)
        elif cls is dict:
            out.append(_T_DICT)
            _encode_varint(len(value), out)
            # repro-lint: ignore[R3] insertion order IS the wire contract here: the sender's dict order is encoded verbatim and reproduced by decode, so it is deterministic iff the sender built the dict deterministically (which R3 checks at the send sites)
            for key, item in value.items():
                self._encode_value(key, out)
                self._encode_value(item, out)
        elif isinstance(value, (set, frozenset)):
            raise CodecError(
                "sets cannot cross the wire: their iteration order is hash-"
                "dependent; send a sorted tuple instead"
            )
        else:
            raise CodecError(
                f"unregistered wire type {cls.__module__}.{cls.__qualname__}; "
                "declare it with register_wire_types()/register_wire_enum()"
            )

    # -- decoding ---------------------------------------------------------------

    def decode(self, frame: bytes, *, strict: bool | None = None) -> Any:
        """Reconstruct a fresh value from a byte frame.

        *strict* overrides this codec's schema-evolution tolerance for one
        call (see the module docstring); the default is the codec's own
        setting."""
        tolerant = not (self._strict if strict is None else strict)
        value, pos = self._decode_value(frame, 0, tolerant)
        if pos != len(frame):
            raise _codec_error(
                f"{len(frame) - pos} trailing bytes after decoded value", pos
            )
        return value

    def _decode_str(self, data: bytes, pos: int) -> tuple[str, int]:
        length, pos = _decode_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise _codec_error("truncated string", pos)
        return data[pos:end].decode("utf-8"), end

    def _decode_value(
        self, data: bytes, pos: int, tolerant: bool
    ) -> tuple[Any, int]:
        if pos >= len(data):
            raise _codec_error("truncated frame", pos)
        tag = data[pos]
        pos += 1
        if tag == _T_NONE:
            return None, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_INT:
            raw, pos = _decode_varint(data, pos)
            return _unzigzag(raw), pos
        if tag == _T_FLOAT:
            end = pos + 8
            if end > len(data):
                raise _codec_error("truncated float", pos)
            return _FLOAT.unpack(data[pos:end])[0], end
        if tag == _T_STR:
            return self._decode_str(data, pos)
        if tag == _T_BYTES:
            length, pos = _decode_varint(data, pos)
            end = pos + length
            if end > len(data):
                raise _codec_error("truncated bytes", pos)
            return data[pos:end], end
        if tag in (_T_TUPLE, _T_LIST):
            count, pos = _decode_varint(data, pos)
            items = []
            for _ in range(count):
                item, pos = self._decode_value(data, pos, tolerant)
                items.append(item)
            return (tuple(items) if tag == _T_TUPLE else items), pos
        if tag == _T_DICT:
            count, pos = _decode_varint(data, pos)
            mapping = {}
            for _ in range(count):
                key, pos = self._decode_value(data, pos, tolerant)
                item, pos = self._decode_value(data, pos, tolerant)
                mapping[key] = item
            return mapping, pos
        if tag == _T_RECORD:
            return self._decode_record(data, pos, tolerant, start=pos - 1)
        if tag == _T_ENUM:
            start = pos - 1
            name, pos = self._decode_str(data, pos)
            cls = self._enums_by_name.get(name)
            if cls is None:
                raise _codec_error(f"unknown wire enum {name!r}", start)
            value, pos = self._decode_value(data, pos, tolerant)
            return cls(value), pos
        raise _codec_error(f"unknown wire tag 0x{tag:02X}", pos - 1)

    def _decode_fields(
        self,
        data: bytes,
        pos: int,
        fields: tuple[str, ...],
        name: str,
        tolerant: bool,
    ) -> tuple[list[Any], int]:
        """Decode *fields* in order, annotating any failure with the
        innermost record/field it happened inside (satisfies "say where,
        not just what" for truncated frames)."""
        values = []
        for field in fields:
            try:
                value, pos = self._decode_value(data, pos, tolerant)
            except CodecError as exc:
                _annotate(exc, name, field)
                raise
            values.append(value)
        return values, pos

    def _decode_record(
        self, data: bytes, pos: int, tolerant: bool, start: int
    ) -> tuple[Any, int]:
        name, pos = self._decode_str(data, pos)
        record = self._records_by_name.get(name)
        if record is None:
            raise _codec_error(f"unknown wire record {name!r}", start)
        if pos + 2 > len(data):
            raise _codec_error(
                f"truncated schema fingerprint of record {name}", pos
            )
        sent_fp = (data[pos] << 8) | data[pos + 1]
        pos += 2
        sent_count, pos = _decode_varint(data, pos)
        if sent_fp == record.fingerprint and sent_count == len(record.fields):
            values, pos = self._decode_fields(
                data, pos, record.fields, name, tolerant
            )
            return record.cls(*values), pos
        if (
            record.min_fields <= sent_count < len(record.fields)
            and sent_fp == record.prefix_fingerprints.get(sent_count)
        ):
            # A compact frame of this very declaration: the sender elided a
            # trailing run of wire-optional fields at their defaults. Not
            # version skew, so accepted even in strict mode.
            values, pos = self._decode_fields(
                data, pos, record.fields[:sent_count], name, tolerant
            )
            values.extend(
                record.defaults[field]()
                for field in record.fields[sent_count:]
            )
            return record.cls(*values), pos
        return self._decode_evolved(
            data, pos, record, sent_fp, sent_count, tolerant, start
        )

    def _decode_evolved(
        self,
        data: bytes,
        pos: int,
        record: _Record,
        sent_fp: int,
        sent_count: int,
        tolerant: bool,
        start: int,
    ) -> tuple[Any, int]:
        """A record frame whose schema fingerprint/field count differ from
        the local declaration — the sender runs another version of the wire
        module. Tolerant mode applies the R7 evolution contract (trailing
        appends only); strict mode and unalignable skews always raise."""
        name = record.name
        local = len(record.fields)
        detail = (
            f"sender 0x{sent_fp:04X} with {sent_count} fields, "
            f"local 0x{record.fingerprint:04X} with {local} fields"
        )
        if not tolerant:
            raise _codec_error(
                f"schema mismatch for record {name} in strict mode "
                f"({detail})", start
            )
        if sent_count == local:
            raise _codec_error(
                f"schema mismatch for record {name} ({detail}): same field "
                "count but different fingerprint — a renamed or reordered "
                "field cannot be aligned positionally", start
            )
        if sent_count > local:
            # The sender is newer: take the local prefix positionally and
            # skip the unknown trailing fields.
            values, pos = self._decode_fields(
                data, pos, record.fields, name, tolerant
            )
            for _ in range(sent_count - local):
                try:
                    _, pos = self._decode_value(data, pos, tolerant)
                except CodecError as exc:
                    _annotate(exc, name, "<unknown trailing field>")
                    raise
            return record.cls(*values), pos
        # The sender is older: decode the common prefix, fill the absent
        # trailing fields from the local declaration's defaults.
        values, pos = self._decode_fields(
            data, pos, record.fields[:sent_count], name, tolerant
        )
        for field in record.fields[sent_count:]:
            factory = record.defaults.get(field)
            if factory is None:
                raise _codec_error(
                    f"cannot fill field {field!r} of {name}: the sender "
                    f"sent {sent_count} fields and {field!r} declares no "
                    "default (breaking delta — see WIRE_SCHEMA.lock)", start
                )
            values.append(factory())
        return record.cls(*values), pos

    # -- diagnostics ------------------------------------------------------------

    def self_check(self) -> None:
        """Cheap structural audit of the registry (run by the CI smoke):
        every registered record must still construct from positional fields,
        and names must round-trip through the name table."""
        # repro-lint: ignore[R3] pure audit — raises on the first inconsistency regardless of visit order, no wire or protocol effect
        for record in self._records_by_name.values():
            if _record_fields(record.cls) != record.fields:
                raise CodecError(
                    f"{record.name}: field list changed after registration"
                )
            if self._records_by_type.get(record.cls) is not record:
                raise CodecError(f"{record.name}: type table out of sync")
            if schema_fingerprint(record.name, record.fields) != record.fingerprint:
                raise CodecError(
                    f"{record.name}: schema fingerprint out of sync"
                )
            optional = tuple(getattr(record.cls, "__wire_optional__", ()))
            if len(record.fields) - len(optional) != record.min_fields:
                raise CodecError(
                    f"{record.name}: wire-optional tail changed after "
                    "registration"
                )
            # repro-lint: ignore[R3] audit only — order-independent raise
            for k, fp in record.prefix_fingerprints.items():
                if schema_fingerprint(record.name, record.fields[:k]) != fp:
                    raise CodecError(
                        f"{record.name}: prefix fingerprint table out of sync"
                    )


#: The process-wide registry. Append-only, written only at import time by the
#: wire modules themselves; :class:`~repro.net.network.Network` reads it on
#: every send/deliver.
WIRE = Codec()


def register_wire_types(*classes: type) -> None:
    """Register *classes* (dataclasses / NamedTuples) on the shared codec.

    Called at the bottom of each wire module for its own types — the only
    sanctioned write to :data:`WIRE`."""
    for cls in classes:
        WIRE.register(cls)


def register_wire_enum(cls: type) -> type:
    """Register an enum whose members appear inside wire records."""
    return WIRE.register_enum(cls)


def mark_wire_optional(cls: type, *fields: str) -> type:
    """Declare *fields* — a contiguous defaulted tail of *cls*'s wire fields
    — as elidable on the wire (see the module docstring). Call **before**
    :func:`register_wire_types`, in the wire module that declares the
    record; the marker lives on the class so :meth:`Codec.clone` re-derives
    the elision tables when it re-registers the class."""
    declared = _record_fields(cls)
    if tuple(fields) != declared[len(declared) - len(fields):]:
        raise CodecError(
            f"{cls.__name__}: wire-optional fields {fields!r} must be the "
            f"trailing run of the declared fields {declared!r}"
        )
    cls.__wire_optional__ = tuple(fields)
    # Validate eagerly (defaults present, etc.) via a throwaway build.
    _make_record(cls.__name__, cls)
    return cls


def elided_repr(value: Any) -> str:
    """A ``repr`` that mirrors the wire frame: trailing wire-optional
    fields still holding their declared defaults are omitted, so a record
    that never set its new fields reprs exactly like the pre-extension
    declaration did. Wire modules adopt it per record::

        @dataclasses.dataclass(frozen=True, repr=False)
        class JStatReq:
            ...
            __repr__ = elided_repr
    """
    cls = type(value)
    fields = _record_fields(cls)
    optional = tuple(getattr(cls, "__wire_optional__", ()))
    defaults = _record_defaults(cls)
    show = len(fields)
    floor = len(fields) - len(optional)
    while show > floor:
        default = defaults[fields[show - 1]]()
        held = getattr(value, fields[show - 1])
        if type(held) is type(default) and held == default:
            show -= 1
        else:
            break
    body = ", ".join(
        f"{field}={getattr(value, field)!r}" for field in fields[:show]
    )
    return f"{cls.__qualname__}({body})"


def encoded_size(value: Any, codec: Codec | None = None) -> int:
    """Exact on-wire byte count of *value* (excluding datagram header)."""
    return len((codec or WIRE).encode(value))
