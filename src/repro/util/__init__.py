"""Utility layer shared by every other subpackage.

The utilities deliberately avoid any dependency on the simulation kernel so
that they can be unit tested in isolation and reused by analysis scripts that
never build a cluster.

Contents
--------
:mod:`repro.util.errors`
    The exception hierarchy for the whole library.
:mod:`repro.util.config`
    A small configuration-file parser modelled after *libconfuse*, which the
    original JOSHUA prototype used for ``joshua.conf``.
:mod:`repro.util.rng`
    Named, seedable random-number streams so that independent subsystems
    (network jitter, failure injection, workloads) draw from independent
    deterministic streams.
:mod:`repro.util.simlog`
    Logging helpers that stamp records with *simulated* time.
:mod:`repro.util.records`
    Lightweight helpers for serialising dataclass records.
"""

from repro.util.errors import (
    ReproError,
    ConfigError,
    SimulationError,
    NetworkError,
    ClusterError,
    GroupCommError,
    MembershipError,
    PBSError,
    JoshuaError,
)
from repro.util.config import ConfigSchema, ConfigSection, Option, parse_config
from repro.util.rng import RandomStreams
from repro.util.simlog import SimLogger, LogRecord

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "NetworkError",
    "ClusterError",
    "GroupCommError",
    "MembershipError",
    "PBSError",
    "JoshuaError",
    "ConfigSchema",
    "ConfigSection",
    "Option",
    "parse_config",
    "RandomStreams",
    "SimLogger",
    "LogRecord",
]
