"""Exception hierarchy for the JOSHUA reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing genuine
programming errors (``TypeError``, ``AttributeError``, ...).

The hierarchy mirrors the package layout: one subclass per subsystem, with a
few more specific leaves where callers genuinely want to distinguish causes
(e.g. :class:`UnknownJobError` vs. a generic :class:`PBSError` so ``jdel`` of
a finished job can be reported to the user rather than crashing a daemon).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigError(ReproError):
    """A configuration file or configuration value is invalid."""

    def __init__(self, message: str, *, line: int | None = None, option: str | None = None):
        self.line = line
        self.option = option
        where = []
        if option is not None:
            where.append(f"option {option!r}")
        if line is not None:
            where.append(f"line {line}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(message + suffix)


class SimulationError(ReproError):
    """The discrete-event simulation kernel was misused or is corrupt."""


class ProcessDied(SimulationError):
    """Raised inside a process that waited on another process that failed."""

    def __init__(self, process: object, cause: BaseException):
        self.process = process
        self.cause = cause
        super().__init__(f"awaited process {process} died: {cause!r}")


class Interrupt(Exception):
    """Thrown into a simulation process by :meth:`Process.interrupt`.

    Deliberately *not* a :class:`ReproError`: an interrupt is a control-flow
    signal between cooperating processes, not a failure, and must never be
    caught by a blanket ``except ReproError``.
    """

    def __init__(self, cause: object = None):
        self.cause = cause
        super().__init__(f"interrupted: {cause!r}")


class NetworkError(ReproError):
    """Message could not be sent or endpoint is invalid."""


class AddressInUse(NetworkError):
    """Two daemons tried to bind the same (node, port) endpoint."""


class NoRouteError(NetworkError):
    """Destination endpoint does not exist or its node is down."""


class ClusterError(ReproError):
    """Cluster construction or node lifecycle error."""


class NodeDown(ClusterError):
    """An operation requires a node that has crashed."""


class GroupCommError(ReproError):
    """Group-communication (Transis stand-in) protocol failure."""


class MembershipError(GroupCommError):
    """Invalid join/leave or an operation outside the current view."""


class NotInView(MembershipError):
    """A member attempted to multicast while not installed in any view."""


class PBSError(ReproError):
    """Error reported by the PBS (TORQUE stand-in) job management stack."""


class UnknownJobError(PBSError):
    """A PBS command referenced a job id the server does not know."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        super().__init__(f"Unknown Job Id {job_id}")


class InvalidJobStateError(PBSError):
    """A PBS command is not legal for the job's current state."""

    def __init__(self, job_id: str, state: object, action: str):
        self.job_id = job_id
        self.state = state
        self.action = action
        super().__init__(f"Request invalid for state of job {job_id} ({state}, attempted {action})")


class JoshuaError(ReproError):
    """Error in the JOSHUA replication layer."""


class NoActiveHeadError(JoshuaError):
    """A JOSHUA control command found no live head node to contact."""
