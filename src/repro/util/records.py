"""Serialisation helpers for dataclass message/record types.

Simulated "wire" messages are dataclasses. To keep the simulation honest
about what crosses the network — and to let tests snapshot protocol traffic —
these helpers convert records to/from plain dicts (JSON-able), recursively.

This is intentionally *not* pickle: restricting payloads to plain data keeps
daemons from accidentally sharing live object references across "the wire",
which would hide replication bugs the paper's external-replication design is
all about catching.

Actual wire encoding (and exact byte sizing) lives in
:mod:`repro.net.codec`; these helpers remain for JSON-able snapshots in
tests and tooling.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Type, TypeVar

__all__ = ["to_wire", "from_wire"]

T = TypeVar("T")


def to_wire(obj: Any) -> Any:
    """Recursively convert dataclasses/enums/containers to plain data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = to_wire(getattr(obj, f.name))
        return out
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {k: to_wire(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        converted = [to_wire(v) for v in obj]
        return converted if isinstance(obj, list) else tuple(converted)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot serialise {type(obj).__name__} to wire format")


def from_wire(data: Any, cls: Type[T]) -> T:
    """Rebuild a dataclass of type *cls* from :func:`to_wire` output.

    Nested dataclass fields are reconstructed using the field's declared
    type when it is itself a dataclass; containers are passed through.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass type")
    if not isinstance(data, dict):
        raise TypeError(f"expected dict for {cls.__name__}, got {type(data).__name__}")
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        ftype = f.type if isinstance(f.type, type) else None
        if ftype is not None and dataclasses.is_dataclass(ftype) and isinstance(value, dict):
            value = from_wire(value, ftype)
        elif ftype is not None and isinstance(ftype, type) and issubclass(ftype, enum.Enum):
            value = ftype(value)
        kwargs[f.name] = value
    return cls(**kwargs)
