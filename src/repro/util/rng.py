"""Named deterministic random-number streams.

A simulation mixes several stochastic processes — network jitter, failure
injection, workload inter-arrival times. If they all drew from one generator,
adding a single extra network message would perturb the failure schedule and
make experiments impossible to compare across configurations ("simulation
variance coupling"). :class:`RandomStreams` hands each subsystem its own
:class:`numpy.random.Generator` derived from a master seed and the stream
name, so streams are mutually independent and individually reproducible.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, named random streams under one master seed.

    Parameters
    ----------
    seed:
        Master seed. Two :class:`RandomStreams` with the same seed produce
        identical streams for identical names, regardless of creation order.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> jitter = streams.get("net.jitter")
    >>> failures = streams.get("failures")
    >>> jitter is streams.get("net.jitter")
    True
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this family was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically.

        The stream's sub-seed is derived from the master seed and a stable
        hash of the name (``zlib.crc32`` — Python's ``hash`` is salted per
        process and would break reproducibility).
        """
        if name not in self._streams:
            sub = np.random.SeedSequence([self._seed, zlib.crc32(name.encode("utf-8"))])
            self._streams[name] = np.random.default_rng(sub)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child family, e.g. per replication run."""
        return RandomStreams(zlib.crc32(name.encode("utf-8"), self._seed) & 0x7FFFFFFF)

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed}, streams={len(self._streams)})"
