"""Simulation-time-aware logging.

Standard :mod:`logging` stamps wall-clock time, which is meaningless inside a
discrete-event simulation: what matters is *when in simulated time* a daemon
acted. :class:`SimLogger` timestamps records with a caller-supplied clock
callable (usually ``kernel.now``) and keeps records in memory so tests can
assert on them; it can also mirror to stderr for interactive debugging.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["LogRecord", "SimLogger", "LEVELS"]

LEVELS = {"DEBUG": 10, "INFO": 20, "WARNING": 30, "ERROR": 40}


@dataclass(frozen=True)
class LogRecord:
    """One log entry, stamped with simulated time."""

    time: float
    level: str
    source: str
    message: str
    fields: dict = field(default_factory=dict)

    def format(self) -> str:
        """Render as ``[   12.345s] INFO  source: message k=v``."""
        extra = "".join(f" {k}={v!r}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:>10.4f}s] {self.level:<7} {self.source}: {self.message}{extra}"

    def to_dict(self) -> dict:
        """Machine-readable form; the ``type`` discriminator keeps log
        records distinguishable from trace spans in one merged JSONL
        stream (see :mod:`repro.obs.export`)."""
        return {
            "type": "log",
            "time": self.time,
            "level": self.level,
            "source": self.source,
            "message": self.message,
            "fields": dict(self.fields),
        }


class SimLogger:
    """In-memory logger driven by a simulated clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time.
    level:
        Minimum level name to retain (``DEBUG``/``INFO``/``WARNING``/``ERROR``).
    echo:
        If true, every retained record is also printed to stderr.
    capacity:
        Maximum records kept; older records are dropped FIFO. ``None`` keeps
        everything (fine for tests, avoid in week-long availability runs).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        level: str = "INFO",
        echo: bool = False,
        capacity: int | None = 100_000,
    ):
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; expected one of {sorted(LEVELS)}")
        self._clock = clock
        self._threshold = LEVELS[level]
        self._echo = echo
        self._capacity = capacity
        self.records: list[LogRecord] = []

    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self._threshold = LEVELS[level]

    def log(self, level: str, source: str, message: str, **fields) -> None:
        if LEVELS.get(level, 0) < self._threshold:
            return
        record = LogRecord(self._clock(), level, source, message, fields)
        self.records.append(record)
        if self._capacity is not None and len(self.records) > self._capacity:
            del self.records[: len(self.records) - self._capacity]
        if self._echo:
            print(record.format(), file=sys.stderr)

    def debug(self, source: str, message: str, **fields) -> None:
        self.log("DEBUG", source, message, **fields)

    def info(self, source: str, message: str, **fields) -> None:
        self.log("INFO", source, message, **fields)

    def warning(self, source: str, message: str, **fields) -> None:
        self.log("WARNING", source, message, **fields)

    def error(self, source: str, message: str, **fields) -> None:
        self.log("ERROR", source, message, **fields)

    def select(
        self,
        *,
        source: str | None = None,
        level: str | None = None,
        contains: str | None = None,
    ) -> list[LogRecord]:
        """Filter retained records; handy in tests."""

        def keep(r: LogRecord) -> bool:
            if source is not None and r.source != source:
                return False
            if level is not None and r.level != level:
                return False
            if contains is not None and contains not in r.message:
                return False
            return True

        return [r for r in self.records if keep(r)]

    def dump(self, records: Iterable[LogRecord] | None = None) -> str:
        """Render records (default: all) one per line."""
        return "\n".join(r.format() for r in (self.records if records is None else records))

    def to_dicts(self, records: Iterable[LogRecord] | None = None) -> list[dict]:
        """Structured export of *records* (default: all retained)."""
        return [r.to_dict() for r in (self.records if records is None else records)]

    def to_jsonl(self, records: Iterable[LogRecord] | None = None) -> str:
        """Records as JSONL, one JSON object per line (trailing newline).

        Non-JSON-native field values degrade to their ``repr`` — an export
        must never fail because a caller logged an address or a message id.
        """
        lines = [
            json.dumps(d, sort_keys=True, default=repr) for d in self.to_dicts(records)
        ]
        return "\n".join(lines) + ("\n" if lines else "")
