"""A *libconfuse*-style configuration parser.

The original JOSHUA prototype parsed ``joshua.conf`` with libconfuse. This
module implements the subset of that format the reproduction needs, as a
proper tokenizer + recursive-descent parser with schema validation:

.. code-block:: text

    # comment — both '#' and '//' styles are accepted
    loglevel = "info"
    heartbeat-interval = 0.25      /* C-style block comments too */
    heads = {"head0", "head1", "head2"}

    group "joshua" {
        port     = 4412
        safe     = true
    }

Values are strings (quoted), integers, floats, booleans
(``true/false/yes/no/on/off``), or brace-delimited lists of those. Sections
may carry an optional title and nest arbitrarily.

Schema validation is explicit: callers describe expected options with
:class:`Option` and sections with :class:`ConfigSchema`, mirroring
libconfuse's ``cfg_opt_t`` tables. Unknown options, type mismatches and
missing required options raise :class:`~repro.util.errors.ConfigError` with
line information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.errors import ConfigError

__all__ = ["Token", "tokenize", "Option", "ConfigSchema", "ConfigSection", "parse_config"]


# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

_PUNCT = {"=", "{", "}", ",", "(", ")"}


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` is one of ``IDENT STRING NUMBER PUNCT EOF``."""

    kind: str
    value: str
    line: int


def tokenize(text: str) -> list[Token]:
    """Split *text* into tokens, stripping ``#``, ``//`` and ``/* */`` comments."""
    tokens: list[Token] = []
    i, line, n = 0, 1, len(text)
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r":
            i += 1
        elif c == "#" or text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise ConfigError("unterminated block comment", line=line)
            line += text.count("\n", i, end)
            i = end + 2
        elif c == '"':
            j = i + 1
            buf: list[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    esc = text[j + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    j += 2
                elif text[j] == "\n":
                    raise ConfigError("unterminated string literal", line=line)
                else:
                    buf.append(text[j])
                    j += 1
            if j >= n:
                raise ConfigError("unterminated string literal", line=line)
            tokens.append(Token("STRING", "".join(buf), line))
            i = j + 1
        elif c in _PUNCT:
            tokens.append(Token("PUNCT", c, line))
            i += 1
        elif c.isdigit() or (c in "+-." and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == ".")):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] in ".eE+-"):
                # stop '+/-' unless part of an exponent
                if text[j] in "+-" and text[j - 1] not in "eE":
                    break
                j += 1
            tokens.append(Token("NUMBER", text[i:j], line))
            i = j
        elif c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "_-."):
                j += 1
            tokens.append(Token("IDENT", text[i:j], line))
            i = j
        else:
            raise ConfigError(f"unexpected character {c!r}", line=line)
    tokens.append(Token("EOF", "", line))
    return tokens


# --------------------------------------------------------------------------
# Schema
# --------------------------------------------------------------------------

_TYPES = {"str", "int", "float", "bool", "list"}


@dataclass(frozen=True)
class Option:
    """Schema entry for a single option (libconfuse ``CFG_STR``/``CFG_INT``/...).

    Parameters
    ----------
    name:
        Option name as it appears in the file.
    type:
        One of ``str int float bool list``.
    default:
        Value used when the option is absent. ``required=True`` options must
        not supply a default.
    required:
        Missing required options raise :class:`ConfigError`.
    choices:
        Optional whitelist of accepted values.
    """

    name: str
    type: str = "str"
    default: Any = None
    required: bool = False
    choices: tuple | None = None

    def __post_init__(self):
        if self.type not in _TYPES:
            raise ValueError(f"unknown option type {self.type!r}; expected one of {sorted(_TYPES)}")
        if self.required and self.default is not None:
            raise ValueError(f"option {self.name!r} is required and must not have a default")

    def validate(self, value: Any, line: int) -> Any:
        checker = {
            "str": lambda v: isinstance(v, str),
            "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "float": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
            "bool": lambda v: isinstance(v, bool),
            "list": lambda v: isinstance(v, list),
        }[self.type]
        if not checker(value):
            raise ConfigError(
                f"expected {self.type}, got {type(value).__name__} ({value!r})",
                line=line,
                option=self.name,
            )
        if self.type == "float":
            value = float(value)
        if self.choices is not None and value not in self.choices:
            raise ConfigError(
                f"value {value!r} not in allowed choices {list(self.choices)}",
                line=line,
                option=self.name,
            )
        return value


@dataclass
class ConfigSchema:
    """Describes the options and sub-sections a section may contain."""

    options: list[Option] = field(default_factory=list)
    sections: dict[str, "ConfigSchema"] = field(default_factory=dict)
    section_titled: dict[str, bool] = field(default_factory=dict)

    def option(self, name: str) -> Option | None:
        for opt in self.options:
            if opt.name == name:
                return opt
        return None

    def add_section(self, name: str, schema: "ConfigSchema", *, titled: bool = False) -> "ConfigSchema":
        self.sections[name] = schema
        self.section_titled[name] = titled
        return self


# --------------------------------------------------------------------------
# Parsed representation
# --------------------------------------------------------------------------


class ConfigSection:
    """A parsed section: mapping-style access to options and sub-sections."""

    def __init__(self, name: str, title: str | None = None):
        self.name = name
        self.title = title
        self._values: dict[str, Any] = {}
        self._subsections: dict[str, list[ConfigSection]] = {}

    def __getitem__(self, key: str) -> Any:
        if key not in self._values:
            raise KeyError(f"no option {key!r} in section {self.name!r}")
        return self._values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self._values.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def keys(self) -> list[str]:
        return sorted(self._values)

    def set(self, key: str, value: Any) -> None:
        self._values[key] = value

    def section(self, name: str, title: str | None = None) -> "ConfigSection":
        """Return the unique sub-section *name* (with *title*, if given)."""
        matches = [
            s
            for s in self._subsections.get(name, [])
            if title is None or s.title == title
        ]
        if not matches:
            raise KeyError(f"no section {name!r}" + (f" titled {title!r}" if title else ""))
        if len(matches) > 1:
            raise KeyError(f"ambiguous section {name!r}: {len(matches)} matches; pass a title")
        return matches[0]

    def sections(self, name: str | None = None) -> list["ConfigSection"]:
        if name is None:
            return [s for group in self._subsections.values() for s in group]
        return list(self._subsections.get(name, []))

    def add_subsection(self, sub: "ConfigSection") -> None:
        self._subsections.setdefault(sub.name, []).append(sub)

    def as_dict(self) -> dict:
        """Plain-dict view (sub-sections become lists under their name)."""
        out: dict[str, Any] = dict(self._values)
        for name, subs in self._subsections.items():
            out[name] = [s.as_dict() for s in subs]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        title = f" {self.title!r}" if self.title else ""
        return f"<ConfigSection {self.name}{title} options={sorted(self._values)}>"


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect(self, kind: str, value: str | None = None) -> Token:
        tok = self._next()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise ConfigError(f"expected {want!r}, got {tok.value!r}", line=tok.line)
        return tok

    def parse_value(self) -> tuple[Any, int]:
        tok = self._next()
        if tok.kind == "STRING":
            return tok.value, tok.line
        if tok.kind == "NUMBER":
            text = tok.value
            try:
                if any(ch in text for ch in ".eE") and not text.lstrip("+-").isdigit():
                    return float(text), tok.line
                return int(text), tok.line
            except ValueError as exc:
                raise ConfigError(f"bad number literal {text!r}", line=tok.line) from exc
        if tok.kind == "IDENT":
            low = tok.value.lower()
            if low in ("true", "yes", "on"):
                return True, tok.line
            if low in ("false", "no", "off"):
                return False, tok.line
            # bare-word string (libconfuse allows unquoted single words)
            return tok.value, tok.line
        if tok.kind == "PUNCT" and tok.value == "{":
            items: list[Any] = []
            if self._peek().kind == "PUNCT" and self._peek().value == "}":
                self._next()
                return items, tok.line
            while True:
                value, _ = self.parse_value()
                items.append(value)
                nxt = self._next()
                if nxt.kind == "PUNCT" and nxt.value == ",":
                    continue
                if nxt.kind == "PUNCT" and nxt.value == "}":
                    return items, tok.line
                raise ConfigError(f"expected ',' or '}}' in list, got {nxt.value!r}", line=nxt.line)
        raise ConfigError(f"expected a value, got {tok.value!r}", line=tok.line)

    def parse_section_body(self, section: ConfigSection, schema: ConfigSchema | None, *, top: bool) -> None:
        seen: set[str] = set()
        while True:
            tok = self._peek()
            if tok.kind == "EOF":
                if not top:
                    raise ConfigError("unexpected end of file inside section", line=tok.line)
                break
            if tok.kind == "PUNCT" and tok.value == "}":
                if top:
                    raise ConfigError("unexpected '}' at top level", line=tok.line)
                self._next()
                break
            if tok.kind != "IDENT":
                raise ConfigError(f"expected option or section name, got {tok.value!r}", line=tok.line)
            name_tok = self._next()
            nxt = self._peek()
            if nxt.kind == "PUNCT" and nxt.value == "=":
                self._next()
                value, line = self.parse_value()
                opt = schema.option(name_tok.value) if schema is not None else None
                if schema is not None:
                    if opt is None:
                        raise ConfigError("unknown option", line=name_tok.line, option=name_tok.value)
                    value = opt.validate(value, line)
                if name_tok.value in seen:
                    raise ConfigError("duplicate option", line=name_tok.line, option=name_tok.value)
                seen.add(name_tok.value)
                section.set(name_tok.value, value)
            else:
                # section: NAME [TITLE] '{' ... '}'
                title = None
                if nxt.kind in ("STRING", "IDENT"):
                    title = self._next().value
                self._expect("PUNCT", "{")
                sub_schema = None
                if schema is not None:
                    if name_tok.value not in schema.sections:
                        raise ConfigError("unknown section", line=name_tok.line, option=name_tok.value)
                    sub_schema = schema.sections[name_tok.value]
                    if schema.section_titled.get(name_tok.value) and title is None:
                        raise ConfigError("section requires a title", line=name_tok.line, option=name_tok.value)
                sub = ConfigSection(name_tok.value, title)
                self.parse_section_body(sub, sub_schema, top=False)
                _apply_defaults(sub, sub_schema)
                section.add_subsection(sub)


def _apply_defaults(section: ConfigSection, schema: ConfigSchema | None) -> None:
    if schema is None:
        return
    for opt in schema.options:
        if opt.name in section:
            continue
        if opt.required:
            raise ConfigError("missing required option", option=opt.name)
        if opt.default is not None or opt.type != "str":
            section.set(opt.name, opt.default)
        else:
            section.set(opt.name, None)


def parse_config(text: str, schema: ConfigSchema | None = None) -> ConfigSection:
    """Parse configuration *text*, optionally validating against *schema*.

    Returns the root :class:`ConfigSection` (named ``"root"``). Without a
    schema the parser accepts any well-formed input; with one, unknown
    options/sections, duplicates, type errors and missing required options
    all raise :class:`~repro.util.errors.ConfigError`.
    """
    parser = _Parser(tokenize(text))
    root = ConfigSection("root")
    parser.parse_section_body(root, schema, top=True)
    _apply_defaults(root, schema)
    return root


def joshua_config_schema() -> ConfigSchema:
    """The schema of ``joshua.conf`` used by :mod:`repro.joshua`.

    Mirrors the knobs the JOSHUA prototype exposed through libconfuse plus
    the reproduction's simulation-calibration options.
    """
    gcs = ConfigSchema(
        options=[
            Option("heartbeat-interval", "float", default=0.25),
            Option("suspect-timeout", "float", default=0.75),
            Option("ordering", "str", default="sequencer", choices=("sequencer", "token")),
        ]
    )
    pbs = ConfigSchema(
        options=[
            Option("scheduler-poll-interval", "float", default=0.05),
            Option("exclusive-allocation", "bool", default=True),
        ]
    )
    root = ConfigSchema(
        options=[
            Option("loglevel", "str", default="INFO", choices=("DEBUG", "INFO", "WARNING", "ERROR")),
            Option("port", "int", default=4412),
            Option("heads", "list", default=None),
            Option("safe-output", "bool", default=True),
        ]
    )
    root.add_section("gcs", gcs)
    root.add_section("pbs", pbs)
    return root
