"""Standard Workload Format (SWF) import/export.

SWF is the Parallel Workloads Archive's interchange format — one line per
job, 18 whitespace-separated fields, ``;`` comment header. Supporting it
makes the reproduction interoperable with two decades of published HPC
traces:

* :func:`export_swf` turns a PBS server's completed history into an SWF
  trace (what a site would publish);
* :func:`parse_swf` / :func:`workload_from_swf` load a trace — archived or
  exported — as a replayable workload, so the benches can drive JOSHUA
  with real submission patterns instead of synthetic ones.

Field reference (0-based index, SWF v2.2):

====  =====================  =============================================
  0   job number             sequential, 1-based
  1   submit time            seconds since trace start
  2   wait time              submit -> start (−1 unknown)
  3   run time               start -> end (−1 unknown)
  4   used processors        (−1 unknown)
  5   avg CPU time           −1 (not modelled)
  6   used memory            −1 (not modelled)
  7   requested processors
  8   requested time         walltime limit, seconds
  9   requested memory       −1
 10   status                 1 completed, 0 failed, 5 cancelled
 11   user id                numeric (hashed from the owner name)
 12   group id               −1
 13   executable number      −1
 14   queue number           numeric (hashed from the queue name)
 15   partition number       −1
 16   preceding job          −1
 17   think time             −1
====  =====================  =============================================
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.pbs.job import Job, JobSpec, JobState, KILLED_EXIT_STATUS
from repro.util.errors import PBSError

__all__ = ["SWFJob", "export_swf", "parse_swf", "workload_from_swf"]

_FIELD_COUNT = 18


@dataclass(frozen=True)
class SWFJob:
    """One parsed SWF record (the fields this library uses)."""

    job_number: int
    submit_time: float
    wait_time: float
    run_time: float
    requested_procs: int
    requested_time: float
    status: int

    @property
    def completed(self) -> bool:
        return self.status == 1


def _stable_id(name: str, modulus: int = 9973) -> int:
    return zlib.crc32(name.encode("utf-8")) % modulus


def _status_of(job: Job) -> int:
    if job.exit_status == KILLED_EXIT_STATUS or "deleted" in job.comment:
        return 5  # cancelled
    if job.exit_status == 0:
        return 1  # completed
    return 0  # failed


def export_swf(jobs: list[Job], *, origin: float | None = None, site: str = "repro-joshua") -> str:
    """Render finished *jobs* as an SWF trace (submission order).

    Jobs that never reached COMPLETE are skipped — SWF records history,
    not live state. ``origin`` rebases submit times (default: the first
    submission becomes t=0).
    """
    finished = sorted(
        (j for j in jobs if j.state is JobState.COMPLETE),
        key=lambda j: (j.submit_time, j.sequence),
    )
    if origin is None:
        origin = finished[0].submit_time if finished else 0.0
    lines = [
        f"; SWF trace exported by {site}",
        "; Version: 2.2",
        f"; Computer: simulated Beowulf cluster ({site})",
        "; Acknowledge: JOSHUA reproduction (IEEE CLUSTER 2006)",
        f"; MaxJobs: {len(finished)}",
    ]
    for number, job in enumerate(finished, start=1):
        submit = job.submit_time - origin
        wait = (job.start_time - job.submit_time) if job.start_time is not None else -1
        run = (
            (job.end_time - job.start_time)
            if job.start_time is not None and job.end_time is not None
            else -1
        )
        fields = [
            number,
            _fmt(submit),
            _fmt(wait),
            _fmt(run),
            len(job.exec_nodes) or -1,
            -1,
            -1,
            job.spec.nodes,
            _fmt(job.spec.walltime),
            -1,
            _status_of(job),
            _stable_id(job.spec.owner),
            -1,
            -1,
            _stable_id(job.spec.queue),
            -1,
            -1,
            -1,
        ]
        lines.append(" ".join(str(f) for f in fields))
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.3f}"


def parse_swf(text: str) -> list[SWFJob]:
    """Parse SWF text into records; raises :class:`PBSError` on malformed
    lines (with line numbers, because archive files do get mangled)."""
    records: list[SWFJob] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        parts = line.split()
        if len(parts) != _FIELD_COUNT:
            raise PBSError(
                f"SWF line {lineno}: expected {_FIELD_COUNT} fields, got {len(parts)}"
            )
        try:
            records.append(
                SWFJob(
                    job_number=int(parts[0]),
                    submit_time=float(parts[1]),
                    wait_time=float(parts[2]),
                    run_time=float(parts[3]),
                    requested_procs=int(parts[7]),
                    requested_time=float(parts[8]),
                    status=int(parts[10]),
                )
            )
        except ValueError as exc:
            raise PBSError(f"SWF line {lineno}: {exc}") from exc
    return records


def workload_from_swf(
    text: str,
    *,
    max_jobs: int | None = None,
    max_nodes: int | None = None,
    time_scale: float = 1.0,
):
    """Build a replayable :class:`~repro.bench.workloads.TraceWorkload`.

    ``time_scale`` compresses (<1) or stretches (>1) submission times —
    archived month-long traces replay in simulated minutes at 1/1000.
    Requested node counts are clamped to ``max_nodes`` (the simulated
    cluster is usually smaller than the traced one). Runtime uses the
    trace's *actual* run time when known, else the requested limit.
    """
    from repro.bench.workloads import TraceWorkload

    entries = []
    for record in parse_swf(text):
        if max_jobs is not None and len(entries) >= max_jobs:
            break
        nodes = max(1, record.requested_procs)
        if max_nodes is not None:
            nodes = min(nodes, max_nodes)
        runtime = record.run_time if record.run_time > 0 else record.requested_time
        if runtime <= 0:
            runtime = 60.0
        entries.append(
            (
                record.submit_time * time_scale,
                JobSpec(
                    name=f"swf-{record.job_number}",
                    nodes=nodes,
                    walltime=runtime * time_scale,
                ),
            )
        )
    return TraceWorkload(tuple(entries))
