"""The PBS mom: per-compute-node job execution daemon.

Reproduces the behaviours the paper's prototype leaned on:

* **multi-server reporting** (TORQUE v2.0p1): one mom serves every head
  node's PBS server and broadcasts each job's obituary to all of them, so
  replicated servers that only *emulated* a job's start still learn it
  finished;
* **prologue hooks**: scripts run before the user job. JOSHUA's ``jmutex``
  is such a hook — it decides, via the group communication system, whether
  this particular server's start attempt actually executes the job
  (``"run"``) or merely pretends to (``"emulate"``). Without hooks, a
  duplicate start attempt for a job that is already running is rejected,
  which is exactly the plain-TORQUE behaviour that makes naive multi-head
  replication unsafe;
* **the §5 obituary bug**: the paper found moms "did not simply ignore a
  failed head node, but rather kept the current job in running status until
  it returned to service". ``legacy_obit_retry=True`` reproduces that: the
  job stays in the mom's running set until *every* registered server has
  acknowledged the obituary. The default (``False``) is the fixed behaviour
  the TORQUE developers promised: give up on a server after a deadline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.cluster.daemon import Daemon
from repro.net.address import Address
from repro.obs.collector import collector_of
from repro.pbs.job import KILLED_EXIT_STATUS
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.pbs.wire import (
    AdminServers,
    JobObit,
    JobStartReq,
    JobStartResp,
    KillJobReq,
    SimpleResp,
)
from repro.rpc import rpc_state
from repro.rpc.wire import Reply, Request
from repro.sim.process import Process
from repro.util.errors import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["PBSMom", "PrologueHook"]

#: Family name for per-obituary acknowledgement ports (allocated from the
#: simulation-scoped counter state — see :func:`repro.rpc.rpc_state`).
_OBIT_PORT_FAMILY = "obit-port"
_OBIT_PORT_START = 16000

#: A prologue hook: generator taking (mom, start request) and returning
#: "run" or "emulate".
PrologueHook = Callable[["PBSMom", JobStartReq], Generator]


class _RunningJob:
    def __init__(self, req: JobStartReq, process: Process, started_at: float):
        self.req = req
        self.process = process
        self.started_at = started_at
        self.killed = False


class PBSMom(Daemon):
    """Execution daemon on one compute node."""

    def __init__(
        self,
        node: "Node",
        *,
        servers: list[Address],
        port: int = 15002,
        service_times: ServiceTimes = ERA_2006,
        prologue_hooks: list[PrologueHook] | None = None,
        on_job_start: Callable[[JobStartReq], None] | None = None,
        on_job_done: Callable[[JobObit], None] | None = None,
        legacy_obit_retry: bool = False,
        obit_retry_interval: float = 0.5,
        obit_give_up: float = 5.0,
    ):
        super().__init__(node, "pbs_mom", port)
        self.servers = list(servers)
        self.times = service_times
        self.prologue_hooks = list(prologue_hooks or [])
        self.on_job_start = on_job_start
        self.on_job_done = on_job_done
        self.legacy_obit_retry = legacy_obit_retry
        self.obit_retry_interval = obit_retry_interval
        self.obit_give_up = obit_give_up
        #: job_id -> running record (real executions only).
        self.active: dict[str, _RunningJob] = {}
        #: job_id -> servers whose attempts were emulated.
        self.emulated: dict[str, set[Address]] = {}
        #: job_id -> obit, kept for late duplicate start attempts.
        self.finished: dict[str, JobObit] = {}
        self.stats = {"runs": 0, "emulations": 0, "rejections": 0, "kills": 0,
                      "obits_sent": 0, "obits_abandoned": 0}

    # -- main loop ----------------------------------------------------------

    def run(self):
        while True:
            delivery = yield self.endpoint.recv()
            frame = delivery.payload
            if isinstance(frame, Request):
                request_id, payload = frame.request_id, frame.payload
                if isinstance(payload, JobStartReq):
                    self.spawn(
                        self._handle_start(delivery.src, request_id, payload),
                        name=f"{self.tag}-start-{payload.job_id}",
                    )
                elif isinstance(payload, KillJobReq):
                    self._handle_kill(payload)
                    self.endpoint.send(delivery.src, Reply(request_id, SimpleResp()))
                else:
                    self.endpoint.send(
                        delivery.src, Reply(request_id, SimpleResp(False, "bad request"))
                    )
                continue
            if isinstance(frame, AdminServers):
                # The HA layer announces the current set of head-node
                # servers after a membership change; obituaries follow it.
                self.servers = list(frame.servers)
                continue
            if not isinstance(frame, tuple) or not frame:
                continue
            if frame[0] == "ADMIN-PURGE":
                # Failover managers abort orphaned jobs: the applications
                # lost their parent server and must be restarted (the
                # active/standby semantics the paper contrasts against).
                for job_id, record in sorted(self.active.items()):
                    if record.process is not None:
                        record.process.interrupt("purged")
                    self.active.pop(job_id, None)
                    self.stats["kills"] += 1
            # OBIT-ACK frames are consumed by the per-obit senders via
            # endpoint callbacks; see _broadcast_obit.

    # -- start attempts -----------------------------------------------------------

    def _handle_start(self, src: Address, request_id: int, req: JobStartReq):
        yield self.kernel.timeout(self.times.mom_start)
        if req.job_id in self.finished:
            # Late attempt for a job that already ran to completion here:
            # report emulation and re-send the obit to the asking server.
            self.stats["emulations"] += 1
            self._reply_start(src, request_id, JobStartResp(True, "emulate", "already finished"))
            if req.server is not None:
                self._send_obit_to(req.server, self.finished[req.job_id])
            return

        decision = "run"
        for hook in self.prologue_hooks:
            decision = yield from hook(self, req)
            if decision != "run":
                break

        if decision == "run" and req.job_id in self.finished:
            # The job ran to completion *while the prologue was deciding*
            # (the jmutex RPC takes real time). Without this re-check the
            # attempt would slip past both the already-finished guard above
            # and the already-running guard below, and the job would really
            # execute a second time.
            self.stats["emulations"] += 1
            self._reply_start(src, request_id, JobStartResp(True, "emulate", "already finished"))
            if req.server is not None:
                self._send_obit_to(req.server, self.finished[req.job_id])
            return

        if decision == "run" and req.job_id in self.active:
            # Plain TORQUE (no jmutex): a duplicate start is an error.
            if self.prologue_hooks:
                decision = "emulate"
            else:
                self.stats["rejections"] += 1
                self._reply_start(
                    src, request_id, JobStartResp(False, "run", "job already running")
                )
                return

        collector = collector_of(self.node.network)
        if decision == "emulate":
            self.stats["emulations"] += 1
            self.emulated.setdefault(req.job_id, set())
            if req.server is not None:
                self.emulated[req.job_id].add(req.server)
            if collector is not None:
                collector.job_event(self.node.name, "job.emulated",
                                    job_id=req.job_id,
                                    server=str(req.server))
            self._reply_start(src, request_id, JobStartResp(True, "emulate"))
            return

        # Actually execute.
        self.stats["runs"] += 1
        if collector is not None:
            collector.job_event(self.node.name, "job.launched",
                                job_id=req.job_id, server=str(req.server))
        process = self.spawn(self._execute(req), name=f"{self.tag}-job-{req.job_id}")
        self.active[req.job_id] = _RunningJob(req, process, self.kernel.now)
        if self.on_job_start is not None:
            self.on_job_start(req)
        self._reply_start(src, request_id, JobStartResp(True, "run"))

    def _reply_start(self, src: Address, request_id: int, response: JobStartResp) -> None:
        if self.running and not self.endpoint.closed:
            self.endpoint.send(src, Reply(request_id, response))

    def _execute(self, req: JobStartReq):
        record = None
        exit_status = req.spec.exit_status
        try:
            yield self.kernel.timeout(req.spec.walltime)
        except Interrupt as interrupt:
            if interrupt.cause != "killed":
                raise  # daemon/node teardown, not a qdel: die with the node
            exit_status = KILLED_EXIT_STATUS
        record = self.active.get(req.job_id)
        started_at = record.started_at if record else self.kernel.now
        yield self.kernel.timeout(self.times.mom_finish)
        self.active.pop(req.job_id, None)
        obit = JobObit(
            job_id=req.job_id,
            exit_status=exit_status,
            exec_nodes=req.exec_nodes,
            started_at=started_at,
            finished_at=self.kernel.now,
        )
        self.finished[req.job_id] = obit
        collector = collector_of(self.node.network)
        if collector is not None:
            collector.job_event(self.node.name, "job.obit",
                                job_id=req.job_id, exit_status=exit_status,
                                ran_s=round(obit.finished_at - obit.started_at, 6))
        if self.on_job_done is not None:
            self.on_job_done(obit)
        self.spawn(self._broadcast_obit(obit), name=f"{self.tag}-obit-{req.job_id}")

    def _send_obit_to(self, server: Address, obit: JobObit) -> None:
        """Re-deliver a finished job's obituary to one (late) server."""

        def once():
            yield from self._obit_loop(obit, {server})

        self.spawn(once(), name=f"{self.tag}-reobit-{obit.job_id}")

    def _handle_kill(self, req: KillJobReq) -> None:
        record = self.active.get(req.job_id)
        if record is None or record.process is None:
            return
        if not record.killed:
            record.killed = True
            self.stats["kills"] += 1
            record.process.interrupt("killed")

    # -- obituaries ------------------------------------------------------------------

    def _broadcast_obit(self, obit: JobObit):
        """Send the obituary to every registered server until acknowledged.

        Fixed behaviour: abandon a server after ``obit_give_up`` seconds.
        Legacy (bug-compatible) behaviour: never abandon — and keep the job
        in our running set while any server is unreached, exactly the
        deficiency §5 describes.
        """
        if self.legacy_obit_retry:
            # Bug-compatible: the job lingers in our active set while any
            # head node is unreached.
            self.active[obit.job_id] = _RunningJob(
                JobStartReq(obit.job_id, None, obit.exec_nodes), None, obit.started_at
            )
        try:
            yield from self._obit_loop(obit, set(self.servers))
        finally:
            if self.legacy_obit_retry:
                self.active.pop(obit.job_id, None)

    def _obit_loop(self, obit: JobObit, pending: set):
        acked: set[Address] = set()

        def on_ack(delivery):
            frame = delivery.payload
            if (
                isinstance(frame, tuple)
                and len(frame) == 2
                and frame[0] == "OBIT-ACK"
                and frame[1] == obit.job_id
            ):
                acked.add(delivery.src)

        # Acks arrive on a dedicated per-obit endpoint so the daemon's main
        # mailbox never has to demultiplex them.
        port = rpc_state(self.node.network).next_id(
            _OBIT_PORT_FAMILY, _OBIT_PORT_START
        )
        ack_endpoint = self.node.network.bind(self.node.name, port)
        ack_endpoint.on_delivery(on_ack)
        started = self.kernel.now
        try:
            while pending - acked:
                for server in sorted(pending - acked):
                    ack_endpoint.send(server, ("OBIT", obit))
                    self.stats["obits_sent"] += 1
                yield self.kernel.timeout(self.obit_retry_interval)
                if not self.legacy_obit_retry and self.kernel.now - started > self.obit_give_up:
                    self.stats["obits_abandoned"] += len(pending - acked)
                    break
        finally:
            ack_endpoint.close()
