"""The PBS user commands: ``qsub``, ``qstat``, ``qdel``, ``qsig``, ``qhold``,
``qrls``.

Each command is a coroutine (drive it with ``kernel.run(until=process)`` or
``yield from`` inside another process) that charges the calibrated client
startup cost — the fork/exec/parse/connect time that dominated a 2006 qsub
invocation — then performs one RPC against the server.

:class:`PBSClient` binds the commands to a node and a server address; it is
what the examples, the benchmarks, and JOSHUA's baseline comparisons use to
play "the user".
"""

from __future__ import annotations

from typing import Generator

from repro.net.address import Address
from repro.net.network import Network
from repro.pbs.job import JobSpec
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.pbs.wire import (
    DeleteReq,
    HoldReq,
    ReleaseReq,
    RerunReq,
    SignalReq,
    StatReq,
    SubmitReq,
    rpc_call,
)

__all__ = ["PBSClient"]


class PBSClient:
    """User-command runner on one node, bound to one PBS server."""

    def __init__(
        self,
        network: Network,
        node: str,
        server: Address,
        *,
        service_times: ServiceTimes = ERA_2006,
        timeout: float = 3.0,
        retries: int = 1,
    ):
        self.network = network
        self.node = node
        self.server = server
        self.times = service_times
        self.timeout = timeout
        self.retries = retries

    def _call(self, payload) -> Generator:
        yield self.network.kernel.timeout(self.times.client_startup)
        response = yield from rpc_call(
            self.network, self.node, self.server, payload,
            timeout=self.timeout, retries=self.retries,
        )
        return response

    def qsub(self, spec: JobSpec | None = None, **spec_kwargs) -> Generator:
        """Submit a job; returns the assigned job id."""
        spec = spec or JobSpec(**spec_kwargs)
        response = yield from self._call(SubmitReq(spec))
        return response.job_id

    def qstat(self, job_id: str | None = None) -> Generator:
        """Status rows for one job (or all jobs)."""
        response = yield from self._call(StatReq(job_id))
        return list(response.rows)

    def qdel(self, job_id: str) -> Generator:
        """Delete a job (killing it if running)."""
        response = yield from self._call(DeleteReq(job_id))
        return response.job_id

    def qhold(self, job_id: str) -> Generator:
        yield from self._call(HoldReq(job_id))

    def qrls(self, job_id: str) -> Generator:
        yield from self._call(ReleaseReq(job_id))

    def qsig(self, job_id: str, signal: str = "SIGTERM") -> Generator:
        response = yield from self._call(SignalReq(job_id, signal))
        return response.detail

    def qrerun(self, job_id: str) -> Generator:
        """Force a running job back to the queue (operator command)."""
        yield from self._call(RerunReq(job_id))
