"""PBS accounting log.

Mirrors TORQUE's ``server_priv/accounting`` records: one line per lifecycle
event, queryable by tests and by the RAS metric collectors in
:mod:`repro.ha.raslog`. Event codes follow PBS: ``Q`` queued, ``S`` started,
``E`` ended, ``D`` deleted, ``H`` held, ``R`` released (requeued/recovered
jobs log an extra ``Q``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AccountingRecord", "AccountingLog"]


@dataclass(frozen=True)
class AccountingRecord:
    time: float
    event: str  # Q S E D H R
    job_id: str
    info: dict = field(default_factory=dict)

    def format(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.info.items()))
        return f"{self.time:.6f};{self.event};{self.job_id};{extras}"


class AccountingLog:
    """Append-only event log with small query helpers."""

    EVENTS = {"Q", "S", "E", "D", "H", "R"}

    def __init__(self):
        self.records: list[AccountingRecord] = []

    def record(self, time: float, event: str, job_id: str, **info) -> None:
        if event not in self.EVENTS:
            raise ValueError(f"unknown accounting event {event!r}")
        self.records.append(AccountingRecord(time, event, job_id, info))

    def for_job(self, job_id: str) -> list[AccountingRecord]:
        return [r for r in self.records if r.job_id == job_id]

    def events(self, event: str) -> list[AccountingRecord]:
        return [r for r in self.records if r.event == event]

    def job_turnaround(self, job_id: str) -> float | None:
        """Seconds from first Q to E; None if the job has not ended."""
        queued = [r.time for r in self.for_job(job_id) if r.event == "Q"]
        ended = [r.time for r in self.for_job(job_id) if r.event == "E"]
        if not queued or not ended:
            return None
        return ended[-1] - queued[0]

    def dump(self) -> str:
        return "\n".join(r.format() for r in self.records)
