"""The Maui scheduler stand-in.

Configured exactly as the paper configured Maui for the prototype (§4):

* **FIFO policy** (Maui's default) — "to produce deterministic scheduling
  behavior on all active head nodes";
* **exclusive access** — "Maui is configured to give each job exclusive
  access to our test cluster to produce deterministic allocation behavior":
  at most one job runs on the cluster at a time, and it gets whichever nodes
  it asked for, chosen deterministically (lexicographically first free).

Determinism is the load-bearing property: every replicated server must make
identical scheduling decisions from identical queues, otherwise the
replicas' states diverge. The ``exclusive`` flag can be turned off (an
extension the paper mentions lifting in the future); allocation then packs
jobs onto free nodes, still deterministically.

The scheduler runs as its own daemon and talks to its server over the wire
(Maui is a separate process speaking the PBS scheduler API), polling every
``sched_poll_interval``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.daemon import Daemon
from repro.net.address import Address
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.pbs.wire import RpcTimeout, RunJobReq, SchedPollReq, rpc_call
from repro.util.errors import PBSError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["MauiScheduler", "fifo_decide"]


def fifo_decide(rows: list[dict], node_free: list[tuple[str, bool]], *, exclusive: bool) -> tuple[str, tuple[str, ...]] | None:
    """Pure scheduling decision: which job to start where, or ``None``.

    Exposed as a function so tests (and the replicated-state argument) can
    check determinism directly: same inputs, same decision, no hidden state.
    """
    running = [r for r in rows if r["state"] in ("R", "E")]
    if exclusive and running:
        return None
    free_nodes = [name for name, free in node_free if free]
    candidates = [r for r in rows if r["state"] == "Q"]
    if not candidates:
        return None
    # Strict FIFO: only the head of the queue is considered. A large job
    # that does not fit blocks everything behind it — no backfill, which is
    # part of what keeps replicated schedulers deterministic.
    row = candidates[0]
    if row["nodes"] <= len(free_nodes):
        return row["job_id"], tuple(sorted(free_nodes)[: row["nodes"]])
    return None


class MauiScheduler(Daemon):
    """Polling FIFO scheduler bound to one PBS server."""

    def __init__(
        self,
        node: "Node",
        *,
        server: Address,
        port: int = 15004,
        service_times: ServiceTimes = ERA_2006,
        exclusive: bool = True,
    ):
        super().__init__(node, "maui", port)
        self.server = server
        self.times = service_times
        self.exclusive = exclusive
        self.stats = {"cycles": 0, "dispatches": 0, "dispatch_failures": 0}

    def run(self):
        while True:
            yield self.kernel.timeout(self.times.sched_poll_interval)
            self.stats["cycles"] += 1
            try:
                poll = yield from rpc_call(
                    self.node.network, self.node.name, self.server, SchedPollReq(),
                    timeout=1.0,
                )
            except (RpcTimeout, PBSError):
                continue  # server briefly unavailable; poll again
            yield self.kernel.timeout(self.times.sched_cycle)
            decision = fifo_decide(
                list(poll.rows), list(poll.node_free), exclusive=self.exclusive
            )
            if decision is None:
                continue
            job_id, exec_nodes = decision
            try:
                response = yield from rpc_call(
                    self.node.network, self.node.name, self.server,
                    RunJobReq(job_id, exec_nodes), timeout=4.0,
                )
            except (RpcTimeout, PBSError):
                self.stats["dispatch_failures"] += 1
                continue
            if response.ok:
                self.stats["dispatches"] += 1
            else:
                self.stats["dispatch_failures"] += 1
