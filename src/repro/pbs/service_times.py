"""Calibrated service-time constants for the circa-2006 testbed.

The paper's hardware was dual Pentium III 450 MHz with local IDE disks and
Fast Ethernet. Absolute times in this reproduction come from these constants
— fitted once so that the *single-head plain-TORQUE* baseline lands near the
paper's measured 98 ms submission latency and 93-102 ms/job burst throughput
(Figures 10 and 11) — after which every multi-head number is a prediction of
the model, not a fit (see EXPERIMENTS.md for the comparison).

Breakdown behind the qsub figure: a ``qsub`` on that era's hardware spends
most of its time forking/execing the client binary and parsing, then a
server round trip with queue insert and a synchronous write of the job file
to ``server_priv``. We split 98 ms as ~42 ms client start + ~0.5 ms LAN round
trip + ~40 ms server processing + ~15 ms synchronous disk write.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServiceTimes", "ERA_2006"]


@dataclass(frozen=True)
class ServiceTimes:
    """Processing costs (seconds) charged by the PBS daemons and clients."""

    #: Client-binary startup + argument parsing + connect (qsub/qstat/...).
    client_startup: float = 0.042
    #: Server-side handling of a job submission (queue insert, validation).
    qsub_process: float = 0.040
    #: Synchronous job-file write to server_priv on submission/state change.
    disk_write: float = 0.015
    #: Server-side handling of a status query (no disk).
    qstat_process: float = 0.012
    #: Server-side handling of a deletion / hold / release / signal.
    qdel_process: float = 0.020
    #: Server work to dispatch a job to a mom.
    run_process: float = 0.010
    #: Mom-side prologue/startup cost before user code runs.
    mom_start: float = 0.030
    #: Mom-side epilogue + obituary preparation after user code exits.
    mom_finish: float = 0.020
    #: Scheduler poll period (Maui's RMPOLLINTERVAL, scaled down).
    sched_poll_interval: float = 0.100
    #: Scheduler decision time per cycle.
    sched_cycle: float = 0.005

    def scaled(self, factor: float) -> "ServiceTimes":
        """All costs multiplied by *factor* (for faster-hardware what-ifs)."""
        return ServiceTimes(
            client_startup=self.client_startup * factor,
            qsub_process=self.qsub_process * factor,
            disk_write=self.disk_write * factor,
            qstat_process=self.qstat_process * factor,
            qdel_process=self.qdel_process * factor,
            run_process=self.run_process * factor,
            mom_start=self.mom_start * factor,
            mom_finish=self.mom_finish * factor,
            sched_poll_interval=self.sched_poll_interval,
            sched_cycle=self.sched_cycle * factor,
        )


#: The default: fitted to the paper's testbed (see module docstring).
ERA_2006 = ServiceTimes()
