"""The PBS server daemon (TORQUE ``pbs_server`` stand-in).

Responsibilities, mirroring the real thing where the experiments can tell:

* accept user commands (submit/stat/delete/hold/release/signal) over the
  wire, charging calibrated processing time per request and writing the job
  queue synchronously to the node's disk on every mutation;
* accept ``RunJobReq`` from the scheduler, dispatch the job to the mom on
  its first allocated node (the "mother superior"), track node allocation;
* accept obituaries from moms — including obituaries for jobs *this* server
  only ever saw started in emulation, which is how a replicated server
  learns its jobs finished (TORQUE v2.0p1 multi-server behaviour);
* recover its queue from disk on restart; running jobs found during
  recovery are requeued — "applications have to be restarted" (paper §1).

Request handling is idempotent per RPC id (a cached response is replayed on
client retry), so client-side retransmission cannot double-submit a job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.daemon import Daemon
from repro.net.address import Address
from repro.pbs.accounting import AccountingLog
from repro.pbs.job import Job, JobSpec, JobState, KILLED_EXIT_STATUS
from repro.pbs.queue import JobQueue
from repro.pbs.service_times import ERA_2006, ServiceTimes
from repro.pbs.wire import (
    DeleteReq,
    DeleteResp,
    ErrorResp,
    HoldReq,
    JobObit,
    JobStartReq,
    KillJobReq,
    LoadStateReq,
    PurgeReq,
    ReleaseReq,
    RerunReq,
    RunJobReq,
    RunJobResp,
    SchedPollReq,
    SchedPollResp,
    SignalReq,
    SimpleResp,
    StatReq,
    StatResp,
    SubmitReq,
    SubmitResp,
    rpc_call,
)
from repro.rpc import ResponseCache, RpcDispatcher
from repro.util.errors import InvalidJobStateError, PBSError, UnknownJobError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["PBSServer", "PBS_SERVER_PORT", "PBS_MOM_PORT"]

PBS_SERVER_PORT = 15001
PBS_MOM_PORT = 15002


class PBSServer(Daemon):
    """One PBS server instance on a head node.

    Parameters
    ----------
    node:
        Hosting head node.
    moms:
        Addresses of the PBS mom on every compute node.
    server_name:
        Suffix of generated job ids (``"7.torque"``). Replicated JOSHUA
        deployments give every server the same logical name so replayed
        submissions produce identical ids on every head — this reproduction's
        concession to the paper's observation that host-specific state makes
        replica construction painful.
    service_times:
        Calibrated processing costs.
    requeue_on_recovery:
        Jobs found RUNNING in the recovered queue are requeued (default,
        the paper's restart semantics) instead of marked complete-lost.
    """

    def __init__(
        self,
        node: "Node",
        *,
        moms: list[Address],
        server_name: str = "torque",
        port: int = PBS_SERVER_PORT,
        service_times: ServiceTimes = ERA_2006,
        requeue_on_recovery: bool = True,
    ):
        super().__init__(node, "pbs_server", port)
        self.moms = list(moms)
        self.server_name = server_name
        self.times = service_times
        self.requeue_on_recovery = requeue_on_recovery
        self.jobs = JobQueue()
        self.accounting = AccountingLog()
        self.next_seq = 1
        #: compute node name -> currently-allocated job id (None = free).
        self.allocations: dict[str, str | None] = {
            mom.node: None for mom in self.moms
        }
        #: Observers of job lifecycle events: callback(event, job).
        self._observers = []
        self.stats = {"submitted": 0, "completed": 0, "deleted": 0, "recovered": 0}
        self.rpc = self._build_dispatcher()
        self._recover()

    def _build_dispatcher(self) -> RpcDispatcher:
        """Typed request routing with the calibrated per-request delays.

        The response cache makes request handling idempotent per RPC id (a
        cached response is replayed on client retry), so client-side
        retransmission cannot double-submit a job.
        """
        t = self.times

        def on_error(exc):
            if isinstance(exc, UnknownJobError):
                return ErrorResp("unknown-job", str(exc))
            if isinstance(exc, InvalidJobStateError):
                return ErrorResp("bad-state", str(exc))
            if isinstance(exc, PBSError):
                return ErrorResp("pbs-error", str(exc))
            return None  # re-raise

        def fallback(src, request_id, payload):
            return ErrorResp(
                "bad-request", f"unknown request {type(payload).__name__}"
            )

        rpc = RpcDispatcher(
            self, cache=ResponseCache(), on_error=on_error, fallback=fallback
        )
        reg = rpc.register
        reg(SubmitReq, lambda s, r, p: self._do_submit(p),
            delay=t.qsub_process + t.disk_write)
        reg(StatReq, lambda s, r, p: self._do_stat(p), delay=t.qstat_process)
        reg(DeleteReq, lambda s, r, p: self._do_delete(p),
            delay=t.qdel_process + t.disk_write)
        reg(HoldReq, lambda s, r, p: self._do_hold(p),
            delay=t.qdel_process + t.disk_write)
        reg(ReleaseReq, lambda s, r, p: self._do_release(p),
            delay=t.qdel_process + t.disk_write)
        reg(SignalReq, lambda s, r, p: self._do_signal(p), delay=t.qdel_process)
        reg(RerunReq, lambda s, r, p: self._do_rerun(p),
            delay=t.qdel_process + t.disk_write)
        reg(LoadStateReq, lambda s, r, p: self._do_load_state(p),
            delay=t.disk_write)
        reg(PurgeReq, lambda s, r, p: self._do_purge(p), delay=t.disk_write)
        reg(SchedPollReq, lambda s, r, p: self._do_sched_poll(),
            delay=t.qstat_process)
        reg(RunJobReq, lambda s, r, p: self._do_run(p), delay=t.run_process)
        return rpc

    # -- persistence -------------------------------------------------------

    def _disk_key(self) -> str:
        return f"pbs.{self.server_name}"

    def _persist(self) -> None:
        self.node.disk.write(
            self._disk_key(),
            {"jobs": self.jobs.snapshot(), "next_seq": self.next_seq},
        )

    def _recover(self) -> None:
        saved = self.node.disk.read(self._disk_key())
        if not saved:
            return
        self.next_seq = saved["next_seq"]
        for job in saved["jobs"]:
            if job.state in (JobState.RUNNING, JobState.EXITING):
                if self.requeue_on_recovery:
                    job = job.transition(
                        JobState.QUEUED,
                        start_time=None,
                        exec_nodes=(),
                        comment="requeued after server recovery",
                    )
                    self.stats["recovered"] += 1
                else:
                    job = job.transition(
                        JobState.COMPLETE,
                        end_time=self.kernel.now,
                        exit_status=-1,
                        comment="lost in server failure",
                    )
            self.jobs.add(job)

    # -- observability -------------------------------------------------------

    def observe(self, callback) -> None:
        """Register ``callback(event: str, job: Job)`` for Q/S/E/D events."""
        self._observers.append(callback)

    def _notify(self, event: str, job: Job) -> None:
        self.accounting.record(self.kernel.now, event, job.job_id)
        for observer in list(self._observers):
            observer(event, job)

    # -- main loop --------------------------------------------------------------

    def run(self):
        while True:
            delivery = yield self.endpoint.recv()
            frame = delivery.payload
            if self.rpc.handle_frame(delivery.src, frame):
                continue
            if not isinstance(frame, tuple) or not frame:
                continue
            if frame[0] == "OBIT" and isinstance(frame[1], JobObit):
                self._handle_obit(delivery.src, frame[1])

    # -- command implementations ---------------------------------------------------

    def _do_submit(self, req: SubmitReq) -> SubmitResp:
        if req.force_job_id is not None:
            job_id = req.force_job_id
            forced_seq = int(job_id.split(".", 1)[0])
            self.next_seq = max(self.next_seq, forced_seq + 1)
        else:
            job_id = f"{self.next_seq}.{self.server_name}"
            self.next_seq += 1
        job = Job(job_id, req.spec, submit_time=self.kernel.now)
        self.jobs.add(job)
        self._persist()
        self.stats["submitted"] += 1
        self._notify("Q", job)
        return SubmitResp(job_id)

    def _do_stat(self, req: StatReq) -> StatResp:
        if req.job_id is None:
            return StatResp(tuple(self.jobs.to_wire()))
        return StatResp((self.jobs.get(req.job_id).stat_row(),))

    def _do_delete(self, req: DeleteReq):
        job = self.jobs.get(req.job_id)
        if job.state is JobState.COMPLETE:
            raise InvalidJobStateError(job.job_id, job.state.value, "delete")
        if job.state in (JobState.RUNNING, JobState.EXITING):
            # Ask the mother superior to kill it; completion arrives as an
            # ordinary obituary with the killed exit status.
            mom = self._mom_for(job.exec_nodes[0])
            job = job.transition(JobState.EXITING, comment="qdel")
            self.jobs.update(job)
            self._persist()
            yield from rpc_call(
                self.node.network, self.node.name, mom, KillJobReq(job.job_id),
                timeout=1.0,
            )
        else:
            job = job.transition(
                JobState.COMPLETE,
                end_time=self.kernel.now,
                exit_status=None,
                comment="deleted by user",
            )
            self.jobs.update(job)
            self._persist()
            self.stats["deleted"] += 1
            self._notify("D", job)
        return DeleteResp(job.job_id)

    def _do_hold(self, req: HoldReq) -> SimpleResp:
        job = self.jobs.get(req.job_id)
        job = job.transition(JobState.HELD, comment="user hold")
        self.jobs.update(job)
        self._persist()
        self._notify("H", job)
        return SimpleResp()

    def _do_release(self, req: ReleaseReq) -> SimpleResp:
        job = self.jobs.get(req.job_id)
        job = job.transition(JobState.QUEUED, comment="released")
        self.jobs.update(job)
        self._persist()
        self._notify("R", job)
        return SimpleResp()

    def _do_signal(self, req: SignalReq) -> SimpleResp:
        # The paper notes qsig does not change managed state; JOSHUA leaves
        # it to plain PBS. We acknowledge without simulating process-level
        # signal effects.
        job = self.jobs.get(req.job_id)
        if job.state is not JobState.RUNNING:
            raise InvalidJobStateError(job.job_id, job.state.value, "signal")
        return SimpleResp(detail=f"signal {req.signal} delivered")

    def _do_rerun(self, req: RerunReq) -> SimpleResp:
        job = self.jobs.get(req.job_id)
        if job.state not in (JobState.RUNNING, JobState.EXITING):
            raise InvalidJobStateError(job.job_id, job.state.value, "rerun")
        for node_name in job.exec_nodes:
            if self.allocations.get(node_name) == job.job_id:
                self.allocations[node_name] = None
        job = job.transition(
            JobState.QUEUED,
            start_time=None,
            exec_nodes=(),
            comment="requeued by qrerun",
        )
        self.jobs.update(job)
        self._persist()
        self._notify("R", job)
        return SimpleResp()

    def _do_purge(self, req: PurgeReq) -> SimpleResp:
        if req.stride > 1:
            # Shard-scoped wipe: only this replica unit's stripe of the job
            # namespace goes; other shards' jobs and the id counter stay.
            doomed = [
                job.job_id
                for job in self.jobs
                if (int(job.job_id.split(".", 1)[0]) - 1) % req.stride == req.lane
            ]
            for job_id in doomed:
                self.jobs.remove(job_id)
                for node_name, owner in sorted(self.allocations.items()):
                    if owner == job_id:
                        self.allocations[node_name] = None
            self._persist()
            return SimpleResp(detail=f"purged {len(doomed)} jobs (stripe)")
        count = len(self.jobs)
        self.jobs = JobQueue()
        self.next_seq = 1
        for node_name in self.allocations:
            self.allocations[node_name] = None
        self._persist()
        return SimpleResp(detail=f"purged {count} jobs")

    def _do_load_state(self, req: LoadStateReq) -> SimpleResp:
        if not req.merge and len(self.jobs):
            raise PBSError("load-state requires an empty server")
        for job in req.jobs:
            if req.merge and job.job_id in self.jobs:
                self.jobs.update(job)
            else:
                self.jobs.add(job)
            if job.state in (JobState.RUNNING, JobState.EXITING):
                for node_name in job.exec_nodes:
                    if node_name in self.allocations:
                        self.allocations[node_name] = job.job_id
        if req.merge:
            self.next_seq = max(self.next_seq, req.next_seq)
        else:
            self.next_seq = req.next_seq
        self._persist()
        return SimpleResp(detail=f"loaded {len(req.jobs)} jobs")

    def _do_sched_poll(self) -> SchedPollResp:
        node_free = tuple(
            (name, allocated is None) for name, allocated in sorted(self.allocations.items())
        )
        return SchedPollResp(tuple(self.jobs.to_wire()), node_free)

    def _do_run(self, req: RunJobReq):
        job = self.jobs.get(req.job_id)
        if job.state is not JobState.QUEUED:
            return RunJobResp(False, f"job state is {job.state.value}")
        for node_name in req.exec_nodes:
            if node_name not in self.allocations:
                return RunJobResp(False, f"unknown node {node_name}")
            if self.allocations[node_name] is not None:
                return RunJobResp(False, f"node {node_name} busy")
        for node_name in req.exec_nodes:
            self.allocations[node_name] = job.job_id
        mom = self._mom_for(req.exec_nodes[0])
        start = JobStartReq(job.job_id, job.spec, tuple(req.exec_nodes), self.address)
        try:
            response = yield from rpc_call(
                self.node.network, self.node.name, mom, start, timeout=2.0, retries=1
            )
        except PBSError as exc:
            for node_name in req.exec_nodes:
                self.allocations[node_name] = None
            return RunJobResp(False, f"mom unreachable: {exc}")
        if not response.ok:
            for node_name in req.exec_nodes:
                self.allocations[node_name] = None
            return RunJobResp(False, response.detail)
        job = self.jobs.get(req.job_id)
        job = job.transition(
            JobState.RUNNING,
            start_time=self.kernel.now,
            exec_nodes=tuple(req.exec_nodes),
            run_count=job.run_count + 1,
            comment=f"started ({response.mode})",
        )
        self.jobs.update(job)
        self._persist()
        self._notify("S", job)
        return RunJobResp(True, response.mode)

    def _mom_for(self, node_name: str) -> Address:
        for mom in self.moms:
            if mom.node == node_name:
                return mom
        raise PBSError(f"no mom registered for node {node_name}")

    # -- obituaries -----------------------------------------------------------------

    def _handle_obit(self, src: Address, obit: JobObit) -> None:
        # Always acknowledge: the mom retries until we do.
        self.endpoint.send(src, ("OBIT-ACK", obit.job_id))
        if obit.job_id not in self.jobs:
            return  # e.g. obit for a job deleted from this replica
        job = self.jobs.get(obit.job_id)
        if job.state is JobState.COMPLETE:
            return  # duplicate obit
        if job.state is JobState.QUEUED:
            # We never saw it start (recovered server): record the start so
            # state stays coherent, then complete it.
            job = job.transition(
                JobState.RUNNING,
                start_time=obit.started_at,
                exec_nodes=tuple(obit.exec_nodes),
                run_count=job.run_count + 1,
            )
        job = job.transition(
            JobState.COMPLETE,
            end_time=obit.finished_at,
            exit_status=obit.exit_status,
            comment="killed" if obit.exit_status == KILLED_EXIT_STATUS else "finished",
        )
        self.jobs.update(job)
        # Free every local allocation held by this job — not only the
        # nodes the obituary names: a replicated server whose (emulated)
        # dispatch chose different nodes than the actual execution must
        # not leak its own allocation records.
        for node_name, owner in sorted(self.allocations.items()):
            if owner == obit.job_id:
                self.allocations[node_name] = None
        self._persist()
        self.stats["completed"] += 1
        self._notify("E", job)
