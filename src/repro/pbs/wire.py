"""PBS wire protocol: the request/response frame types.

All client↔server and server↔mom traffic rides in the typed
:class:`~repro.rpc.wire.Request` / :class:`~repro.rpc.wire.Reply`
envelope, carried by the shared :mod:`repro.rpc` substrate. :func:`rpc_call`
and :class:`RpcTimeout` are kept here as thin aliases for backward
compatibility — the implementation (ephemeral-port/request-id allocation,
timeout/retry policy, per-simulation counters) lives in
:mod:`repro.rpc.client`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.net.address import Address
from repro.net.codec import register_wire_types
from repro.net.network import Network
from repro.pbs.job import JobSpec
from repro.rpc import call as _substrate_call
from repro.rpc.client import register_error_response
from repro.rpc.errors import RpcTimeout

__all__ = [
    "SubmitReq", "SubmitResp",
    "StatReq", "StatResp",
    "DeleteReq", "DeleteResp",
    "HoldReq", "ReleaseReq", "SignalReq", "RerunReq", "LoadStateReq", "PurgeReq",
    "AdminServers",
    "SimpleResp",
    "RunJobReq", "RunJobResp",
    "SchedPollReq", "SchedPollResp",
    "JobStartReq", "JobStartResp", "KillJobReq", "JobObit",
    "ErrorResp",
    "rpc_call", "RpcTimeout",
]


# -- user command requests ---------------------------------------------------


@dataclass(frozen=True)
class SubmitReq:
    spec: JobSpec
    #: Replay-mode state transfer forces the original job id so replicated
    #: servers stay id-compatible (the stand-in for the prototype's
    #: configuration-file surgery when cloning a TORQUE server).
    force_job_id: str | None = None


@dataclass(frozen=True)
class SubmitResp:
    job_id: str


@dataclass(frozen=True)
class StatReq:
    job_id: str | None = None  # None = all jobs


@dataclass(frozen=True)
class StatResp:
    rows: tuple


@dataclass(frozen=True)
class DeleteReq:
    job_id: str


@dataclass(frozen=True)
class DeleteResp:
    job_id: str


@dataclass(frozen=True)
class HoldReq:
    job_id: str


@dataclass(frozen=True)
class ReleaseReq:
    job_id: str


@dataclass(frozen=True)
class SignalReq:
    job_id: str
    signal: str = "SIGTERM"


@dataclass(frozen=True)
class RerunReq:
    """``qrerun``: force a RUNNING job back to QUEUED (PBS operator command;
    JOSHUA uses it to recover a job whose launch-mutex winner died before
    the launch happened)."""

    job_id: str


@dataclass(frozen=True)
class PurgeReq:
    """Admin wipe of job state (a rejoining replica discards its stale
    recovered queue before state transfer — the 'configuration file
    modification' half of the prototype's replica-cloning procedure).

    With ``stride == 0`` (default) everything is wiped and the id counter
    reset. A sharded replica unit resyncs only its own stripe of the job
    namespace: ``stride = <shard count>, lane = <shard id>`` purges exactly
    the jobs whose sequence number satisfies ``(seq - 1) % stride == lane``,
    leaving the other shards' jobs and the id counter untouched.
    """

    stride: int = 0
    lane: int = 0


@dataclass(frozen=True)
class LoadStateReq:
    """Admin bulk-load of job state (snapshot state transfer — the
    extension mode foreshadowed by the paper's 'unified and location
    independent state description' future work).

    ``merge=False`` (default) demands an empty server — the unsharded
    clone-a-replica semantics. ``merge=True`` adds/overwrites only the
    carried jobs and ratchets ``next_seq`` to the max, so one shard's
    snapshot can land without clobbering the other shards' stripes.
    """

    jobs: tuple
    next_seq: int
    merge: bool = False


@dataclass(frozen=True)
class AdminServers:
    """HA layer -> mom: the authoritative head-server set after a
    membership change (obituaries and future start reports follow it)."""

    servers: tuple


@dataclass(frozen=True)
class SimpleResp:
    ok: bool = True
    detail: str = ""


@dataclass(frozen=True)
class ErrorResp:
    """Server-side error relayed to the client (re-raised as PBSError)."""

    kind: str
    message: str


# -- scheduler <-> server ------------------------------------------------------


@dataclass(frozen=True)
class SchedPollReq:
    pass


@dataclass(frozen=True)
class SchedPollResp:
    #: qstat-style rows, submission order.
    rows: tuple
    #: compute node name -> free (True) / busy.
    node_free: tuple


@dataclass(frozen=True)
class RunJobReq:
    job_id: str
    exec_nodes: tuple


@dataclass(frozen=True)
class RunJobResp:
    ok: bool
    detail: str = ""


# -- server <-> mom ------------------------------------------------------------


@dataclass(frozen=True)
class JobStartReq:
    job_id: str
    spec: JobSpec
    exec_nodes: tuple
    #: The requesting server's address — moms report to many servers; this
    #: identifies which server's start attempt this is (JOSHUA's jmutex
    #: decides which attempt actually executes).
    server: Address | None = None


@dataclass(frozen=True)
class JobStartResp:
    ok: bool
    #: "run" if this attempt launched the job, "emulate" if the prologue
    #: decided another server's attempt already had.
    mode: str = "run"
    detail: str = ""


@dataclass(frozen=True)
class KillJobReq:
    job_id: str


@dataclass(frozen=True)
class JobObit:
    """Mom -> every registered server: the job finished."""

    job_id: str
    exit_status: int
    exec_nodes: tuple
    started_at: float
    finished_at: float


# Responses of this type are re-raised client-side as PBSError.
register_error_response(ErrorResp)

register_wire_types(
    SubmitReq, SubmitResp,
    StatReq, StatResp,
    DeleteReq, DeleteResp,
    HoldReq, ReleaseReq, SignalReq, RerunReq, LoadStateReq, PurgeReq,
    AdminServers,
    SimpleResp,
    RunJobReq, RunJobResp,
    SchedPollReq, SchedPollResp,
    JobStartReq, JobStartResp, KillJobReq, JobObit,
    ErrorResp,
)


def rpc_call(
    network: Network,
    node: str,
    server: Address,
    payload: Any,
    *,
    timeout: float = 2.0,
    retries: int = 0,
) -> Generator:
    """Coroutine: one request/response against *server* from *node*.

    Backward-compatible alias for :func:`repro.rpc.call`. Yields simulation
    events; returns the response payload. Raises :class:`RpcTimeout` after
    ``1 + retries`` unanswered attempts and :class:`PBSError` if the server
    answered with :class:`ErrorResp`.
    """
    response = yield from _substrate_call(
        network, node, server, payload, timeout=timeout, retries=retries
    )
    return response
