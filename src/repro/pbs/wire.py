"""PBS wire protocol: request/response frames and the RPC helper.

All client↔server and server↔mom traffic is datagrams of
``("RPC", request_id, payload)`` / ``("RPC-R", request_id, payload)``
tuples. :func:`rpc_call` is the client-side coroutine: bind an ephemeral
port, send, await the matching response, retry on timeout (requests are
idempotent or deduplicated server-side via the request id).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator

from repro.net.address import Address
from repro.net.network import Network
from repro.pbs.job import JobSpec
from repro.util.errors import PBSError

__all__ = [
    "SubmitReq", "SubmitResp",
    "StatReq", "StatResp",
    "DeleteReq", "DeleteResp",
    "HoldReq", "ReleaseReq", "SignalReq", "RerunReq", "LoadStateReq", "PurgeReq",
    "SimpleResp",
    "RunJobReq", "RunJobResp",
    "SchedPollReq", "SchedPollResp",
    "JobStartReq", "JobStartResp", "KillJobReq", "JobObit",
    "ErrorResp",
    "rpc_call", "RpcTimeout",
]

_RPC_COUNTER = itertools.count(1)
_EPHEMERAL_PORT = itertools.count(30000)


# -- user command requests ---------------------------------------------------


@dataclass(frozen=True)
class SubmitReq:
    spec: JobSpec
    #: Replay-mode state transfer forces the original job id so replicated
    #: servers stay id-compatible (the stand-in for the prototype's
    #: configuration-file surgery when cloning a TORQUE server).
    force_job_id: str | None = None


@dataclass(frozen=True)
class SubmitResp:
    job_id: str


@dataclass(frozen=True)
class StatReq:
    job_id: str | None = None  # None = all jobs


@dataclass(frozen=True)
class StatResp:
    rows: tuple


@dataclass(frozen=True)
class DeleteReq:
    job_id: str


@dataclass(frozen=True)
class DeleteResp:
    job_id: str


@dataclass(frozen=True)
class HoldReq:
    job_id: str


@dataclass(frozen=True)
class ReleaseReq:
    job_id: str


@dataclass(frozen=True)
class SignalReq:
    job_id: str
    signal: str = "SIGTERM"


@dataclass(frozen=True)
class RerunReq:
    """``qrerun``: force a RUNNING job back to QUEUED (PBS operator command;
    JOSHUA uses it to recover a job whose launch-mutex winner died before
    the launch happened)."""

    job_id: str


@dataclass(frozen=True)
class PurgeReq:
    """Admin wipe of all job state (a rejoining replica discards its stale
    recovered queue before state transfer — the 'configuration file
    modification' half of the prototype's replica-cloning procedure)."""


@dataclass(frozen=True)
class LoadStateReq:
    """Admin bulk-load of job state (snapshot state transfer — the
    extension mode foreshadowed by the paper's 'unified and location
    independent state description' future work)."""

    jobs: tuple
    next_seq: int


@dataclass(frozen=True)
class SimpleResp:
    ok: bool = True
    detail: str = ""


@dataclass(frozen=True)
class ErrorResp:
    """Server-side error relayed to the client (re-raised as PBSError)."""

    kind: str
    message: str


# -- scheduler <-> server ------------------------------------------------------


@dataclass(frozen=True)
class SchedPollReq:
    pass


@dataclass(frozen=True)
class SchedPollResp:
    #: qstat-style rows, submission order.
    rows: tuple
    #: compute node name -> free (True) / busy.
    node_free: tuple


@dataclass(frozen=True)
class RunJobReq:
    job_id: str
    exec_nodes: tuple


@dataclass(frozen=True)
class RunJobResp:
    ok: bool
    detail: str = ""


# -- server <-> mom ------------------------------------------------------------


@dataclass(frozen=True)
class JobStartReq:
    job_id: str
    spec: JobSpec
    exec_nodes: tuple
    #: The requesting server's address — moms report to many servers; this
    #: identifies which server's start attempt this is (JOSHUA's jmutex
    #: decides which attempt actually executes).
    server: Address | None = None


@dataclass(frozen=True)
class JobStartResp:
    ok: bool
    #: "run" if this attempt launched the job, "emulate" if the prologue
    #: decided another server's attempt already had.
    mode: str = "run"
    detail: str = ""


@dataclass(frozen=True)
class KillJobReq:
    job_id: str


@dataclass(frozen=True)
class JobObit:
    """Mom -> every registered server: the job finished."""

    job_id: str
    exit_status: int
    exec_nodes: tuple
    started_at: float
    finished_at: float


class RpcTimeout(PBSError):
    """No response within the deadline (server down or unreachable)."""


@dataclass
class _Pending:
    response: Any = None
    done: bool = False


def rpc_call(
    network: Network,
    node: str,
    server: Address,
    payload: Any,
    *,
    timeout: float = 2.0,
    retries: int = 0,
) -> Generator:
    """Coroutine: one request/response against *server* from *node*.

    Yields simulation events; returns the response payload. Raises
    :class:`RpcTimeout` after ``1 + retries`` unanswered attempts and
    :class:`PBSError` if the server answered with :class:`ErrorResp`.
    """
    kernel = network.kernel
    endpoint = network.bind(node, next(_EPHEMERAL_PORT))
    try:
        request_id = next(_RPC_COUNTER)
        # One persistent receive event, re-armed after each delivery, so no
        # stale mailbox getter can swallow a response.
        recv_ev = endpoint.recv()
        for _attempt in range(1 + retries):
            endpoint.send(server, ("RPC", request_id, payload))
            deadline = kernel.timeout(timeout)
            while True:
                yield kernel.any_of([recv_ev, deadline])
                if recv_ev.processed:
                    frame = recv_ev.value.payload
                    recv_ev = endpoint.recv()
                    if (
                        isinstance(frame, tuple)
                        and len(frame) == 3
                        and frame[0] == "RPC-R"
                        and frame[1] == request_id
                    ):
                        response = frame[2]
                        if isinstance(response, ErrorResp):
                            raise PBSError(f"{response.kind}: {response.message}")
                        return response
                    continue
                if deadline.processed:
                    break  # retry (same request id: server-side idempotent)
        raise RpcTimeout(f"no response from {server} for {type(payload).__name__}")
    finally:
        endpoint.close()
