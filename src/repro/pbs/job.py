"""PBS job model: specifications, states, lifecycle records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.net.codec import register_wire_enum, register_wire_types
from repro.util.errors import PBSError

__all__ = ["JobState", "JobSpec", "Job"]


class JobState(enum.Enum):
    """PBS job states (the single-letter codes ``qstat`` prints)."""

    QUEUED = "Q"
    RUNNING = "R"
    EXITING = "E"
    COMPLETE = "C"
    HELD = "H"
    WAITING = "W"

    @property
    def is_terminal(self) -> bool:
        return self is JobState.COMPLETE


#: Exit status PBS reports for a job killed by the server (SIGTERM + 256..).
KILLED_EXIT_STATUS = 271


@dataclass(frozen=True)
class JobSpec:
    """What the user submits (the interesting subset of ``qsub`` options).

    ``walltime`` doubles as the simulated execution duration — the "script"
    of a simulated job is simply how long it runs and what exit status it
    returns.
    """

    name: str = "STDIN"
    owner: str = "user"
    nodes: int = 1
    walltime: float = 60.0
    queue: str = "batch"
    exit_status: int = 0
    #: Declared priority; unused by the FIFO policy (Maui default in the
    #: paper) but kept for schedulers an extension might add.
    priority: int = 0

    def __post_init__(self):
        if self.nodes < 1:
            raise PBSError(f"job needs at least one node, got {self.nodes}")
        if self.walltime <= 0:
            raise PBSError(f"walltime must be positive, got {self.walltime}")


@dataclass(frozen=True)
class Job:
    """A job as tracked by a PBS server. Immutable; transitions produce a
    new record (making accidental shared mutation across 'the wire'
    impossible — important when several replicated servers track the same
    job)."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None
    exit_status: int | None = None
    exec_nodes: tuple[str, ...] = field(default=())
    comment: str = ""
    #: How many times the job has been (re)started; >1 after a recovery
    #: requeue, which is how "applications have to be restarted" shows up.
    run_count: int = 0

    _LEGAL = {
        JobState.QUEUED: {JobState.RUNNING, JobState.COMPLETE, JobState.HELD, JobState.WAITING},
        JobState.HELD: {JobState.QUEUED, JobState.COMPLETE},
        JobState.WAITING: {JobState.QUEUED, JobState.COMPLETE},
        JobState.RUNNING: {JobState.EXITING, JobState.COMPLETE, JobState.QUEUED},
        JobState.EXITING: {JobState.COMPLETE},
        JobState.COMPLETE: set(),
    }

    def transition(self, new_state: JobState, **updates) -> "Job":
        """Return a copy in *new_state*, validating the PBS state machine."""
        if new_state not in self._LEGAL[self.state]:
            raise PBSError(
                f"illegal transition {self.state.value} -> {new_state.value} for {self.job_id}"
            )
        return replace(self, state=new_state, **updates)

    @property
    def sequence(self) -> int:
        """Numeric part of the job id (``'42.torque'`` -> 42)."""
        return int(self.job_id.split(".", 1)[0])

    def stat_row(self) -> dict:
        """One ``qstat`` output row."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "owner": self.spec.owner,
            "state": self.state.value,
            "queue": self.spec.queue,
            "nodes": self.spec.nodes,
            "walltime": self.spec.walltime,
            "exec_nodes": list(self.exec_nodes),
            "exit_status": self.exit_status,
            "comment": self.comment,
        }


# Job records ride inside LoadStateReq/StateXferResp (state transfer) and
# JobSpec inside every submit; JobState members appear as Job fields.
register_wire_types(JobSpec, Job)
register_wire_enum(JobState)
