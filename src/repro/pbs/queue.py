"""The server-side job queue.

A thin, well-tested container: insertion order is submission order, FIFO
selection respects it, and all mutation goes through explicit methods so
the server can persist on every change. Holding a job removes it from FIFO
eligibility without losing its position (PBS semantics: a released job is
eligible again at its original priority/position).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.pbs.job import Job, JobState
from repro.util.errors import UnknownJobError

__all__ = ["JobQueue"]


class JobQueue:
    """Ordered collection of jobs keyed by job id."""

    def __init__(self):
        self._jobs: dict[str, Job] = {}  # insertion-ordered

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    def add(self, job: Job) -> None:
        if job.job_id in self._jobs:
            raise UnknownJobError(job.job_id)  # pragma: no cover - server bug guard
        self._jobs[job.job_id] = job

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def update(self, job: Job) -> None:
        if job.job_id not in self._jobs:
            raise UnknownJobError(job.job_id)
        self._jobs[job.job_id] = job

    def remove(self, job_id: str) -> Job:
        if job_id not in self._jobs:
            raise UnknownJobError(job_id)
        return self._jobs.pop(job_id)

    def in_state(self, *states: JobState) -> list[Job]:
        wanted = set(states)
        # repro-lint: ignore[R3] submission (insertion) order IS the FIFO queue semantics
        return [j for j in self._jobs.values() if j.state in wanted]

    def first_eligible(self, predicate: Callable[[Job], bool] | None = None) -> Job | None:
        """Oldest QUEUED job (optionally filtered) — the FIFO policy."""
        # repro-lint: ignore[R3] submission (insertion) order IS the FIFO queue semantics
        for job in self._jobs.values():
            if job.state is JobState.QUEUED and (predicate is None or predicate(job)):
                return job
        return None

    def running(self) -> list[Job]:
        return self.in_state(JobState.RUNNING, JobState.EXITING)

    def snapshot(self) -> list[Job]:
        """All jobs in submission order (jobs are immutable; safe to share)."""
        return list(self._jobs.values())

    def to_wire(self) -> list[dict]:
        # repro-lint: ignore[R3] submission (insertion) order IS the FIFO queue semantics
        return [j.stat_row() for j in self._jobs.values()]
