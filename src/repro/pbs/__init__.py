"""PBS-compliant job and resource management — the TORQUE/Maui stand-in.

The paper treats the job/resource manager as a black box reached only
through the PBS service interface (that is the whole point of JOSHUA's
*external* replication). This package reproduces that black box:

* :class:`~repro.pbs.server.PBSServer` — the TORQUE ``pbs_server``
  equivalent: job queue with PBS states (Q/R/E/C/H/W), persistence to the
  node's disk, job dispatch to moms, obituary handling, accounting log.
* :class:`~repro.pbs.scheduler.MauiScheduler` — the Maui equivalent,
  configured exactly as the paper configured it: FIFO policy, one job at a
  time with exclusive access to the whole cluster, for deterministic
  scheduling and allocation across replicated servers.
* :class:`~repro.pbs.mom.PBSMom` — the per-compute-node execution daemon.
  Supports the TORQUE v2.0p1 multi-server feature the prototype relied on:
  one mom reports to *every* head node's server. Prologue hooks are where
  JOSHUA's ``jmutex`` distributed mutual exclusion plugs in.
* :class:`~repro.pbs.commands.PBSClient` — the ``qsub``/``qstat``/``qdel``/
  ``qsig``/``qhold``/``qrls`` user commands.
* :class:`~repro.pbs.service_times.ServiceTimes` — the calibrated
  circa-2006 processing costs that make the single-head baseline land near
  the paper's 98 ms submission latency.

A complete single-head stack is assembled by
:func:`~repro.pbs.stack.build_pbs_stack`.
"""

from repro.pbs.job import Job, JobSpec, JobState
from repro.pbs.queue import JobQueue
from repro.pbs.accounting import AccountingLog, AccountingRecord
from repro.pbs.service_times import ServiceTimes
from repro.pbs.server import PBSServer
from repro.pbs.scheduler import MauiScheduler
from repro.pbs.mom import PBSMom
from repro.pbs.commands import PBSClient
from repro.pbs.stack import build_pbs_stack, PBSStack
from repro.pbs.swf import export_swf, parse_swf, workload_from_swf

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "JobQueue",
    "AccountingLog",
    "AccountingRecord",
    "ServiceTimes",
    "PBSServer",
    "MauiScheduler",
    "PBSMom",
    "PBSClient",
    "build_pbs_stack",
    "PBSStack",
    "export_swf",
    "parse_swf",
    "workload_from_swf",
]
