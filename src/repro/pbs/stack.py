"""Assembly of a complete single-head PBS stack on a cluster.

This is the paper's Figure 1 system: one head node running the PBS server
and the Maui scheduler, moms on every compute node, users submitting from
wherever. The JOSHUA layer (:mod:`repro.joshua`) and the HA baselines
(:mod:`repro.ha`) build their own assemblies on the same daemons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.net.address import Address
from repro.pbs.commands import PBSClient
from repro.pbs.mom import PBSMom
from repro.pbs.scheduler import MauiScheduler
from repro.pbs.server import PBS_MOM_PORT, PBS_SERVER_PORT, PBSServer
from repro.pbs.service_times import ERA_2006, ServiceTimes

__all__ = ["PBSStack", "build_pbs_stack"]


@dataclass
class PBSStack:
    """Handles to a deployed single-head PBS system."""

    cluster: Cluster
    head: Node
    server: PBSServer
    scheduler: MauiScheduler
    moms: list[PBSMom]

    @property
    def server_address(self) -> Address:
        return Address(self.head.name, PBS_SERVER_PORT)

    def client(self, node: str | None = None, **kwargs) -> PBSClient:
        """A PBS client on *node* (default: the head node itself)."""
        return PBSClient(
            self.cluster.network,
            node or self.head.name,
            self.server_address,
            service_times=self.server.times,
            **kwargs,
        )


def build_pbs_stack(
    cluster: Cluster,
    *,
    head: Node | None = None,
    service_times: ServiceTimes = ERA_2006,
    server_name: str = "torque",
    exclusive: bool = True,
    legacy_obit_retry: bool = False,
) -> PBSStack:
    """Deploy server+scheduler on *head* and a mom on every compute node.

    Daemon factories are registered on the nodes, so a node crash/restart
    cycle automatically rebuilds fresh daemon instances (with the server
    recovering its queue from disk).
    """
    head = head or cluster.heads[0]
    mom_addresses = [Address(c.name, PBS_MOM_PORT) for c in cluster.computes]
    server_address = Address(head.name, PBS_SERVER_PORT)

    server = head.add_daemon(
        "pbs_server",
        lambda node: PBSServer(
            node,
            moms=mom_addresses,
            server_name=server_name,
            service_times=service_times,
        ),
    )
    scheduler = head.add_daemon(
        "maui",
        lambda node: MauiScheduler(
            node,
            server=server_address,
            service_times=service_times,
            exclusive=exclusive,
        ),
    )
    moms = [
        compute.add_daemon(
            "pbs_mom",
            lambda node: PBSMom(
                node,
                servers=[server_address],
                service_times=service_times,
                legacy_obit_retry=legacy_obit_retry,
            ),
        )
        for compute in cluster.computes
    ]
    return PBSStack(cluster, head, server, scheduler, moms)
