"""Persistent storage that survives node crashes.

Two flavours, both simple key/value namespaces with deep-copy semantics so a
daemon can never accidentally share a live object with "disk":

* :class:`Disk` — a node's local disk. Survives the node's crash/restart
  cycle (TORQUE persists its job queue this way).
* :class:`SharedStorage` — cluster-shared stable storage, the substrate of
  the active/standby baseline ("service state is saved regularly to some
  shared stable storage", §2 of the paper).

Writes take effect immediately (the simulated fsync cost is folded into the
service-time constants of the daemons that use them).
"""

from __future__ import annotations

import copy
from typing import Any

__all__ = ["Disk", "SharedStorage"]


class Disk:
    """A node-local persistent key/value store."""

    def __init__(self, node_name: str):
        self.node_name = node_name
        self._data: dict[str, Any] = {}

    def write(self, key: str, value: Any) -> None:
        """Persist a deep copy of *value* under *key*."""
        self._data[key] = copy.deepcopy(value)

    def read(self, key: str, default: Any = None) -> Any:
        """Return a deep copy of the stored value (or *default*)."""
        if key not in self._data:
            return default
        return copy.deepcopy(self._data[key])

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self) -> list[str]:
        return sorted(self._data)

    def wipe(self) -> None:
        """Destroy all contents (disk replacement, not crash)."""
        self._data.clear()

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Disk {self.node_name} keys={len(self._data)}>"


class SharedStorage(Disk):
    """Cluster-wide stable storage (e.g. an NFS filer or SAN).

    Identical semantics to :class:`Disk`; kept as its own type so call sites
    document whether state survives only a node or the whole cluster. The
    active/standby baseline checkpoints here; note the paper's observation
    that such a filer is itself a single point of failure unless replicated —
    we model it as never failing, which *favours* the baseline and makes the
    symmetric active/active comparison conservative.
    """

    def __init__(self, name: str = "shared"):
        super().__init__(name)
