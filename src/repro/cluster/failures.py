"""Failure injection: deterministic schedules and MTTF/MTTR processes.

Reproduces both of the paper's fault sources:

* §5: "Failures were simulated by unplugging network cables and by forcibly
  shutting down individual processes" → :class:`FailureSchedule` entries of
  kind ``crash``, ``restart``, ``cut``, ``restore``, ``partition``, ``heal``,
  ``stop_daemon``.
* Figure 12's availability analysis (MTTF 5000 h, MTTR 72 h) → the
  :meth:`FailureInjector.exponential_lifecycle` process, which alternates
  exponentially distributed up-times and repair-times per node and records
  the intervals for empirical availability estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.util.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node

__all__ = ["FailureEvent", "FailureSchedule", "FailureInjector", "UpDownLog"]

_KINDS = {"crash", "restart", "cut", "restore", "partition", "heal", "stop_daemon"}


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled fault.

    ``kind`` ∈ ``crash restart cut restore partition heal stop_daemon``;
    ``target`` names a node (crash/restart/stop_daemon), a ``(a, b)`` pair
    (cut/restore), or a list of node groups (partition). ``detail`` holds the
    daemon name for ``stop_daemon``.
    """

    time: float
    kind: str
    target: object = None
    detail: str | None = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ClusterError(f"unknown failure kind {self.kind!r}")
        if self.time < 0:
            raise ClusterError("failure time must be non-negative")


@dataclass
class FailureSchedule:
    """An ordered list of :class:`FailureEvent`; builder-style helpers."""

    events: list[FailureEvent] = field(default_factory=list)

    def crash(self, time: float, node: str) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "crash", node))
        return self

    def restart(self, time: float, node: str) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "restart", node))
        return self

    def cut(self, time: float, a: str, b: str) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "cut", (a, b)))
        return self

    def restore(self, time: float, a: str, b: str) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "restore", (a, b)))
        return self

    def partition(self, time: float, groups: list[list[str]]) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "partition", groups))
        return self

    def heal(self, time: float) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "heal"))
        return self

    def stop_daemon(self, time: float, node: str, daemon: str) -> "FailureSchedule":
        self.events.append(FailureEvent(time, "stop_daemon", node, daemon))
        return self

    def sorted_events(self) -> list[FailureEvent]:
        return sorted(self.events, key=lambda e: e.time)


@dataclass
class UpDownLog:
    """Recorded up/down intervals of one node (for empirical availability)."""

    node: str
    transitions: list[tuple[float, str]] = field(default_factory=list)

    def record(self, time: float, state: str) -> None:
        self.transitions.append((time, state))

    def downtime(self, horizon: float) -> float:
        """Total seconds down in ``[0, horizon]`` (assumes initially up)."""
        down_total = 0.0
        down_since: float | None = None
        for time, state in self.transitions:
            if time > horizon:
                break
            if state == "down" and down_since is None:
                down_since = time
            elif state == "up" and down_since is not None:
                down_total += time - down_since
                down_since = None
        if down_since is not None:
            down_total += horizon - down_since
        return down_total

    def availability(self, horizon: float) -> float:
        return 1.0 - self.downtime(horizon) / horizon


class FailureInjector:
    """Applies fault schedules and runs stochastic failure processes."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.kernel = cluster.kernel
        self.logs: dict[str, UpDownLog] = {}

    # -- deterministic schedules ------------------------------------------------

    def apply(self, schedule: FailureSchedule) -> None:
        """Spawn a driver process that executes *schedule*."""
        self.kernel.spawn(self._drive(schedule.sorted_events()), name="failure-injector")

    def _drive(self, events: list[FailureEvent]):
        for event in events:
            delay = event.time - self.kernel.now
            if delay > 0:
                yield self.kernel.timeout(delay)
            self._execute(event)

    def _execute(self, event: FailureEvent) -> None:
        network = self.cluster.network
        if event.kind == "crash":
            self.cluster.node(str(event.target)).crash()
        elif event.kind == "restart":
            self.cluster.node(str(event.target)).restart()
        elif event.kind == "cut":
            a, b = event.target  # type: ignore[misc]
            network.partitions.cut_link(a, b)
        elif event.kind == "restore":
            a, b = event.target  # type: ignore[misc]
            network.partitions.restore_link(a, b)
        elif event.kind == "partition":
            network.partitions.set_partitions(event.target)  # type: ignore[arg-type]
        elif event.kind == "heal":
            network.partitions.heal_partitions()
        elif event.kind == "stop_daemon":
            self.cluster.node(str(event.target)).stop_daemon(event.detail or "")

    # -- stochastic lifecycle -------------------------------------------------------

    def exponential_lifecycle(
        self,
        node: "Node",
        *,
        mttf: float,
        mttr: float,
        restart_daemons: bool = True,
    ) -> UpDownLog:
        """Run crash/repair cycles with exponential up/repair times.

        Starts a process that crashes *node* after ``Exp(mttf)`` up-time and
        restarts it after ``Exp(mttr)`` repair time, forever. Returns the
        :class:`UpDownLog` the process appends to; pair with
        ``kernel.run(until=horizon)`` to estimate availability empirically
        (cross-checking Equation 1 and Figure 12).
        """
        if mttf <= 0 or mttr <= 0:
            raise ClusterError("mttf and mttr must be positive")
        log = self.logs.setdefault(node.name, UpDownLog(node.name))
        rng = self.kernel.streams.get(f"failures.{node.name}")

        def lifecycle():
            while True:
                yield self.kernel.timeout(float(rng.exponential(mttf)))
                if node.is_up:
                    node.crash()
                    log.record(self.kernel.now, "down")
                yield self.kernel.timeout(float(rng.exponential(mttr)))
                if not node.is_up:
                    node.restart(daemons=restart_daemons)
                    log.record(self.kernel.now, "up")

        self.kernel.spawn(lifecycle(), name=f"lifecycle-{node.name}")
        return log
