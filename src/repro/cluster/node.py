"""A simulated machine: endpoints, daemons, crash/restart lifecycle.

A :class:`Node` is the unit of failure in the fail-stop model. Crashing a
node:

1. marks it down on the network (in-flight messages to it are dropped,
   its endpoints are closed),
2. stops every daemon on it (interrupting their processes),
3. discards all volatile daemon state — a restarted daemon is a *new*
   instance that must recover from :class:`~repro.cluster.storage.Disk`
   or via protocol-level state transfer (exactly the paper's join problem).

Restarting brings the node back up and restarts its configured daemons from
scratch.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable

from repro.cluster.storage import Disk
from repro.net.network import Network
from repro.util.errors import ClusterError, NodeDown

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.daemon import Daemon

__all__ = ["Node", "NodeState"]


class NodeState(enum.Enum):
    UP = "up"
    DOWN = "down"


class Node:
    """One machine of the cluster.

    Parameters
    ----------
    network:
        The fabric this node attaches to (the node registers itself).
    name:
        Unique hostname, e.g. ``head0`` or ``compute1``.
    role:
        Free-form role tag (``"head"`` / ``"compute"`` / ``"login"``),
        used by builders and reporting.
    """

    def __init__(self, network: Network, name: str, role: str = "node"):
        self.network = network
        self.name = name
        self.role = role
        self.state = NodeState.UP
        self.disk = Disk(name)
        #: Daemon factories re-invoked on restart: name -> factory(node) -> Daemon.
        self._daemon_factories: dict[str, Callable[["Node"], "Daemon"]] = {}
        #: Currently running daemon instances.
        self.daemons: dict[str, "Daemon"] = {}
        #: Lifecycle observers: callback(node, "crash"|"restart").
        self._observers: list[Callable[["Node", str], None]] = []
        self.crash_count = 0
        network.register_node(name)

    @property
    def kernel(self):
        return self.network.kernel

    @property
    def is_up(self) -> bool:
        return self.state == NodeState.UP

    # -- daemon management -------------------------------------------------

    def add_daemon(self, name: str, factory: Callable[["Node"], "Daemon"], *, start: bool = True) -> "Daemon":
        """Register a daemon *factory* under *name*; optionally start it now.

        The factory is re-invoked to build a fresh instance whenever the node
        restarts, so daemons cannot accidentally carry volatile state across
        a crash.
        """
        if name in self._daemon_factories:
            raise ClusterError(f"daemon {name!r} already registered on {self.name}")
        self._daemon_factories[name] = factory
        if start:
            return self.start_daemon(name)
        return None  # type: ignore[return-value]

    def start_daemon(self, name: str) -> "Daemon":
        if not self.is_up:
            raise NodeDown(f"cannot start daemon on crashed node {self.name}")
        if name not in self._daemon_factories:
            raise ClusterError(f"no daemon {name!r} registered on {self.name}")
        if name in self.daemons and self.daemons[name].running:
            raise ClusterError(f"daemon {name!r} already running on {self.name}")
        daemon = self._daemon_factories[name](self)
        self.daemons[name] = daemon
        daemon.start()
        return daemon

    def stop_daemon(self, name: str) -> None:
        """Cleanly stop one daemon (a process kill, not a node crash)."""
        daemon = self.daemons.get(name)
        if daemon is not None and daemon.running:
            daemon.stop()

    def daemon(self, name: str) -> "Daemon":
        if name not in self.daemons:
            raise ClusterError(f"no daemon {name!r} on {self.name}")
        return self.daemons[name]

    # -- lifecycle ------------------------------------------------------------

    def observe(self, callback: Callable[["Node", str], None]) -> None:
        """Register a lifecycle observer (called on crash and restart)."""
        self._observers.append(callback)

    def crash(self) -> None:
        """Fail-stop the node: daemons die instantly, volatile state is lost."""
        if not self.is_up:
            raise ClusterError(f"node {self.name} is already down")
        self.state = NodeState.DOWN
        self.crash_count += 1
        self.kernel.log.warning(self.name, "node crashed")
        for daemon in list(self.daemons.values()):
            if daemon.running:
                daemon._teardown(crashed=True)
        self.daemons.clear()
        self.network.set_node_up(self.name, False)
        for observer in list(self._observers):
            observer(self, "crash")

    def restart(self, *, daemons: bool = True) -> None:
        """Bring the node back up, optionally restarting registered daemons."""
        if self.is_up:
            raise ClusterError(f"node {self.name} is already up")
        self.state = NodeState.UP
        self.network.set_node_up(self.name, True)
        self.kernel.log.info(self.name, "node restarted")
        if daemons:
            for name in self._daemon_factories:
                self.start_daemon(name)
        for observer in list(self._observers):
            observer(self, "restart")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} ({self.role}) {self.state.value}>"
