"""Cluster builder: kernel + network + head/compute/login nodes in one call.

Reproduces the paper's testbed topology (Figures 1–4): a set of head nodes
and a set of compute nodes on one LAN, with an optional separate login node
from which users run the JOSHUA control commands.
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.cluster.storage import SharedStorage
from repro.net.link import FAST_ETHERNET, LOOPBACK, LinkModel
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.util.errors import ClusterError

__all__ = ["Cluster"]


class Cluster:
    """A simulated Beowulf-style cluster.

    Parameters
    ----------
    head_count / compute_count:
        Number of head and compute nodes (``head0..``, ``compute0..``).
    login_node:
        Also create a ``login`` node for running user commands off-head.
    seed:
        Master seed for all randomness in this cluster's kernel.
    lan / loopback:
        Link models (defaults reproduce the paper's Fast Ethernet testbed).
    shared_medium:
        Hub-style wire contention (the paper used a hub).
    strict_errors:
        Forwarded to the kernel; disable only in deliberate kill tests.

    Examples
    --------
    >>> cluster = Cluster(head_count=2, compute_count=2, seed=1)
    >>> [n.name for n in cluster.heads]
    ['head0', 'head1']
    """

    def __init__(
        self,
        *,
        head_count: int = 1,
        compute_count: int = 2,
        login_node: bool = False,
        seed: int = 0,
        lan: LinkModel = FAST_ETHERNET,
        loopback: LinkModel = LOOPBACK,
        shared_medium: bool = True,
        strict_errors: bool = True,
        log_level: str = "WARNING",
        log_echo: bool = False,
        sanitize: bool = False,
    ):
        if head_count < 1:
            raise ClusterError("need at least one head node")
        if compute_count < 0:
            raise ClusterError("compute_count must be non-negative")
        self.kernel = Kernel(
            seed=seed,
            strict_errors=strict_errors,
            log_level=log_level,
            log_echo=log_echo,
            sanitize=sanitize,
        )
        self.network = Network(
            self.kernel, lan=lan, loopback=loopback, shared_medium=shared_medium
        )
        self.heads: list[Node] = [
            Node(self.network, f"head{i}", role="head") for i in range(head_count)
        ]
        self.computes: list[Node] = [
            Node(self.network, f"compute{i}", role="compute") for i in range(compute_count)
        ]
        self.login: Node | None = (
            Node(self.network, "login", role="login") if login_node else None
        )
        #: Cluster-shared stable storage (used by the active/standby model).
        self.shared_storage = SharedStorage()
        #: Name -> node lookup index; rebuilt on miss so callers that append
        #: to ``heads``/``computes`` directly stay correct.
        self._by_name: dict[str, Node] = {n.name: n for n in self.nodes}

    # -- lookups ---------------------------------------------------------------

    @property
    def nodes(self) -> list[Node]:
        extra = [self.login] if self.login is not None else []
        return self.heads + self.computes + extra

    def register_node(self, node: Node) -> None:
        """Index a node added after construction (e.g. ``add_head``)."""
        self._by_name[node.name] = node

    def node(self, name: str) -> Node:
        found = self._by_name.get(name)
        if found is not None:
            return found
        # Miss: the node lists may have been appended to directly.
        self._by_name = {n.name: n for n in self.nodes}
        try:
            return self._by_name[name]
        except KeyError:
            raise ClusterError(f"no node named {name!r}") from None

    def live_heads(self) -> list[Node]:
        return [n for n in self.heads if n.is_up]

    # -- convenience -------------------------------------------------------------

    def run(self, until=None):
        """Forward to :meth:`Kernel.run`."""
        return self.kernel.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster heads={len(self.heads)} computes={len(self.computes)}"
            f" t={self.kernel.now:.3f}>"
        )
