"""Virtual cluster: nodes, daemons, persistent storage, failure injection.

Models the paper's testbed — up to 4 head nodes and 2 compute nodes on one
LAN — as simulation objects:

* :class:`~repro.cluster.node.Node` — a machine that can crash and restart.
  Crashing tears down every daemon and endpoint on the node (fail-stop) and
  wipes volatile state; only the node's :class:`~repro.cluster.storage.Disk`
  survives.
* :class:`~repro.cluster.daemon.Daemon` — base class for long-running
  services (PBS server, mom, joshua, GCS). Handles the start/crash/restart
  lifecycle so protocol code never sees half-dead daemons.
* :class:`~repro.cluster.cluster.Cluster` — builder that wires a kernel, a
  network, N head nodes and M compute nodes together.
* :class:`~repro.cluster.failures.FailureInjector` — deterministic fault
  schedules ("crash head2 at t=12.5") and stochastic MTTF/MTTR failure
  processes for availability experiments.
"""

from repro.cluster.node import Node, NodeState
from repro.cluster.daemon import Daemon
from repro.cluster.cluster import Cluster
from repro.cluster.storage import Disk, SharedStorage
from repro.cluster.failures import FailureInjector, FailureSchedule, FailureEvent

__all__ = [
    "Node",
    "NodeState",
    "Daemon",
    "Cluster",
    "Disk",
    "SharedStorage",
    "FailureInjector",
    "FailureSchedule",
    "FailureEvent",
]
