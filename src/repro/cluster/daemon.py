"""Base class for long-running simulated services.

A :class:`Daemon` owns:

* one network endpoint (bound at construction from ``node`` + ``port``),
* a main-loop process (subclass implements :meth:`run` as a generator),
* any number of helper processes spawned via :meth:`spawn`.

The base class guarantees clean teardown: stopping a daemon (or crashing its
node) interrupts the main loop and every helper, closes the endpoint and
flips :attr:`running` — so protocol code can always assume "if I'm executing,
my endpoint is live". Subclasses override :meth:`on_start`, :meth:`run` and
:meth:`on_stop`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.net.network import Endpoint
from repro.sim.process import Process
from repro.util.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["Daemon"]


class Daemon:
    """A service process bound to one node and one port.

    Parameters
    ----------
    node:
        The hosting node.
    name:
        Daemon name for logging (unique per node by convention).
    port:
        Port to bind; ``None`` for daemons that do their own binding.
    """

    def __init__(self, node: "Node", name: str, port: int | None = None):
        self.node = node
        self.name = name
        self.kernel = node.kernel
        self.log = node.kernel.log
        self.endpoint: Endpoint | None = None
        if port is not None:
            self.endpoint = node.network.bind(node.name, port)
        self.running = False
        self._main: Process | None = None
        self._helpers: list[Process] = []

    # -- identity ------------------------------------------------------------

    @property
    def address(self):
        if self.endpoint is None:
            raise ClusterError(f"daemon {self.tag} has no endpoint")
        return self.endpoint.address

    @property
    def tag(self) -> str:
        """Log tag, e.g. ``joshua@head0``."""
        return f"{self.name}@{self.node.name}"

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            raise ClusterError(f"daemon {self.tag} already running")
        self.running = True
        self.on_start()
        self._main = self.kernel.spawn(self._guarded_run(), name=self.tag)

    def stop(self) -> None:
        """Clean stop (SIGTERM equivalent)."""
        if not self.running:
            return
        self._teardown(crashed=False)

    def _teardown(self, *, crashed: bool) -> None:
        self.running = False
        for helper in self._helpers:
            helper.interrupt("daemon stopped")
        self._helpers.clear()
        if self._main is not None:
            self._main.interrupt("daemon stopped")
        if self.endpoint is not None and not self.endpoint.closed:
            self.endpoint.close()
        try:
            self.on_stop(crashed=crashed)
        except Exception:  # pragma: no cover - subclass bug guard
            if not crashed:
                raise

    def spawn(self, generator: Generator, name: str | None = None) -> Process:
        """Run a helper process that dies with the daemon."""
        process = self.kernel.spawn(generator, name=name or f"{self.tag}-helper")
        # Opportunistic cleanup of finished helpers, then track the new one.
        self._helpers = [p for p in self._helpers if p.is_alive]
        self._helpers.append(process)
        return process

    def _guarded_run(self):
        try:
            yield from self.run()
        except Exception as exc:
            if self.running:
                # A protocol bug, not a teardown: surface it loudly.
                self.log.error(self.tag, f"daemon crashed: {exc!r}")
                self.running = False
                raise

    # -- subclass hooks -----------------------------------------------------------

    def on_start(self) -> None:
        """Called synchronously before the main loop spawns."""

    def run(self) -> Generator:
        """The daemon main loop (generator). Default: sleep forever."""
        while True:
            yield self.kernel.timeout(3600.0)

    def on_stop(self, *, crashed: bool) -> None:
        """Called after teardown. ``crashed`` distinguishes node failure
        from clean stop — on a crash there is no time to flush anything."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Daemon {self.tag} {'running' if self.running else 'stopped'}>"
