"""repro — reproduction of *JOSHUA: Symmetric Active/Active Replication for
Highly Available HPC Job and Resource Management* (IEEE CLUSTER 2006).

Quick tour (see README.md for the full map):

>>> from repro.cluster import Cluster
>>> from repro.joshua import build_joshua_stack
>>> cluster = Cluster(head_count=2, compute_count=2, login_node=True, seed=1)
>>> stack = build_joshua_stack(cluster)
>>> client = stack.client(node="login")

Sub-packages
------------
``repro.sim``      deterministic discrete-event simulation kernel
``repro.net``      simulated LAN: links, partitions, reliable transport
``repro.cluster``  nodes, daemons, disks, failure injection
``repro.gcs``      group communication (Transis stand-in): total order,
                   SAFE delivery, view-synchronous membership
``repro.pbs``      TORQUE/Maui-compatible job & resource management
``repro.joshua``   the paper's contribution: replicated PBS + jmutex
``repro.aa``       the universal active/active wrapper (paper §3)
``repro.pvfs``     replicated PVFS metadata server (paper's follow-on)
``repro.ha``       HA baselines, Equations 1-3, correlated failures, RAS
``repro.bench``    experiment harness for every paper figure
``repro.cli``      ``python -m repro`` experiment runner
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
