"""repro.obs — the passive observability layer.

Sits between ``rpc`` and ``gcs`` in the import-layering contract
(``util → sim → net → rpc → obs → gcs → pbs → joshua``): it consumes the
RPC substrate's hook points and is consumed by the stacks above, which call
into an attached :class:`TraceCollector` — or skip one attribute read when
none is attached (:func:`collector_of` returning ``None``).

Guarantee: observation is *passive*. Attaching the collector and registry
to a simulation changes no event ordering, draws no randomness, and adds
no wire bytes; `tests/integration/test_obs_passive.py` holds the layer to
bit-identical traces.
"""

from repro.obs.collector import (
    TraceCollector,
    attach_collector,
    collector_of,
    detach_collector,
)
from repro.obs.events import PHASE_EDGES, PHASE_ORDER, JobTrace, TraceEvent
from repro.obs.export import (
    collector_records,
    merged_records,
    metric_records,
    to_jsonl,
    write_jsonl,
)
from repro.obs.metrics import (
    ATTEMPT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_from_counts,
)
from repro.obs.recorder import (
    FlightRecorder,
    attach_recorder,
    detach_recorder,
    read_bundle,
    recorder_of,
    timeline_lines,
    write_bundle,
)
from repro.obs.report import (
    job_timeline_lines,
    metrics_summary_lines,
    phase_breakdown_lines,
    rpc_latency_lines,
    shard_breakdown_lines,
    wire_bytes_lines,
)
from repro.obs.timeseries import (
    TimeSeriesSampler,
    attach_timeseries,
    detach_timeseries,
    timeseries_of,
)

__all__ = [
    "TraceCollector",
    "attach_collector",
    "collector_of",
    "detach_collector",
    "TraceEvent",
    "JobTrace",
    "PHASE_EDGES",
    "PHASE_ORDER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "ATTEMPT_BUCKETS",
    "to_jsonl",
    "merged_records",
    "metric_records",
    "collector_records",
    "write_jsonl",
    "job_timeline_lines",
    "phase_breakdown_lines",
    "rpc_latency_lines",
    "metrics_summary_lines",
    "wire_bytes_lines",
    "shard_breakdown_lines",
    "percentile_from_counts",
    "FlightRecorder",
    "attach_recorder",
    "recorder_of",
    "detach_recorder",
    "timeline_lines",
    "write_bundle",
    "read_bundle",
    "TimeSeriesSampler",
    "attach_timeseries",
    "timeseries_of",
    "detach_timeseries",
]
