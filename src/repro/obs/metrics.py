"""Passive metrics: counters, gauges and fixed-bucket histograms.

The :class:`MetricsRegistry` is the numeric half of the observability layer
(:mod:`repro.obs`): protocol hooks feed it per-event increments and latency
observations, keyed by metric *name* plus a small label set (request type,
node, ordering engine, …). Everything here is plain Python arithmetic on
plain containers — no simulation events, no RNG, no I/O — so attaching a
registry to a running simulation cannot perturb it (the passivity contract
enforced by ``tests/integration/test_obs_passive.py``).

Histograms use fixed upper-bound buckets (Prometheus-style): observations
land in the first bucket whose bound is >= the value, with an implicit
+Inf overflow bucket. Quantiles reported by :meth:`Histogram.summary` are
bucket-upper-bound estimates, which is exactly the fidelity a fixed-bucket
histogram can honestly claim.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "ATTEMPT_BUCKETS",
    "percentile_from_counts",
]

#: Default latency buckets (seconds): 1 ms .. 10 s, roughly log-spaced.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for attempt/retry counts.
ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 4.0, 5.0, 8.0, 16.0)


def percentile_from_counts(
    bounds: tuple,
    counts,
    overflow: int,
    count: int,
    p: float,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float:
    """The *p*-th percentile (``0 < p <= 100``) estimated from fixed-bucket
    counts, with linear interpolation inside the target bucket.

    This is the one shared implementation behind
    :meth:`Histogram.percentile` and the per-window percentiles of the
    time-series sampler (which feeds it bucket-count *deltas*). Compared to
    the bucket-upper-bound estimate of :meth:`Histogram.quantile` it
    interpolates between the bucket's lower and upper bound by the rank's
    position within the bucket, clamped to the observed ``minimum`` /
    ``maximum`` when known — a strictly better estimate from the same data.
    """
    if count <= 0:
        return 0.0
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {p}")
    target = p / 100.0 * count
    cumulative = 0
    for index, upper in enumerate(bounds):
        bucket = counts[index]
        cumulative += bucket
        if cumulative >= target:
            lower = bounds[index - 1] if index > 0 else 0.0
            if bucket > 0:
                # Rank position inside this bucket, in (0, 1].
                fraction = (target - (cumulative - bucket)) / bucket
                value = lower + (upper - lower) * fraction
            else:  # pragma: no cover - cumulative only grows on non-empty
                value = upper
            if minimum is not None:
                value = max(value, minimum)
            if maximum is not None:
                value = min(value, maximum)
            return value
    # Target rank lies in the +Inf overflow bucket: the honest point
    # estimate is the observed maximum, falling back to the top bound.
    if maximum is not None:
        return maximum
    return bounds[-1] if bounds else 0.0


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (queue depths, cursors, backlog sizes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max sidecars."""

    __slots__ = ("bounds", "counts", "overflow", "count", "total", "min", "max")

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the *q* quantile (0 < q <= 1)."""
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bound in enumerate(self.bounds):
            cumulative += self.counts[index]
            if cumulative >= target:
                return bound
        return self.max if self.max is not None else self.bounds[-1]

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (``0 < p <= 100``), linearly interpolated
        within the target bucket and clamped to the observed min/max —
        strictly better than the upper-bound estimate of :meth:`quantile`
        (which is retained for backward compatibility)."""
        return percentile_from_counts(
            self.bounds, self.counts, self.overflow, self.count, p,
            minimum=self.min, maximum=self.max,
        )

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "buckets": {str(b): c for b, c in zip(self.bounds, self.counts)},
            "overflow": self.overflow,
            **self.summary(),
        }


class MetricsRegistry:
    """Name + labels -> metric instance, one registry per collector.

    A registry is independent of any simulation: it can be shared across
    back-to-back runs (the benches do, to accumulate per-phase numbers over
    every trial) or created fresh per run (the chaos harness does, so each
    report's numbers are self-contained).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}

    @staticmethod
    def _key(name: str, labels: dict) -> tuple:
        return (name, tuple(sorted(labels.items())))

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(name, labels, Gauge)

    def histogram(self, name: str, *, buckets=LATENCY_BUCKETS, **labels) -> Histogram:
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = Histogram(buckets)
        return metric  # type: ignore[return-value]

    def _get_or_create(self, name: str, labels: dict, cls):
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls()
        return metric

    # -- read side -----------------------------------------------------------

    def find(self, name: str) -> list[tuple[dict, object]]:
        """All (labels, metric) pairs registered under *name*."""
        return sorted(
            ((dict(key[1]), metric) for key, metric in self._metrics.items()
             if key[0] == name),
            key=lambda pair: sorted(pair[0].items()),
        )

    def names(self) -> list[str]:
        return sorted({key[0] for key in self._metrics})

    def snapshot(self) -> list[dict]:
        """JSON-serialisable dump: one record per (name, labels) series."""
        out = []
        for key in sorted(self._metrics, key=lambda k: (k[0], k[1])):
            name, labels = key
            record = {"name": name, "labels": dict(labels)}
            record.update(self._metrics[key].snapshot())  # type: ignore[attr-defined]
            out.append(record)
        return out
