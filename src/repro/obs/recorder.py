"""The flight recorder: bounded per-node rings and postmortem bundles.

A :class:`FlightRecorder` passively keeps the **last K observations per
node** — spans (every :class:`~repro.obs.events.TraceEvent` the collector
records, which includes the GCS lifecycle: failure-detector transitions,
view installs and sequencer handoffs), and wire frames (type / size / src /
dst, from the network's ``on_frame`` hook) — so that when something goes
wrong the seconds *leading up to* the failure are reconstructible, not just
the failure itself. That is the debugging instrument the Microsoft Cluster
Service retrospective credits for making regroup incidents tractable: a
bounded, always-on event log per node.

A **postmortem bundle** is a causally merged (time-sorted) snapshot of all
rings plus the trigger that caused it. Bundles are captured automatically
when

* an :class:`~repro.faults.invariants.InvariantSuite` check fails (the
  suite calls :func:`recorder_of` at its violation site),
* the determinism sanitizer records an
  :class:`~repro.sim.sanitizer.Ambiguity` or
  :class:`~repro.sim.sanitizer.AliasingViolation` (via the sanitizer's
  ``on_finding`` callback), or
* an RPC conversation exhausts its retries (the ``rpc.call`` span with
  ``outcome="timeout"`` the collector emits for every timed-out
  conversation),

and on demand via :meth:`FlightRecorder.capture`. Bundles are written as
JSONL (one header record, then the merged timeline) and rendered
human-readable by :func:`timeline_lines` — the ``repro postmortem``
CLI surface.

**Passivity.** The recorder only appends to plain containers: no simulation
events, no RNG, no wire bytes. ``tests/integration/test_obs_passive.py``
holds runs with the recorder attached to bit-identical wire traces.
"""

from __future__ import annotations

import json
from collections import deque
from typing import TYPE_CHECKING

from repro.obs.collector import attach_collector
from repro.obs.export import dumps_record

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.obs.events import TraceEvent

__all__ = [
    "FlightRecorder",
    "attach_recorder",
    "recorder_of",
    "detach_recorder",
    "timeline_lines",
    "write_bundle",
    "read_bundle",
]

#: Default per-node ring capacity (observations, spans + frames combined).
RING_LIMIT = 512

#: Default cap on retained bundles **per trigger reason**. The *first*
#: failures of each kind are the interesting ones (later ones are usually
#: cascade), and a per-reason cap keeps a flood of one trigger class (e.g.
#: expected RPC timeouts while a head is down) from crowding out a rarer,
#: more serious one (an invariant violation). Past the cap the recorder
#: only counts what it dropped.
MAX_BUNDLES = 8


class FlightRecorder:
    """Bounded per-node observation rings with postmortem capture."""

    def __init__(
        self,
        network: "Network",
        *,
        ring_limit: int = RING_LIMIT,
        max_bundles: int = MAX_BUNDLES,
    ):
        self.network = network
        self.kernel = network.kernel
        self.ring_limit = ring_limit
        self.max_bundles = max_bundles
        #: node name -> ring of record dicts (each shaped like an export
        #: record: ``type`` is ``"span"`` or ``"frame"``).
        self.rings: dict[str, deque] = {}
        #: Captured bundles, oldest first, at most ``max_bundles`` per
        #: distinct trigger reason.
        self.bundles: list[dict] = []
        #: Bundles not retained because their reason's cap was reached.
        self.dropped_bundles = 0
        self._bundle_counts: dict[str, int] = {}
        #: Total observations fed to the rings (monotonic; ring eviction
        #: does not decrement it).
        self.observed = 0

    # -- feed side (hook callbacks) -----------------------------------------

    def _ring(self, node: str) -> deque:
        ring = self.rings.get(node)
        if ring is None:
            ring = self.rings[node] = deque(maxlen=self.ring_limit)
        return ring

    def on_trace_event(self, event: "TraceEvent") -> None:
        """Collector ``on_event`` hook: every span lands in its node's ring;
        an exhausted RPC conversation additionally triggers a capture."""
        self.observed += 1
        self._ring(event.node).append(event.to_dict())
        if event.kind == "rpc.call" and event.fields.get("outcome") == "timeout":
            fields = event.fields
            self.capture(
                "rpc-exhausted",
                f"{fields.get('request')} from {event.node} to "
                f"{fields.get('dst')} gave up after "
                f"{fields.get('attempts')} attempt(s)",
            )

    def on_frame(self, now: float, src, dst, kind: str, size: int) -> None:
        """Network ``on_frame`` hook: offered wire frames, recorded against
        the *sending* node (that is where the causal story unfolds)."""
        self.observed += 1
        self._ring(src.node).append({
            "type": "frame",
            "time": now,
            "node": src.node,
            "src": str(src),
            "dst": str(dst),
            "kind": kind,
            "size": size,
        })

    def on_sanitizer_finding(self, finding) -> None:
        """Sanitizer ``on_finding`` hook: Ambiguity / AliasingViolation."""
        self.capture(
            f"sanitizer-{type(finding).__name__.lower()}", finding.describe()
        )

    # -- capture -------------------------------------------------------------

    def capture(self, reason: str, detail: str = "") -> dict:
        """Snapshot every ring into one causally merged postmortem bundle.

        Always returns the bundle; it is retained in :attr:`bundles` only
        while its *reason* is under :attr:`max_bundles` captures (the count
        of shed later bundles is kept in :attr:`dropped_bundles`).
        """
        records: list[dict] = []
        for node in sorted(self.rings):
            records.extend(self.rings[node])
        # Stable sort: same-time records keep per-node append order, nodes
        # interleave in sorted-name order — deterministic and readable.
        records.sort(key=lambda r: r["time"])
        bundle = {
            "type": "postmortem",
            "reason": reason,
            "detail": detail,
            "time": self.kernel.now,
            "nodes": sorted(self.rings),
            "record_count": len(records),
            "records": records,
        }
        kept = self._bundle_counts.get(reason, 0)
        if kept < self.max_bundles:
            self._bundle_counts[reason] = kept + 1
            self.bundles.append(bundle)
        else:
            self.dropped_bundles += 1
        return bundle


# -- attachment ------------------------------------------------------------


def attach_recorder(
    network: "Network",
    *,
    registry=None,
    ring_limit: int = RING_LIMIT,
    max_bundles: int = MAX_BUNDLES,
) -> FlightRecorder:
    """Attach (or return the already-attached) flight recorder.

    Ensures a collector is attached (the recorder rides its ``on_event``
    stream), registers the network frame hook, and — when the kernel runs
    with ``sanitize=True`` — the sanitizer finding hook.
    """
    existing = recorder_of(network)
    if existing is not None:
        return existing
    collector = attach_collector(network, registry=registry)
    recorder = FlightRecorder(
        network, ring_limit=ring_limit, max_bundles=max_bundles
    )
    collector.on_event.append(recorder.on_trace_event)
    network.on_frame.append(recorder.on_frame)
    sanitizer = network.kernel.sanitizer
    if sanitizer is not None:
        sanitizer.on_finding = recorder.on_sanitizer_finding
    network._obs_recorder = recorder
    return recorder


def recorder_of(network: "Network") -> FlightRecorder | None:
    """The recorder attached to *network*, or ``None`` (the common case —
    unobserved simulations pay one attribute read per trigger site)."""
    return getattr(network, "_obs_recorder", None)


def detach_recorder(network: "Network") -> None:
    """Remove the attached recorder and its hook registrations."""
    recorder = recorder_of(network)
    if recorder is None:
        return
    from repro.obs.collector import collector_of

    collector = collector_of(network)
    if collector is not None and recorder.on_trace_event in collector.on_event:
        collector.on_event.remove(recorder.on_trace_event)
    if recorder.on_frame in network.on_frame:
        network.on_frame.remove(recorder.on_frame)
    sanitizer = network.kernel.sanitizer
    if sanitizer is not None and sanitizer.on_finding == recorder.on_sanitizer_finding:
        sanitizer.on_finding = None
    network._obs_recorder = None


# -- bundle rendering & I/O ------------------------------------------------


def _describe_record(record: dict) -> str:
    kind = record.get("type")
    if kind == "frame":
        return (
            f"FRAME {record.get('kind'):<16} {record.get('src')} -> "
            f"{record.get('dst')} ({record.get('size')}B)"
        )
    fields = record.get("fields") or {}
    extra = "".join(f" {k}={v!r}" for k, v in sorted(fields.items()))
    trace = record.get("trace_id")
    tag = f" [{trace}]" if trace else ""
    return f"span  {record.get('kind'):<16}{tag}{extra}"


def timeline_lines(bundle: dict, *, limit: int | None = None) -> list[str]:
    """Human-readable rendering of one postmortem bundle.

    With *limit*, only the last *limit* timeline records are shown (the
    ones closest to the trigger).
    """
    records = bundle.get("records", [])
    shown = records if limit is None or len(records) <= limit else records[-limit:]
    lines = [
        f"POSTMORTEM [{bundle.get('reason')}] at t={bundle.get('time', 0.0):.4f}",
        f"  {bundle.get('detail')}",
        f"  nodes: {', '.join(bundle.get('nodes', []))} — "
        f"{len(records)} record(s)"
        + ("" if shown is records else f", last {len(shown)} shown"),
    ]
    for record in shown:
        lines.append(
            f"  t={record.get('time', 0.0):.4f} "
            f"[{record.get('node', '?'):<8}] {_describe_record(record)}"
        )
    return lines


def write_bundle(bundle: dict, path) -> int:
    """Write one bundle as JSONL: a header record (the bundle metadata,
    ``records`` elided) followed by the merged timeline, one record per
    line. Returns the number of lines written."""
    header = {k: v for k, v in bundle.items() if k != "records"}
    lines = [dumps_record(header)]
    lines.extend(dumps_record(r) for r in bundle.get("records", []))
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def read_bundle(path) -> dict:
    """Re-assemble a bundle written by :func:`write_bundle`."""
    with open(path) as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"empty postmortem bundle: {path}")
    header = json.loads(lines[0])
    if header.get("type") != "postmortem":
        raise ValueError(f"not a postmortem bundle (header type "
                         f"{header.get('type')!r}): {path}")
    header["records"] = [json.loads(line) for line in lines[1:]]
    return header
