"""Human-readable reporting: job timelines, phase breakdowns, metric tables.

Pure formatting over collector/registry state — returns lists of lines so
the CLI surfaces (``repro trace``, ``repro chaos``) stay in charge of
printing. The phase breakdown table is the Figure-10 analogue: one row per
lifecycle phase with count/mean/p95 over every traced job, separating the
Transis-side cost (ordering) from the PBS-side cost (execute/launch/run).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.events import PHASE_ORDER, JobTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "format_table",
    "job_timeline_lines",
    "phase_breakdown_lines",
    "rpc_latency_lines",
    "metrics_summary_lines",
    "wire_bytes_lines",
    "shard_breakdown_lines",
]


def format_table(headers: list[str], rows: list[list[str]], indent: str = "  ") -> list[str]:
    """Left-aligned fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def render(cells):
        return indent + "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines = [render(headers), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return lines


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}ms"


def job_timeline_lines(trace: JobTrace) -> list[str]:
    """One job's causal timeline: every lifecycle event with +delta from
    the first, then its per-phase decomposition."""
    title = trace.command or "job"
    ids = trace.trace_id + (f" -> {trace.job_id}" if trace.job_id and trace.job_id != trace.trace_id else "")
    lines = [f"{title} {ids}"]
    start = trace.started_at or 0.0
    for event in trace.events:
        extra = {k: v for k, v in event.fields.items() if k not in ("job_id", "command")}
        detail = "".join(f" {k}={v}" for k, v in sorted(extra.items()))
        lines.append(
            f"  t={event.time:>9.4f}s  +{_ms(event.time - start):>9}  "
            f"{event.kind:<13} @{event.node}{detail}"
        )
    phases = trace.phases()
    if phases:
        parts = "  ".join(f"{p}={_ms(phases[p])}" for p in PHASE_ORDER if p in phases)
        lines.append(f"  phases: {parts}")
    return lines


def phase_breakdown_lines(registry: "MetricsRegistry") -> list[str]:
    """Aggregate per-phase latency table (the Figure-10 decomposition)."""
    series = dict_by_label(registry.find("job.phase_s"), "phase")
    rows = []
    for phase in PHASE_ORDER:
        hist = series.get(phase)
        if hist is None or not hist.count:
            continue
        s = hist.summary()
        rows.append([
            phase, str(s["count"]), _ms(s["mean"]), _ms(s["min"]),
            _ms(s["p50"]), _ms(s["p95"]), _ms(s["p99"]), _ms(s["max"]),
        ])
    if not rows:
        return ["  (no job phases observed)"]
    return format_table(
        ["phase", "count", "mean", "min", "p50", "p95", "p99", "max"], rows
    )


def rpc_latency_lines(registry: "MetricsRegistry") -> list[str]:
    """Per-request-type RPC table: calls, retries, timeouts, latency."""
    latency = dict_by_label(registry.find("rpc.client.latency_s"), "request")
    if not latency:
        return ["  (no rpc conversations observed)"]
    retries = {
        labels.get("request"): counter.value
        for labels, counter in registry.find("rpc.client.retries")
    }
    timeouts = {
        labels.get("request"): counter.value
        for labels, counter in registry.find("rpc.client.timeouts")
    }
    rows = []
    for request in sorted(latency):
        hist = latency[request]
        s = hist.summary()
        rows.append([
            request, str(s["count"]),
            str(retries.get(request, 0)), str(timeouts.get(request, 0)),
            _ms(s["mean"]), _ms(s["p50"]), _ms(s["p95"]), _ms(s["max"]),
        ])
    return format_table(
        ["request", "calls", "retries", "timeouts", "mean", "p50", "p95", "max"], rows
    )


def metrics_summary_lines(registry: "MetricsRegistry", prefix: str = "") -> list[str]:
    """Compact one-line-per-series dump of every registered metric."""
    lines = []
    for record in registry.snapshot():
        if prefix and not record["name"].startswith(prefix):
            continue
        labels = ",".join(f"{k}={v}" for k, v in sorted(record["labels"].items()))
        name = f"{record['name']}{{{labels}}}" if labels else record["name"]
        if record["type"] == "histogram":
            value = (
                f"count={record['count']} mean={record['mean']:.6f} "
                f"p95={record['p95']:.6f} max={record['max']:.6f}"
            )
        else:
            value = f"{record['value']}"
        lines.append(f"  {name:<50} {value}")
    return lines or ["  (no metrics recorded)"]


def dict_by_label(pairs, label: str) -> dict:
    """``registry.find()`` output keyed by one label's value."""
    return {labels.get(label): metric for labels, metric in pairs}


def wire_bytes_lines(network) -> list[str]:
    """Per-message-type byte ledger tables: bytes that occupied the wire
    (off-node, post-drop) next to bytes offered to the fabric (pre-drop),
    sorted by wire share."""
    wire = network.wire_bytes_by_type
    offered = network.offered_bytes_by_type
    if not wire and not offered:
        return ["  (no wire traffic observed)"]
    total_wire = sum(wire.values()) or 1
    rows = []
    for kind in sorted(set(wire) | set(offered),
                       key=lambda k: (-wire.get(k, 0), k)):
        rows.append([
            kind,
            str(wire.get(kind, 0)),
            f"{100.0 * wire.get(kind, 0) / total_wire:.1f}%",
            str(offered.get(kind, 0)),
        ])
    rows.append([
        "TOTAL", str(sum(wire.values())), "100.0%",
        str(sum(offered.values())),
    ])
    return format_table(["type", "wire_bytes", "wire%", "offered_bytes"], rows)


def shard_breakdown_lines(
    registry: "MetricsRegistry", shard: int | None = None
) -> list[str]:
    """Per-shard ordering-pipeline table for sharded runs: multicasts,
    deliveries, order assignments and e2e latency per ``shard=`` label.
    With *shard*, only that shard's row is shown (the CLI ``--shard``
    filter). Empty (one informational line) when no shard-labelled series
    exist."""
    shards: dict = {}

    def tally(name: str, field: str) -> None:
        for labels, metric in registry.find(name):
            series_shard = labels.get("shard")
            if series_shard is None:
                continue
            if shard is not None and series_shard != shard:
                continue
            entry = shards.setdefault(
                series_shard,
                {"mcast": 0, "delivered": 0, "ordered": 0, "e2e": None},
            )
            if field == "e2e":
                merged = entry["e2e"]
                if merged is None:
                    entry["e2e"] = metric
                else:
                    # Several nodes' histograms: fold counts for the table.
                    entry["e2e"] = _merge_hist(merged, metric)
            else:
                entry[field] += metric.value

    tally("gcs.multicasts", "mcast")
    tally("gcs.delivered", "delivered")
    tally("gcs.order.assignments", "ordered")
    tally("gcs.e2e.delay_s", "e2e")
    if not shards:
        if shard is not None:
            return [f"  (no series labelled shard={shard})"]
        return ["  (no shard-labelled series — single-group run)"]
    rows = []
    for which in sorted(shards):
        entry = shards[which]
        e2e = entry["e2e"]
        if e2e is not None and e2e.count:
            s = e2e.summary()
            latency = f"{_ms(s['p50'])}/{_ms(s['p95'])}/{_ms(s['p99'])}"
        else:
            latency = "-"
        rows.append([
            str(which), str(entry["mcast"]), str(entry["ordered"]),
            str(entry["delivered"]), latency,
        ])
    return format_table(
        ["shard", "multicasts", "ordered", "delivered", "e2e p50/p95/p99"],
        rows,
    )


def _merge_hist(a: "Histogram", b: "Histogram") -> "Histogram":
    """A fresh histogram holding *a* + *b* (same bounds assumed; used only
    for presentation, never fed back into a registry)."""
    from repro.obs.metrics import Histogram

    merged = Histogram(a.bounds)
    merged.counts = [x + y for x, y in zip(a.counts, b.counts)]
    merged.overflow = a.overflow + b.overflow
    merged.count = a.count + b.count
    merged.total = a.total + b.total
    for source in (a, b):
        if source.min is not None:
            merged.min = source.min if merged.min is None else min(merged.min, source.min)
        if source.max is not None:
            merged.max = source.max if merged.max is None else max(merged.max, source.max)
    return merged
