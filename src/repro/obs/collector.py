"""The per-simulation trace collector: hooks in, spans + metrics out.

One :class:`TraceCollector` hangs off a :class:`~repro.net.network.Network`
(like :func:`repro.rpc.rpc_state`) and is fed by the substrate's hook
points:

* client-side RPC — the ``on_request`` / ``on_response`` hook lists on
  :class:`~repro.rpc.state.RpcState` (a timed-out conversation reports
  through the same path with a :class:`~repro.rpc.state.TimeoutRecord`
  marker, so the collector sees *every* conversation);
* server-side RPC — the per-simulation ``on_dispatch`` /
  ``on_dispatch_done`` hooks every :class:`~repro.rpc.server.RpcDispatcher`
  fires;
* GCS — :meth:`gcs_multicast` / :meth:`gcs_ordered` / :meth:`gcs_delivered`
  called by :class:`~repro.gcs.member.GroupMember` when a collector is
  attached (``collector_of(network)`` returns ``None`` otherwise — one
  attribute read, the stacks above pay nothing when unobserved);
* job lifecycle — :meth:`job_event` / :meth:`job_alias` called from the
  JOSHUA client, serial executor, mutex arbiter and PBS mom.

**Passivity contract.** The collector never spawns a process, never yields
or schedules a simulation event, never draws from an RNG stream, and never
changes a wire payload. Attaching it must leave a simulation's event trace
bit-identical; ``tests/integration/test_obs_passive.py`` enforces exactly
that across normal / membership-churn / partition scenarios.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.obs.events import PHASE_EDGES, JobTrace, TraceEvent
from repro.obs.metrics import ATTEMPT_BUCKETS, MetricsRegistry
from repro.rpc.state import TimeoutRecord, rpc_state

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network

__all__ = ["TraceCollector", "attach_collector", "collector_of", "detach_collector"]

#: Bound on the flat event log (oldest events drop first). Job traces and
#: metrics are aggregate state and not bounded by this.
EVENT_LOG_LIMIT = 200_000

#: Bound on the multicast-sent timestamp map (see :meth:`gcs_multicast`).
MCAST_MAP_LIMIT = 50_000


class TraceCollector:
    """Span + metrics sink for one simulation."""

    def __init__(
        self,
        network: "Network",
        *,
        registry: MetricsRegistry | None = None,
        event_limit: int = EVENT_LOG_LIMIT,
    ):
        self.network = network
        self.kernel = network.kernel
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Flat, bounded, time-ordered event log.
        self.events: deque[TraceEvent] = deque(maxlen=event_limit)
        #: trace_id -> JobTrace, in first-seen order.
        self.jobs: dict[str, JobTrace] = {}
        #: job_id -> trace_id (filled by :meth:`job_alias`).
        self._alias: dict[str, str] = {}
        #: request_id -> [start time, last attempt seen].
        self._rpc_open: dict[int, list] = {}
        #: (daemon tag, request_id) -> dispatch start time.
        self._dispatch_open: dict[tuple, float] = {}
        #: msg_id -> multicast-sent time (insertion-ordered, bounded).
        self._mcast_sent: dict = {}
        #: msg_ids whose first ORDER assignment was already recorded.
        self._ordered_ids: set = set()
        #: Observers ``fn(event)`` invoked with every recorded
        #: :class:`TraceEvent` (the flight recorder registers here).
        self.on_event: list = []

    # -- event plumbing ------------------------------------------------------

    def record(self, kind: str, node: str, trace_id: str | None = None, **fields) -> TraceEvent:
        event = TraceEvent(self.kernel.now, kind, node, trace_id, fields)
        self.events.append(event)
        if self.on_event:
            for hook in self.on_event:
                hook(event)
        return event

    # -- client-side RPC hooks ----------------------------------------------

    def rpc_request(self, node, server, request_id, payload, attempt) -> None:
        request_type = type(payload).__name__
        entry = self._rpc_open.get(request_id)
        if entry is None:
            self._rpc_open[request_id] = [self.kernel.now, attempt]
        else:
            entry[1] = attempt
            self.registry.counter("rpc.client.retries", request=request_type).inc()
        self.registry.counter("rpc.client.requests", request=request_type).inc()
        self.record("rpc.send", node, request=request_type,
                    dst=str(server), attempt=attempt, request_id=request_id)

    def rpc_response(self, node, server, request_id, payload, response) -> None:
        request_type = type(payload).__name__
        started, attempts = self._rpc_open.pop(request_id, (self.kernel.now, 1))
        latency = self.kernel.now - started
        timed_out = isinstance(response, TimeoutRecord)
        outcome = "timeout" if timed_out else "ok"
        self.registry.histogram("rpc.client.latency_s", request=request_type).observe(latency)
        self.registry.histogram(
            "rpc.client.attempts", request=request_type, buckets=ATTEMPT_BUCKETS
        ).observe(float(attempts))
        if timed_out:
            self.registry.counter("rpc.client.timeouts", request=request_type).inc()
        self.record("rpc.call", node, request=request_type, dst=str(server),
                    latency_s=latency, attempts=attempts, outcome=outcome,
                    response=type(response).__name__)

    # -- server-side dispatch hooks -----------------------------------------

    def rpc_dispatch(self, daemon, src, request_id, payload) -> None:
        self._dispatch_open[(daemon.tag, request_id)] = self.kernel.now
        self.registry.counter(
            "rpc.server.dispatch",
            daemon=daemon.name, request=type(payload).__name__,
        ).inc()
        self.record("rpc.dispatch", daemon.node.name,
                    daemon=daemon.tag, request=type(payload).__name__,
                    request_id=request_id, src=str(src))

    def rpc_dispatch_done(self, daemon, src, request_id, payload, response) -> None:
        started = self._dispatch_open.pop((daemon.tag, request_id), None)
        if started is not None:
            self.registry.histogram(
                "rpc.server.handle_s",
                daemon=daemon.name, request=type(payload).__name__,
            ).observe(self.kernel.now - started)

    # -- GCS ordering pipeline ----------------------------------------------
    #
    # Every method takes an optional ``shard`` (the group_id of a sharded
    # deployment's ordering group, ``None`` for single-group runs): sharded
    # spans/metrics carry a ``shard=`` dimension, single-group output stays
    # byte-identical to the historical (unlabelled) form.

    @staticmethod
    def _shard_labels(shard) -> dict:
        return {} if shard is None else {"shard": shard}

    def gcs_multicast(self, node: str, msg_id, service: str, payload,
                      shard: int | None = None) -> None:
        # Stamped at the *original* multicast call — before the DataBatcher
        # can coalesce the command into a later wire frame — so ordering/e2e
        # delay attribution is batching-independent by construction
        # (pinned by tests/unit/test_obs_batching_attribution.py).
        self._mcast_sent[msg_id] = self.kernel.now
        if len(self._mcast_sent) > MCAST_MAP_LIMIT:
            # Trim oldest half; insertion order == send order.
            for key in list(self._mcast_sent)[: MCAST_MAP_LIMIT // 2]:
                del self._mcast_sent[key]
        labels = self._shard_labels(shard)
        self.registry.counter("gcs.multicasts", node=node, service=service,
                              **labels).inc()
        self.record("gcs.mcast", node, msg_id=str(msg_id), service=service,
                    payload=type(payload).__name__, **labels)

    def gcs_batch_flush(self, node: str, count: int, reason: str,
                        shard: int | None = None) -> None:
        """A :class:`~repro.gcs.batching.DataBatcher` flushed *count*
        coalesced multicasts (reason: count/bytes/timer/drain)."""
        labels = self._shard_labels(shard)
        self.registry.counter("gcs.batch.flushes", node=node, reason=reason,
                              **labels).inc()
        self.registry.histogram(
            "gcs.batch.size", node=node, buckets=ATTEMPT_BUCKETS, **labels
        ).observe(float(count))
        self.record("gcs.batch", node, count=count, reason=reason, **labels)

    def gcs_ordered(self, node: str, seq: int, msg_id,
                    shard: int | None = None) -> None:
        labels = self._shard_labels(shard)
        self.registry.counter("gcs.order.assignments", node=node, **labels).inc()
        if msg_id not in self._ordered_ids:
            self._ordered_ids.add(msg_id)
            sent = self._mcast_sent.get(msg_id)
            if sent is not None:
                self.registry.histogram(
                    "gcs.ordering.delay_s", node=node, **labels
                ).observe(self.kernel.now - sent)
        self.record("gcs.order", node, seq=seq, msg_id=str(msg_id), **labels)

    def gcs_delivered(self, node: str, msg, queue_stats: dict,
                      shard: int | None = None) -> None:
        labels = self._shard_labels(shard)
        self.registry.counter("gcs.delivered", node=node, service=msg.service,
                              **labels).inc()
        self.registry.gauge("gcs.delivery.backlog", node=node, **labels).set(
            queue_stats.get("payloads", 0)
        )
        sent = self._mcast_sent.get(msg.msg_id)
        if sent is not None and msg.sender.node == node:
            # End-to-end ordering+stability overhead, measured at the sender
            # (the Transis share of a jsub's latency in Figure 10), timed
            # from the original multicast stamp (batching-independent).
            self.registry.histogram("gcs.e2e.delay_s", node=node,
                                    **labels).observe(self.kernel.now - sent)
        self.record("gcs.deliver", node, msg_id=str(msg.msg_id), seq=msg.seq,
                    view=msg.view_id, service=msg.service,
                    payload=type(msg.payload).__name__, sender=msg.sender.node,
                    **labels)

    # -- GCS lifecycle: failure detector & views -----------------------------

    def gcs_fd(self, node: str, peer: str | None, transition: str,
               shard: int | None = None) -> None:
        """A failure-detector state transition on *node*.

        ``transition`` is one of ``suspect`` / ``forgive`` (per-*peer*) or
        ``dormant`` / ``rearm`` (detector-wide; *peer* is ``None``)."""
        labels = self._shard_labels(shard)
        self.registry.counter("gcs.fd.transitions", node=node,
                              transition=transition, **labels).inc()
        fields = dict(transition=transition, **labels)
        if peer is not None:
            fields["peer"] = peer
        self.record("gcs.fd", node, **fields)

    def gcs_view(self, node: str, view_id: int, members: list,
                 sequencer: str | None, shard: int | None = None) -> None:
        """*node* installed view *view_id*; *sequencer* names the member
        that now orders this group's traffic (``None`` for token ordering),
        making sequencer handoffs visible in the trace."""
        labels = self._shard_labels(shard)
        self.registry.counter("gcs.view.installs", node=node, **labels).inc()
        self.registry.gauge("gcs.view.size", node=node, **labels).set(len(members))
        self.record("gcs.view", node, view=view_id, members=list(members),
                    sequencer=sequencer, **labels)

    # -- JOSHUA read path ----------------------------------------------------

    def joshua_read(self, node: str, *, trace_id: str, mode: str, outcome: str,
                    wait_s: float, lag: int, shard: int | None = None) -> None:
        """A head answered (or punted) a non-ordered ``jstat``.

        ``mode`` is the requested consistency (``eventual`` / ``ryw``);
        ``outcome`` is ``local`` (answered from the local replica) or
        ``fallback`` (deferred past the catch-up deadline and re-routed
        through the ordered stream); ``wait_s`` is the catch-up wait spent
        before answering either way; ``lag`` is the local apply backlog
        (delivered-but-undrained commands) across the gating shards.
        """
        labels = self._shard_labels(shard)
        if outcome == "local":
            self.registry.counter("joshua.read.local", node=node, mode=mode,
                                  **labels).inc()
        else:
            self.registry.counter("joshua.read.ordered_fallback", node=node,
                                  mode=mode, **labels).inc()
        if mode == "ryw":
            self.registry.histogram("joshua.read.catchup_wait_s", node=node,
                                    **labels).observe(wait_s)
        self.registry.gauge("joshua.read.staleness_lag", node=node,
                            **labels).set(float(lag))
        self.record("joshua.read", node, trace_id=trace_id, mode=mode,
                    outcome=outcome, wait_s=wait_s, lag=lag, **labels)

    # -- job lifecycle -------------------------------------------------------

    def job_alias(self, trace_id: str, job_id: str) -> None:
        """Link a PBS job id to the command uuid that created it."""
        self._alias[job_id] = trace_id
        trace = self.jobs.get(trace_id)
        if trace is not None and trace.job_id is None:
            trace.job_id = job_id

    def job_event(
        self,
        node: str,
        kind: str,
        trace_id: str | None = None,
        job_id: str | None = None,
        **fields,
    ) -> None:
        """Record one lifecycle event, resolving *job_id* to its trace.

        Events for a job id never aliased (e.g. plain-PBS jobs in a mixed
        run) open their own trace keyed by the job id itself.
        """
        tid = trace_id if trace_id is not None else self._alias.get(job_id, job_id)
        if tid is None:
            return
        trace = self.jobs.get(tid)
        if trace is None:
            trace = self.jobs[tid] = JobTrace(tid)
        if job_id is not None:
            fields = {"job_id": job_id, **fields}
            if trace.job_id is None:
                trace.job_id = job_id
        if trace.command is None and "command" in fields:
            trace.command = fields["command"]
        fresh = trace.first(kind) is None
        event = self.record(kind, node, trace_id=tid, **fields)
        trace.events.append(event)
        if fresh:
            self._observe_phase(trace, kind, event.time)

    def _observe_phase(self, trace: JobTrace, end_kind: str, end_time: float) -> None:
        """Feed the job-phase histograms on the first occurrence of a
        phase-ending event (per-job breakdowns come from the trace itself)."""
        for phase, (end, start_kind) in PHASE_EDGES.items():
            if end != end_kind:
                continue
            start = trace.first(start_kind)
            if start is not None and end_time >= start.time:
                self.registry.histogram("job.phase_s", phase=phase).observe(
                    end_time - start.time
                )

    # -- read side -----------------------------------------------------------

    def job_traces(self) -> list[JobTrace]:
        """Traces in first-seen order."""
        return list(self.jobs.values())


def attach_collector(
    network: "Network",
    *,
    registry: MetricsRegistry | None = None,
) -> TraceCollector:
    """Attach (or return the already-attached) collector for *network*.

    Registers the RPC hook methods and publishes the collector where the
    GCS / PBS / JOSHUA call sites look it up (:func:`collector_of`).
    """
    existing = collector_of(network)
    if existing is not None:
        return existing
    collector = TraceCollector(network, registry=registry)
    state = rpc_state(network)
    state.on_request.append(collector.rpc_request)
    state.on_response.append(collector.rpc_response)
    state.on_dispatch.append(collector.rpc_dispatch)
    state.on_dispatch_done.append(collector.rpc_dispatch_done)
    network._obs_collector = collector
    return collector


def collector_of(network: "Network") -> TraceCollector | None:
    """The collector attached to *network*, or ``None`` (the common case —
    unobserved simulations pay one attribute read per hook site)."""
    return getattr(network, "_obs_collector", None)


def detach_collector(network: "Network") -> None:
    """Remove the attached collector and its RPC hook registrations."""
    collector = collector_of(network)
    if collector is None:
        return
    state = rpc_state(network)
    for hooks, fn in (
        (state.on_request, collector.rpc_request),
        (state.on_response, collector.rpc_response),
        (state.on_dispatch, collector.rpc_dispatch),
        (state.on_dispatch_done, collector.rpc_dispatch_done),
    ):
        if fn in hooks:
            hooks.remove(fn)
    network._obs_collector = None
