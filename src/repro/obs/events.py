"""Trace events and per-job causal traces.

A :class:`TraceEvent` is one timestamped observation; the collector keeps a
flat bounded log of them plus a :class:`JobTrace` per *causal trace id*.
The trace id is the replicated command UUID (``jsub-login-3``) — already
globally unique, already on the wire — so causality is stitched from
identifiers the protocols carry anyway, and observing a run never adds a
single wire byte. Once the serial executor learns the PBS job id a command
produced, the collector aliases ``job_id -> uuid`` and later lifecycle
events (claims, launches, obituaries — all keyed by job id) land in the
same trace.

Span kinds (see PROTOCOLS.md §7 for the full naming scheme):

* ``rpc.send`` / ``rpc.call`` / ``rpc.dispatch`` — client and server RPC;
* ``gcs.mcast`` / ``gcs.order`` / ``gcs.deliver`` — the ordering pipeline;
* ``job.*`` — the job lifecycle:
  ``sent → received → ordered → executed → acked`` for the command half,
  ``jmutex → claim → decided → launched → obit`` for the launch half.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceEvent", "JobTrace", "PHASE_EDGES", "PHASE_ORDER"]


@dataclass(frozen=True)
class TraceEvent:
    """One observation, stamped with simulated time."""

    time: float
    kind: str
    node: str
    trace_id: str | None = None
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Machine-readable form, shape-compatible with
        :meth:`repro.util.simlog.LogRecord.to_dict` (``type`` discriminates)."""
        return {
            "type": "span",
            "time": self.time,
            "kind": self.kind,
            "node": self.node,
            "trace_id": self.trace_id,
            "fields": dict(self.fields),
        }

    def describe(self) -> str:
        extra = "".join(f" {k}={v!r}" for k, v in sorted(self.fields.items()))
        return f"t={self.time:.4f} {self.kind:<14} {self.node}{extra}"


#: Phase name -> (end event kind, start event kind). A phase is measured
#: between the *first* occurrence of each kind in the trace — the causal
#: decomposition of one jsub's life, directly comparable to Figure 10's
#: latency breakdown (ordering overhead vs. PBS execution vs. reply).
PHASE_EDGES = {
    "submit_rpc": ("job.acked", "job.sent"),
    "ordering": ("job.ordered", "job.received"),
    "execute": ("job.executed", "job.ordered"),
    "reply": ("job.acked", "job.executed"),
    "dispatch": ("job.jmutex", "job.executed"),
    "arbitrate": ("job.decided", "job.jmutex"),
    "launch": ("job.launched", "job.decided"),
    "run": ("job.obit", "job.launched"),
}

#: Presentation order for phase breakdowns.
PHASE_ORDER = [
    "submit_rpc", "ordering", "execute", "reply",
    "dispatch", "arbitrate", "launch", "run",
]


class JobTrace:
    """Every observed event of one causal trace (one command / one job)."""

    __slots__ = ("trace_id", "command", "job_id", "events")

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        #: Command kind ("jsub" / "jdel" / "jstat"), once known.
        self.command: str | None = None
        #: PBS job id, once the executor reported it.
        self.job_id: str | None = None
        self.events: list[TraceEvent] = []

    def first(self, kind: str) -> TraceEvent | None:
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def phases(self) -> dict[str, float]:
        """Per-phase durations (seconds) computable from this trace."""
        out: dict[str, float] = {}
        for phase in PHASE_ORDER:
            end_kind, start_kind = PHASE_EDGES[phase]
            start = self.first(start_kind)
            end = self.first(end_kind)
            if start is not None and end is not None and end.time >= start.time:
                out[phase] = end.time - start.time
        return out

    @property
    def started_at(self) -> float | None:
        return self.events[0].time if self.events else None

    def to_dict(self) -> dict:
        return {
            "type": "job",
            "trace_id": self.trace_id,
            "command": self.command,
            "job_id": self.job_id,
            "phases": self.phases(),
            "events": [e.to_dict() for e in self.events],
        }
