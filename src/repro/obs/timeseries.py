"""Windowed time-series sampling of the metrics registry.

A :class:`TimeSeriesSampler` rides the kernel's ``on_advance`` hook: every
time the clock crosses a window boundary (default 1 simulated second) it
closes the window and records, for every active series in the registry,

* **counters** — the per-window increment (a rate, once divided by the
  window length);
* **gauges** — the value at the window close;
* **histograms** — the per-window observation count, mean, and
  p50 / p95 / p99 estimated from the window's *bucket-count deltas* (the
  shared :func:`~repro.obs.metrics.percentile_from_counts` estimator), so
  tail latency is time-resolved rather than a whole-run aggregate.

Series keep their registry labels, so per-head (``node=``) and per-shard
(``shard=``) resolution falls out for free. Read-side surfaces:
:meth:`top_lines` is the ``repro top``-style end-of-run table, and
:meth:`records` yields ``type="timeseries"`` JSONL records for the
``--jsonl`` exports.

**Passivity.** Sampling is plain arithmetic over plain containers on an
existing hook; no events are scheduled, no RNG drawn, no wire bytes added.
``tests/integration/test_obs_passive.py`` holds runs with the sampler
attached to bit-identical wire traces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.collector import attach_collector
from repro.obs.metrics import Counter, Gauge, Histogram, percentile_from_counts
from repro.obs.report import format_table

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TimeSeriesSampler",
    "attach_timeseries",
    "timeseries_of",
    "detach_timeseries",
]

#: Default sampling window (simulated seconds).
WINDOW = 1.0

#: Default cap on closed windows kept (oldest samples drop first).
MAX_WINDOWS = 10_000


def _series_label(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class TimeSeriesSampler:
    """Per-window samples of every series in one metrics registry."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        *,
        window: float = WINDOW,
        max_windows: int = MAX_WINDOWS,
    ):
        if window <= 0:
            raise ValueError("window must be positive")
        self.registry = registry
        self.window = window
        self.max_windows = max_windows
        #: Closed-window samples, in time order. Each is a dict:
        #: ``{"type": "timeseries", "window_start", "window_end", "name",
        #: "labels", "metric", ...metric-specific values}``.
        self.samples: list[dict] = []
        #: Samples shed past :attr:`max_windows` (oldest-first eviction).
        self.dropped_samples = 0
        #: Index of the window currently being accumulated.
        self._window_index = 0
        #: Per-series cumulative state at the last window close.
        self._counter_last: dict[tuple, int] = {}
        self._hist_last: dict[tuple, tuple] = {}
        self._gauge_last: dict[tuple, float] = {}

    # -- feed side (kernel on_advance hook) ---------------------------------

    def on_advance(self, now: float) -> None:
        index = int(now / self.window)
        if index > self._window_index:
            self._close_through(index)

    def _close_through(self, index: int) -> None:
        """Close the accumulating window (empty intermediate windows produce
        no samples — a quiet simulation costs nothing)."""
        self._sample(self._window_index)
        self._window_index = index

    def finish(self) -> None:
        """Close the in-progress window (call at end of run, before
        reading); safe to call repeatedly — the delta bookkeeping means a
        repeated close with no new activity emits nothing."""
        self._sample(self._window_index)

    def _sample(self, index: int) -> None:
        start = index * self.window
        end = start + self.window
        for key in sorted(self.registry._metrics, key=lambda k: (k[0], k[1])):
            metric = self.registry._metrics[key]
            name, labels = key[0], dict(key[1])
            if isinstance(metric, Counter):
                last = self._counter_last.get(key, 0)
                delta = metric.value - last
                if delta == 0:
                    continue
                self._counter_last[key] = metric.value
                self._emit(start, end, name, labels, "counter",
                           value=delta, rate=delta / self.window)
            elif isinstance(metric, Gauge):
                last = self._gauge_last.get(key)
                if last is not None and last == metric.value:
                    continue
                self._gauge_last[key] = metric.value
                self._emit(start, end, name, labels, "gauge",
                           value=metric.value)
            elif isinstance(metric, Histogram):
                prev = self._hist_last.get(
                    key, ((0,) * len(metric.bounds), 0, 0, 0.0)
                )
                prev_counts, prev_overflow, prev_count, prev_total = prev
                dcount = metric.count - prev_count
                if dcount == 0:
                    continue
                dcounts = tuple(
                    c - p for c, p in zip(metric.counts, prev_counts)
                )
                doverflow = metric.overflow - prev_overflow
                dtotal = metric.total - prev_total
                self._hist_last[key] = (
                    tuple(metric.counts), metric.overflow,
                    metric.count, metric.total,
                )
                self._emit(
                    start, end, name, labels, "histogram",
                    count=dcount,
                    mean=dtotal / dcount,
                    p50=percentile_from_counts(
                        metric.bounds, dcounts, doverflow, dcount, 50,
                        maximum=metric.max,
                    ),
                    p95=percentile_from_counts(
                        metric.bounds, dcounts, doverflow, dcount, 95,
                        maximum=metric.max,
                    ),
                    p99=percentile_from_counts(
                        metric.bounds, dcounts, doverflow, dcount, 99,
                        maximum=metric.max,
                    ),
                )

    def _emit(self, start, end, name, labels, metric_kind, **values) -> None:
        if len(self.samples) >= self.max_windows:
            del self.samples[0]
            self.dropped_samples += 1
        self.samples.append({
            "type": "timeseries",
            "time": end,
            "window_start": start,
            "window_end": end,
            "name": name,
            "labels": labels,
            "metric": metric_kind,
            **values,
        })

    # -- read side -----------------------------------------------------------

    def records(self) -> list[dict]:
        """JSONL-ready records (``type="timeseries"``), closing the
        in-progress window first."""
        self.finish()
        return list(self.samples)

    def top_lines(
        self,
        *,
        limit: int = 12,
        indent: str = "  ",
        shard: int | None = None,
    ) -> list[str]:
        """A ``repro top``-style table: the busiest series, one row each,
        with total / peak-window / last-window activity. With *shard*,
        only series carrying that ``shard=`` label are shown (the CLI
        ``--shard`` filter)."""
        self.finish()
        agg: dict[str, dict] = {}
        for sample in self.samples:
            if shard is not None and sample["labels"].get("shard") != shard:
                continue
            series = _series_label(sample["name"], sample["labels"])
            entry = agg.get(series)
            if entry is None:
                entry = agg[series] = {
                    "series": series, "metric": sample["metric"],
                    "windows": 0, "total": 0.0, "peak": 0.0, "last": 0.0,
                    "p99": 0.0,
                }
            entry["windows"] += 1
            weight = sample.get("value", sample.get("count", 0.0))
            entry["total"] += weight
            entry["peak"] = max(entry["peak"], weight)
            entry["last"] = weight
            if "p99" in sample:
                entry["p99"] = max(entry["p99"], sample["p99"])
        if not agg:
            return [indent + "(no time-series samples)"]
        busiest = sorted(
            agg.values(), key=lambda e: (-e["total"], e["series"])
        )[:limit]
        rows = []
        for entry in busiest:
            p99 = f"{entry['p99'] * 1000.0:.1f}ms" if entry["p99"] else "-"
            rows.append([
                entry["series"], entry["metric"], str(entry["windows"]),
                f"{entry['total']:g}", f"{entry['peak']:g}",
                f"{entry['last']:g}", p99,
            ])
        return format_table(
            ["series", "kind", "windows", "total", "peak/w", "last/w",
             "max p99"],
            rows,
            indent=indent,
        )


# -- attachment ------------------------------------------------------------


def attach_timeseries(
    network: "Network",
    *,
    registry=None,
    window: float = WINDOW,
    max_windows: int = MAX_WINDOWS,
) -> TimeSeriesSampler:
    """Attach (or return the already-attached) time-series sampler.

    Ensures a collector is attached (the sampler reads its registry) and
    registers the kernel tick hook.
    """
    existing = timeseries_of(network)
    if existing is not None:
        return existing
    collector = attach_collector(network, registry=registry)
    sampler = TimeSeriesSampler(
        collector.registry, window=window, max_windows=max_windows
    )
    network.kernel.on_advance.append(sampler.on_advance)
    network._obs_timeseries = sampler
    return sampler


def timeseries_of(network: "Network") -> TimeSeriesSampler | None:
    """The sampler attached to *network*, or ``None``."""
    return getattr(network, "_obs_timeseries", None)


def detach_timeseries(network: "Network") -> None:
    """Remove the attached sampler and its kernel hook registration."""
    sampler = timeseries_of(network)
    if sampler is None:
        return
    if sampler.on_advance in network.kernel.on_advance:
        network.kernel.on_advance.remove(sampler.on_advance)
    network._obs_timeseries = None
