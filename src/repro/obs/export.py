"""JSONL export: one machine-readable stream for spans, logs and metrics.

Every record is a single JSON object per line with a ``type`` discriminator:
``"span"`` (:class:`~repro.obs.events.TraceEvent`), ``"log"``
(:class:`~repro.util.simlog.LogRecord`), ``"job"`` (a whole
:class:`~repro.obs.events.JobTrace`) or ``"metric"`` (one registry series).
Spans and logs share the ``time`` field, so :func:`merged_records`
interleaves them into one causally ordered stream — the format the
``repro trace --jsonl`` and ``repro chaos --jsonl`` surfaces emit.

Values that are not JSON-native (addresses, message ids) are rendered with
``repr`` rather than rejected: an export must never fail because a protocol
grew a new field type.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.collector import TraceCollector
    from repro.util.simlog import SimLogger

__all__ = [
    "dumps_record",
    "to_jsonl",
    "merged_records",
    "metric_records",
    "collector_records",
    "write_jsonl",
]


def dumps_record(record: dict) -> str:
    """One JSONL line (non-native values degrade to their ``repr``)."""
    return json.dumps(record, sort_keys=True, default=repr)


def to_jsonl(records: Iterable[dict]) -> str:
    """Render *records* as a JSONL document (trailing newline included)."""
    lines = [dumps_record(r) for r in records]
    return "\n".join(lines) + ("\n" if lines else "")


def merged_records(
    collector: "TraceCollector | None" = None,
    logger: "SimLogger | None" = None,
) -> list[dict]:
    """Spans and log records merged into one time-ordered stream.

    Python's sort is stable, so records carrying the same timestamp keep
    their per-source order (spans before logs, matching append order within
    one simulation step closely enough for reading).
    """
    records: list[dict] = []
    if collector is not None:
        records.extend(e.to_dict() for e in collector.events)
    if logger is not None:
        records.extend(r.to_dict() for r in logger.records)
    records.sort(key=lambda r: r["time"])
    return records


def metric_records(registry) -> list[dict]:
    """One ``"metric"``-discriminated record per registry series.

    The registry snapshot's own ``type`` field (counter/gauge/histogram)
    is demoted to ``metric`` so the top-level discriminator stays uniform
    across the whole JSONL stream.
    """
    out = []
    for series in registry.snapshot():
        record = dict(series)
        record["metric"] = record.pop("type")
        record["type"] = "metric"
        out.append(record)
    return out


def collector_records(
    collector: "TraceCollector",
    logger: "SimLogger | None" = None,
    *,
    jobs: bool = True,
    metrics: bool = True,
) -> list[dict]:
    """The full export of one observed run: merged span/log stream, then
    per-job trace summaries, then the metrics snapshot."""
    records = merged_records(collector, logger)
    if jobs:
        records.extend(t.to_dict() for t in collector.job_traces())
    if metrics:
        records.extend(metric_records(collector.registry))
    return records


def write_jsonl(path, records: Iterable[dict]) -> int:
    """Write *records* to *path*; returns the number of lines written."""
    lines = [dumps_record(r) for r in records]
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)
