"""Tunable parameters of the group communication system."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import GroupCommError

__all__ = ["GroupConfig"]


@dataclass(frozen=True)
class GroupConfig:
    """Protocol timing and algorithm selection.

    Parameters
    ----------
    heartbeat_interval:
        Seconds between heartbeats to every peer.
    suspect_timeout:
        Silence (seconds) after which a peer is suspected failed. Must
        comfortably exceed the heartbeat interval; 3x is conventional.
    flush_timeout:
        How long a member stalled in a view change waits before restarting
        the membership protocol itself (covers coordinator death).
    retransmit_interval:
        Transport-level retransmission sweep period.
    ordering:
        ``"sequencer"`` (default) or ``"token"`` — the within-view total
        order engine (the token ring is the ablation alternative).
    primary_partition:
        If true, a view is only *primary* (allowed to deliver SAFE messages
        and thus to win mutexes) when it contains a strict majority of the
        previous primary view. The paper assumes fail-stop rather than
        partition faults and ran without this rule; it is provided as an
        extension for split-brain experiments.
    sequencer_batch_delay:
        Seconds the sequencer waits to batch ORDER assignments (0 = order
        immediately). Ablation knob for latency/throughput trade-offs.
    sequencer_batch_max:
        Size trigger for the ORDER batch: the sequencer flushes as soon as
        a batch holds this many assignments instead of waiting out the full
        ``sequencer_batch_delay`` (0 = timer only, the pre-R6 behaviour).
        Only meaningful with a positive batch delay.
    data_batch_delay:
        Upper bound (seconds) of the adaptive Nagle window the
        :class:`~repro.gcs.batching.DataBatcher` uses to coalesce a burst
        of outbound DATA multicasts into one
        :class:`~repro.gcs.messages.DataBatchMsg` wire frame. 0 (default)
        disables DATA batching entirely — every multicast is its own
        DataMsg frame, byte-for-byte the historical wire traffic.
    data_batch_min_delay:
        Floor the adaptive window tightens toward under low offered load
        (see ``DataBatcher``); must not exceed ``data_batch_delay``.
    data_batch_max_msgs:
        Count budget: a DATA batch flushes as soon as it holds this many
        entries (>= 2 when batching is enabled).
    data_batch_max_bytes:
        Byte budget: a DATA batch flushes once its encoded entries reach
        this many bytes (0 disables the byte trigger). Keeping this near
        the link MTU keeps one batch ≈ one full frame.
    processing_delay:
        CPU time a member charges for each inbound protocol message, 0 to
        handle instantaneously. This models the group-communication stack's
        per-message cost on the paper's 450 MHz head nodes — the dominant
        term behind JOSHUA's latency overhead growing with head-node count
        (each added head adds DATA/ORDER/STABLE traffic every member must
        chew through).
    """

    #: Identity of the ordering group this configuration describes. A
    #: sharded deployment runs several independent groups over the same
    #: heads; each shard's members bind a dedicated per-shard port (base
    #: GCS port + group_id), so frames from different shards can never
    #: cross-deliver. The id also rotates the sequencer: shard *k* is
    #: sequenced by the member of rank ``k % view.size``, spreading
    #: ordering load across the shared heads. 0 (default) reproduces the
    #: single-group deployment exactly — rank 0 is the coordinator.
    group_id: int = 0
    #: Total number of shard groups in the deployment this group belongs
    #: to. Purely descriptive — the protocol never reads it — but the
    #: observability layer uses ``shard_count > 1`` to decide whether GCS
    #: spans/metrics should carry a ``shard=<group_id>`` label, so a
    #: single-group run stays label-identical to the historical output.
    shard_count: int = 1
    heartbeat_interval: float = 0.25
    suspect_timeout: float = 0.75
    flush_timeout: float = 1.0
    retransmit_interval: float = 0.05
    ordering: str = "sequencer"
    primary_partition: bool = False
    sequencer_batch_delay: float = 0.0
    sequencer_batch_max: int = 16
    data_batch_delay: float = 0.0
    data_batch_min_delay: float = 0.0
    data_batch_max_msgs: int = 16
    data_batch_max_bytes: int = 1200
    processing_delay: float = 0.0
    #: Deferred-acknowledgement model for SAFE stability: a member of rank r
    #: (r = 0 for the lowest-ranked) waits ``stable_ack_base + r *
    #: stable_ack_slot`` before broadcasting its cumulative STABLE ack, when
    #: the view has more than one member. Transis-era stacks deferred and
    #: staggered acknowledgements rather than blasting them instantly; the
    #: effect is that SAFE delivery waits ~one slot per member — the linear
    #: per-head latency growth Figure 10 measures. Defaults 0 (immediate).
    stable_ack_base: float = 0.0
    stable_ack_slot: float = 0.0
    #: Seconds between payload garbage-collection sweeps (0 disables).
    #: Releases payloads that are globally stable and locally delivered,
    #: bounding a long-lived view's memory by its unstable window — the
    #: hygiene whose absence the paper suspects crashed Transis after
    #: "3-5 days of excessive operation".
    gc_interval: float = 5.0

    def __post_init__(self):
        if self.group_id < 0:
            raise GroupCommError("group_id must be non-negative")
        if self.shard_count < 1:
            raise GroupCommError("shard_count must be at least 1")
        if self.heartbeat_interval <= 0:
            raise GroupCommError("heartbeat_interval must be positive")
        if self.suspect_timeout <= self.heartbeat_interval:
            raise GroupCommError(
                "suspect_timeout must exceed heartbeat_interval "
                f"({self.suspect_timeout} <= {self.heartbeat_interval})"
            )
        if self.flush_timeout <= 0 or self.retransmit_interval <= 0:
            raise GroupCommError("timeouts must be positive")
        if self.ordering not in ("sequencer", "token"):
            raise GroupCommError(f"unknown ordering engine {self.ordering!r}")
        if self.sequencer_batch_delay < 0:
            raise GroupCommError("sequencer_batch_delay must be non-negative")
        if self.sequencer_batch_max < 0:
            raise GroupCommError("sequencer_batch_max must be non-negative")
        if self.data_batch_delay < 0:
            raise GroupCommError("data_batch_delay must be non-negative")
        if not 0 <= self.data_batch_min_delay <= max(self.data_batch_delay, 0):
            raise GroupCommError(
                "need 0 <= data_batch_min_delay <= data_batch_delay"
            )
        if self.data_batch_delay > 0 and self.data_batch_max_msgs < 2:
            raise GroupCommError(
                "data_batch_max_msgs < 2 cannot coalesce anything"
            )
        if self.data_batch_max_bytes < 0:
            raise GroupCommError("data_batch_max_bytes must be non-negative")
        if self.processing_delay < 0:
            raise GroupCommError("processing_delay must be non-negative")
        if self.stable_ack_base < 0 or self.stable_ack_slot < 0:
            raise GroupCommError("stable ack delays must be non-negative")
        if self.gc_interval < 0:
            raise GroupCommError("gc_interval must be non-negative")
