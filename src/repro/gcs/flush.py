"""The flush/epoch/NewView state machine (membership-change protocol).

Extracted from :class:`~repro.gcs.member.GroupMember`: everything between a
membership trigger (suspicion, join request, leave request) and the
installation of the next view lives here —

* the *trigger sets* (pending joiners/leavers, re-admitting incarnations,
  manually-suspected flush non-responders);
* initiator election (lowest-ranked unsuspected member of the view);
* the flush conversation: ``FlushReq(epoch, proposed)`` → ``FlushOk``
  reports → closing-list construction → ``NewView`` fan-out;
* the epoch total order ``(new_view_id, attempt, initiator)`` that resolves
  competing flushes: members honour only the highest epoch seen, and an
  initiator abandons its own attempt when it learns of a higher one;
* the watchdog policy for stalled flushes (suspect non-responders, retry).

The engine operates *on* its :class:`~repro.gcs.member.GroupMember` (``m``):
it reads the view/queue/detector and drives ``m.state`` between NORMAL and
FLUSHING; the member façade owns delivery and view installation and calls
back into :meth:`FlushEngine.on_view_installed` when a NewView lands.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.gcs.lifecycle import FLUSHING, NORMAL
from repro.gcs.messages import FlushOk, FlushReq, JoinReq, LeaveReq, MessageId, NewView
from repro.gcs.view import View
from repro.net.address import Address
from repro.util.errors import GroupCommError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gcs.member import GroupMember

__all__ = ["FlushEngine", "FlushAttempt"]


class FlushAttempt:
    """Initiator-side bookkeeping for one flush epoch."""

    def __init__(self, epoch: tuple, proposed: tuple[Address, ...], started_at: float):
        self.epoch = epoch
        self.proposed = proposed
        self.replies: dict[Address, FlushOk] = {}
        self.started_at = started_at

    @property
    def complete(self) -> bool:
        return set(self.replies) >= set(self.proposed)


class FlushEngine:
    """Membership-change engine for one :class:`GroupMember`."""

    def __init__(self, member: "GroupMember"):
        self.m = member
        #: Addresses asking to be merged into the group.
        self.pending_joiners: set[Address] = set()
        #: Current members that announced a voluntary departure.
        self.pending_leavers: set[Address] = set()
        #: Current-view addresses that announced a fresh incarnation (a
        #: restarted process re-using its address); they need a view change
        #: to be re-admitted with clean protocol state.
        self.rejoining: set[Address] = set()
        #: Non-responders manually suspected by a timed-out flush attempt.
        self.extra_suspects: set[Address] = set()
        #: Highest flush epoch promised so far.
        self.max_epoch: tuple | None = None
        self._attempt_counter = 0
        #: Our own in-flight attempt (initiator side), if any.
        self.attempt: FlushAttempt | None = None
        #: When we entered FLUSHING (watchdog timeout reference point).
        self.entered_at = 0.0

    # -- membership triggers ------------------------------------------------

    def on_suspect(self, peer: Address) -> None:
        self.maybe_initiate()

    def on_join_req(self, src: Address, req: JoinReq) -> None:
        m = self.m
        if not m.in_group or m.view is None:
            return
        if req.joiner in m.view.members:
            # A previous incarnation of this address is still in the view;
            # its protocol state died with it. Re-admit the new incarnation
            # through a view change.
            self.rejoining.add(req.joiner)
        # The join request itself is proof of life.
        m.detector.forgive(req.joiner)
        self.pending_joiners.add(req.joiner)
        # Make sure the member who will actually coordinate hears about it.
        candidate = self.initiator_candidate()
        if candidate is not None and candidate != m.address:
            m.transport.send(candidate, req)
        self.maybe_initiate()

    def on_leave_req(self, src: Address, req: LeaveReq) -> None:
        m = self.m
        if not m.in_group or m.view is None:
            return
        if req.leaver in m.view.members:
            self.pending_leavers.add(req.leaver)
            self.maybe_initiate()

    def membership_dirty(self) -> bool:
        m = self.m
        if m.view is None:
            return False
        members = set(m.view.members)
        suspects = (m.detector.suspected | self.extra_suspects) & members
        joiners = self.pending_joiners - members
        rejoining = self.rejoining & members
        leavers = self.pending_leavers & members
        return bool(suspects or joiners or rejoining or leavers)

    def initiator_candidate(self) -> Address | None:
        m = self.m
        if m.view is None:
            return None
        bad = (
            m.detector.suspected
            | self.extra_suspects
            | self.pending_leavers
            | self.rejoining  # a fresh incarnation has no view history
        )
        live = [member for member in m.view.members if member not in bad]
        return min(live) if live else None

    def maybe_initiate(self) -> None:
        m = self.m
        if not m.in_group or m.view is None:
            return
        if not self.membership_dirty():
            return
        if self.initiator_candidate() != m.address:
            if m.state == NORMAL:
                # Remember when we started waiting for someone else's flush,
                # so the watchdog can take over if they never deliver one.
                m.state = FLUSHING
                self.entered_at = m.kernel.now
            return
        self._start_attempt()

    def _start_attempt(self) -> None:
        m = self.m
        self._attempt_counter += 1
        epoch = (m.view.view_id + 1, self._attempt_counter, m.address)
        bad = m.detector.suspected | self.extra_suspects | self.pending_leavers
        proposed = (set(m.view.members) - bad - self.rejoining) | (
            self.pending_joiners - m.detector.suspected - self.extra_suspects
        )
        proposed.add(m.address)
        proposed_tuple = tuple(sorted(proposed))
        self.attempt = FlushAttempt(epoch, proposed_tuple, m.kernel.now)
        m.state = FLUSHING
        self.entered_at = m.kernel.now
        m.stats["flushes_started"] += 1
        m.kernel.log.info(
            f"gcs@{m.address}", f"flush epoch={epoch} proposed={proposed_tuple}"
        )
        req = FlushReq(epoch, proposed_tuple)
        for member in proposed_tuple:
            if member == m.address:
                self.on_flush_req(m.address, req)
            else:
                m.transport.send(member, req)

    # -- flush protocol ------------------------------------------------------

    def on_flush_req(self, src: Address, req: FlushReq) -> None:
        m = self.m
        if self.max_epoch is not None and req.epoch < self.max_epoch:
            return  # stale attempt
        if m.view is not None and req.epoch[0] <= m.view.view_id:
            return  # requester is behind us; it will recover via rejoin
        coordinator = req.epoch[2]
        if self.max_epoch is None or req.epoch > self.max_epoch:
            self.max_epoch = req.epoch
            if self.attempt is not None and self.attempt.epoch < req.epoch:
                self.attempt = None  # our attempt was superseded
        if m.in_group:
            m.state = FLUSHING
            self.entered_at = m.kernel.now
        # Everything buffered on the outbound path (a DATA batch inside the
        # Nagle window, ORDER assignments inside the sequencer's batch
        # window) must hit our own queue *before* the report below, or the
        # view change silently drops it.
        m.flush_outbound()
        known, orderings, delivered = m.queue.flush_report()
        my_view = m.view.view_id if m.view is not None else -1
        ok = FlushOk(req.epoch, m.address, known, orderings, delivered, my_view)
        if coordinator == m.address:
            self.on_flush_ok(m.address, ok)
        else:
            m.transport.send(coordinator, ok)

    def on_flush_ok(self, src: Address, ok: FlushOk) -> None:
        flush = self.attempt
        if flush is None or ok.epoch != flush.epoch:
            return
        if ok.sender not in flush.proposed:
            return
        if ok.view_id >= flush.epoch[0]:
            # A responder already installed the view id we were about to
            # create: we missed a view entirely. Abort; the exclusion
            # recovery (future-traffic rejoin) will bring us back in sync.
            self.attempt = None
            return
        flush.replies[ok.sender] = ok
        if flush.complete:
            self._finalize(flush)

    def _finalize(self, flush: FlushAttempt) -> None:
        m = self.m
        old_members = set(m.view.members) if m.view is not None else set()
        # Union of payloads anyone still holds.
        known: dict[MessageId, tuple[str, Any]] = {}
        for _sender, ok in sorted(flush.replies.items()):
            for msg_id, (service, payload) in ok.known:
                known.setdefault(msg_id, (service, payload))
        # Sequence assignments from the most-advanced responders (highest
        # installed view): their order extends every other survivor's prefix.
        best_vid = max(ok.view_id for ok in flush.replies.values())
        orderings: dict[int, MessageId] = {}
        for _sender, ok in sorted(flush.replies.items()):
            if ok.view_id != best_vid:
                continue
            for seq, msg_id in ok.orderings:
                existing = orderings.get(seq)
                if existing is not None and existing != msg_id:
                    raise GroupCommError(
                        f"flush found conflicting assignment at seq {seq}: "
                        f"{existing} vs {msg_id}"
                    )
                orderings[seq] = msg_id
        # Messages every surviving *old* member already delivered need not
        # (must not) be redelivered; fresh joiners (view_id == -1) get state
        # transfer at the application layer instead and are excluded from
        # the intersection. Members lagging a view behind deliver the
        # difference from the closing list (duplicate suppression protects
        # the advanced members).
        old_responders = [
            ok for a, ok in sorted(flush.replies.items())
            if a in old_members and ok.view_id >= 0
        ]
        if old_responders:
            delivered_by_all = set.intersection(
                *[set(ok.delivered) for ok in old_responders]
            )
        else:
            delivered_by_all = set()
        ordered_ids = [mid for _s, mid in sorted(orderings.items())]
        unordered = sorted(set(known) - set(ordered_ids))
        closing = tuple(
            (mid, known[mid][0], known[mid][1])
            for mid in [*ordered_ids, *unordered]
            if mid in known and mid not in delivered_by_all
        )
        primary = True
        if m.config.primary_partition and m.view is not None:
            survivors = set(flush.proposed) & old_members
            primary = m.view.primary and len(survivors) * 2 > len(old_members)
        new_view = NewView(
            flush.epoch, flush.epoch[0], flush.proposed, closing, primary
        )
        m.kernel.log.info(
            f"gcs@{m.address}",
            f"installing view {flush.epoch[0]} members={flush.proposed} "
            f"closing={len(closing)}",
        )
        for member in flush.proposed:
            if member == m.address:
                self.on_new_view(m.address, new_view)
            else:
                m.transport.send(member, new_view)

    def on_new_view(self, src: Address, nv: NewView) -> None:
        m = self.m
        if self.max_epoch is not None and nv.epoch < self.max_epoch:
            return  # superseded by a newer flush we already promised
        if m.view is not None and nv.view_id <= m.view.view_id:
            return
        if m.address not in nv.members:
            return  # shouldn't happen (coordinator only sends to members)
        self.max_epoch = max(self.max_epoch or nv.epoch, nv.epoch)
        view = View(nv.view_id, tuple(sorted(nv.members)), nv.primary)
        m.install_view(view, nv.closing)

    # -- lifecycle hooks -----------------------------------------------------

    def on_view_installed(self, view: View) -> None:
        """Reconcile trigger sets with the membership that actually landed."""
        members = set(view.members)
        self.extra_suspects -= members
        self.pending_joiners -= members
        # Any rejoin concern is resolved by this installation one way or the
        # other; a racing rejoin will resend its JoinReq on its watchdog.
        self.rejoining.clear()
        self.pending_leavers &= members
        self.attempt = None
        self._attempt_counter = 0

    def on_watchdog_timeout(self, now: float) -> None:
        """FLUSHING for a full flush_timeout without a view: recover."""
        m = self.m
        self.entered_at = now
        if self.attempt is not None:
            # Our own attempt stalled: suspect the non-responders and retry
            # without them.
            missing = set(self.attempt.proposed) - set(self.attempt.replies)
            missing.discard(m.address)
            self.extra_suspects |= missing
            self.pending_joiners -= missing
            self.rejoining -= missing
            self.attempt = None
        self.maybe_initiate()
        # If after re-evaluation we are not the initiator and nothing is
        # dirty anymore, fall back to normal.
        if not self.membership_dirty() and self.attempt is None:
            m.state = NORMAL

    def reset(self) -> None:
        """Discard all view-scoped flush state (used when dissolving
        membership to rejoin as fresh — see RecoveryTracker.become_joiner)."""
        self.attempt = None
        self.max_epoch = None
        self._attempt_counter = 0
        self.pending_joiners.clear()
        self.pending_leavers.clear()
        self.rejoining.clear()
        self.extra_suspects.clear()
