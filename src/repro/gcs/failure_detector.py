"""Heartbeat failure detector.

Each member beacons an unreliable :class:`~repro.gcs.messages.Heartbeat` to
every monitored peer each ``heartbeat_interval`` and suspects any peer silent
for longer than ``suspect_timeout``. Suspicion is *sticky* per incarnation:
once suspected, a peer stays suspected until explicitly forgiven (the
membership layer forgives on view change or when the peer re-joins), which
prevents flapping from repeatedly aborting flush rounds.

This is an eventually-perfect-style detector under the fail-stop model: a
crashed peer is eventually suspected by every live peer (completeness), and
a live, connected peer is not suspected once message delays stabilise below
the timeout (accuracy). Both properties are exercised in the tests.
"""

from __future__ import annotations

from typing import Callable

from repro.gcs.messages import Heartbeat
from repro.net.address import Address
from repro.net.transport import Transport
from repro.obs.collector import collector_of

__all__ = ["FailureDetector"]


class FailureDetector:
    """Monitors a set of peers over an existing transport.

    Parameters
    ----------
    transport:
        The member's transport (heartbeats use its raw datagram path).
    heartbeat_interval / suspect_timeout:
        Timing; see :class:`~repro.gcs.config.GroupConfig`.
    on_suspect:
        ``callback(peer: Address)`` invoked once per new suspicion.
    """

    def __init__(
        self,
        transport: Transport,
        *,
        heartbeat_interval: float,
        suspect_timeout: float,
        on_suspect: Callable[[Address], None] | None = None,
    ):
        self.transport = transport
        self.kernel = transport.kernel
        self.heartbeat_interval = heartbeat_interval
        self.suspect_timeout = suspect_timeout
        self.on_suspect = on_suspect
        self._peers: set[Address] = set()
        self._last_heard: dict[Address, float] = {}
        self._suspected: set[Address] = set()
        self._stopped = False
        self._dormant = False
        #: Shard label for observability spans (set by the owning
        #: GroupMember in a sharded deployment; None = unlabelled).
        self._obs_shard: int | None = None
        self._loop = self.kernel.spawn(self._run(), name=f"fd@{transport.address}")

    def _observe(self, transition: str, peer: Address | None = None) -> None:
        """Report a detector state transition to an attached trace collector
        (observation only — no-op when the simulation is unobserved)."""
        collector = collector_of(self.transport.endpoint.network)
        if collector is not None:
            collector.gcs_fd(
                self.transport.address.node,
                str(peer) if peer is not None else None,
                transition,
                shard=self._obs_shard,
            )

    # -- peer management -----------------------------------------------------

    def monitor(self, peers) -> None:
        """Replace the monitored peer set (self is filtered out)."""
        new_peers = {p for p in peers if p != self.transport.address}
        now = self.kernel.now
        for peer in sorted(new_peers - self._peers):
            self._last_heard[peer] = now
        for peer in sorted(self._peers - new_peers):
            self._last_heard.pop(peer, None)
            self._suspected.discard(peer)
        self._peers = new_peers

    def forgive(self, peer: Address) -> None:
        """Clear a suspicion (peer re-admitted by the membership layer)."""
        if peer in self._suspected:
            self._suspected.discard(peer)
            self._observe("forgive", peer)
        self._last_heard[peer] = self.kernel.now

    @property
    def suspected(self) -> set[Address]:
        return set(self._suspected)

    def is_suspected(self, peer: Address) -> bool:
        return peer in self._suspected

    def heard_from(self, peer: Address) -> None:
        """Record liveness evidence (heartbeat *or* any protocol message)."""
        if peer in self._peers:
            self._last_heard[peer] = self.kernel.now

    def handle_heartbeat(self, src: Address, hb: Heartbeat) -> None:
        self.heard_from(src)

    def stop(self) -> None:
        if not self._stopped:
            self._stopped = True
            self._loop.interrupt("failure detector stopped")

    # -- main loop ----------------------------------------------------------------

    def _run(self):
        while True:
            yield self.kernel.timeout(self.heartbeat_interval)
            if self._stopped or self.transport.endpoint.closed:
                return
            if not self.transport.endpoint.network.node_is_up(self.transport.address.node):
                # The node is down (or its network is blacked out) but we were
                # not torn down: go dormant rather than exiting, so the
                # detector beacons and suspects again once the node recovers.
                if not self._dormant:
                    self._dormant = True
                    self._observe("dormant")
                continue
            if self._dormant:
                # Re-arming after an outage: count peer silence from now, or
                # every peer would be suspected for our own downtime.
                self._dormant = False
                self._observe("rearm")
                now = self.kernel.now
                for peer in sorted(self._peers):
                    self._last_heard[peer] = now
            beat = Heartbeat(sent_at=self.kernel.now)
            # Sorted: heartbeat wire order must not depend on the hash
            # seed of the peer set (the determinism sanitizer's digest
            # diverges across PYTHONHASHSEED values otherwise).
            for peer in sorted(self._peers):
                self.transport.send_raw(peer, beat)
            now = self.kernel.now
            for peer in sorted(self._peers):
                if peer in self._suspected:
                    continue
                if now - self._last_heard.get(peer, now) > self.suspect_timeout:
                    self._suspected.add(peer)
                    self.kernel.log.info(
                        f"fd@{self.transport.address}", f"suspecting {peer}"
                    )
                    self._observe("suspect", peer)
                    if self.on_suspect is not None:
                        self.on_suspect(peer)
