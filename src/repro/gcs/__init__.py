"""Group communication system (GCS) — the Transis stand-in.

JOSHUA relies on Transis for exactly three interface properties (paper §3-4):

1. **reliable, totally ordered message delivery** to all group members
   (AGREED service) — user commands executed in the same order everywhere;
2. **SAFE (stable) delivery** — a message handed to the application only
   once every member has acknowledged receiving it, the building block for
   the output/launch distributed mutual exclusion;
3. **fault-tolerant, adaptive membership** — members may join, leave, or
   fail, with surviving members agreeing on the sequence of views and on
   which messages were delivered in which view (extended virtual synchrony).

This package implements those properties from scratch under the fail-stop
model:

* :class:`~repro.gcs.failure_detector.FailureDetector` — unreliable
  heartbeats + timeout suspicion.
* within-view total order — a **sequencer** engine (default; lowest-ranked
  member assigns global sequence numbers) and a **token-ring** engine
  (ablation alternative), both in :mod:`repro.gcs.ordering`.
* :class:`~repro.gcs.delivery.DeliveryQueue` — gap-free in-order delivery,
  SAFE stability tracking, duplicate suppression across view changes.
* :mod:`repro.gcs.membership` — coordinator-driven flush/view-change
  protocol: on suspicion, join or leave, members stop transmitting, exchange
  their undelivered messages, agree on a final delivery prefix, then install
  the next view.
* :class:`~repro.gcs.member.GroupMember` — the facade tying it together; the
  only class the JOSHUA layer touches.

The guarantees (and their property-based tests in
``tests/properties/test_gcs_properties.py``):

* *Total order*: the sequences of AGREED-delivered message ids at any two
  members are one a prefix of the other.
* *Virtual synchrony*: members that install the same pair of consecutive
  views delivered exactly the same set of messages between them.
* *SAFE*: when a SAFE message is delivered at any member, every member of
  the delivery view has a copy (so no surviving member can miss it).
* *Self-inclusion*: a member that multicasts and survives sees its own
  message delivered exactly once.
"""

from repro.gcs.view import View
from repro.gcs.messages import DeliveredMessage, MessageId
from repro.gcs.config import GroupConfig
from repro.gcs.member import GroupMember, boot_static_group
from repro.gcs.failure_detector import FailureDetector

__all__ = [
    "View",
    "MessageId",
    "DeliveredMessage",
    "GroupConfig",
    "GroupMember",
    "FailureDetector",
    "boot_static_group",
]
