"""Exclusion detection and rejoin: the recovery side of membership.

Extracted from :class:`~repro.gcs.member.GroupMember`: everything about
*getting back in* after the group moved on without us —

* the future-view traffic buffer: ordinary protocol messages tagged with a
  view id above ours are held until that view is installed — and their
  mere existence is the exclusion signal (paper §3: a falsely-suspected
  member, e.g. an unplugged-and-replugged cable, keeps hearing traffic it
  can no longer decode);
* the exclusion verdict: future traffic outstanding for a full flush
  timeout means the group formed a view without us — dissolve and rejoin
  through whoever is talking;
* join bookkeeping: contact list, periodic ``JoinReq`` resend while
  JOINING;
* anti-entropy probes: announce our view to every address we ever shared a
  view with but is now foreign, so independently-formed groups (a healed
  partition) discover each other and merge deterministically (larger
  group wins; ties break on coordinator rank).

Like :class:`~repro.gcs.flush.FlushEngine`, the tracker operates on its
member (``m``) and owns only its slice of state; view installation stays
on the façade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.gcs.lifecycle import JOINING, NORMAL
from repro.gcs.messages import JoinReq, Probe
from repro.gcs.view import View
from repro.net.address import Address

if TYPE_CHECKING:  # pragma: no cover
    from repro.gcs.member import GroupMember

__all__ = ["RecoveryTracker"]


class RecoveryTracker:
    """Exclusion/rejoin engine for one :class:`GroupMember`."""

    def __init__(self, member: "GroupMember"):
        self.m = member
        #: Buffered protocol traffic for views we have not installed yet.
        self.future: dict[int, list[tuple[Address, Any]]] = {}
        self.future_first_seen: float | None = None
        self.join_contacts: list[Address] = []
        #: Every address we ever shared a view with (anti-entropy targets).
        self.known_addresses: set[Address] = set()

    # -- future-view buffering ----------------------------------------------

    def buffer_future(self, view_id: int, src: Address, msg: Any) -> None:
        self.future.setdefault(view_id, []).append((src, msg))
        if self.future_first_seen is None:
            self.future_first_seen = self.m.kernel.now

    def future_stale(self, now: float) -> bool:
        """Future traffic has been pending long enough to mean exclusion."""
        return bool(
            self.future
            and self.future_first_seen is not None
            and now - self.future_first_seen >= self.m.config.flush_timeout
        )

    def collect_buffered(self, view_id: int) -> list[tuple[Address, Any]]:
        """Traffic buffered for *view_id*, pruning everything older."""
        buffered = self.future.pop(view_id, [])
        self.future = {v: msgs for v, msgs in sorted(self.future.items()) if v > view_id}
        return buffered

    # -- join bookkeeping -----------------------------------------------------

    def send_join_requests(self) -> None:
        m = self.m
        for contact in self.join_contacts:
            m.transport.send(contact, JoinReq(m.address))

    # -- anti-entropy / partition merge ---------------------------------------

    def note_members(self, view: View) -> None:
        self.known_addresses |= set(view.members)
        self.known_addresses.discard(self.m.address)

    def send_probes(self) -> None:
        """Anti-entropy: announce our view to known-but-foreign addresses."""
        m = self.m
        if m.view is None:
            return
        foreign = self.known_addresses - set(m.view.members)
        if not foreign:
            return
        probe = Probe(m.view.view_id, m.view.size, m.view.coordinator)
        # Sorted: set iteration order is hash-order (varies across
        # PYTHONHASHSEED values) and probe send order is observable on
        # the wire.
        for address in sorted(foreign):
            m.transport.send_raw(address, probe)

    def handle_probe(self, src: Address, probe: Probe) -> None:
        """A foreign group announced itself (partition merge discovery)."""
        m = self.m
        if m.state != NORMAL or m.view is None:
            return
        if src in m.view.members or src in m.flush.pending_joiners:
            return
        self.known_addresses.add(src)
        join_them = probe.size > m.view.size or (
            probe.size == m.view.size and probe.coordinator < m.view.coordinator
        )
        if join_them:
            m.kernel.log.warning(
                f"gcs@{m.address}",
                f"foreign group via {src} wins merge; dissolving to rejoin",
            )
            m.stats["rejoins"] += 1
            self.become_joiner([src])

    # -- exclusion recovery ----------------------------------------------------

    def rejoin_after_exclusion(self) -> None:
        """We keep hearing traffic from views beyond ours: the group moved
        on without us (false suspicion). Re-enter through whoever is
        talking."""
        m = self.m
        contacts = sorted({src for msgs in self.future.values() for src, _m in msgs})
        if not contacts:
            return
        m.kernel.log.warning(
            f"gcs@{m.address}", f"excluded from group; rejoining via {contacts}"
        )
        m.stats["rejoins"] += 1
        self.become_joiner(contacts)

    def become_joiner(self, contacts: list[Address]) -> None:
        """Dissolve our current membership and re-enter as a fresh joiner.

        Delivered-message ids are retained (duplicate suppression must span
        the rejoin); everything view-scoped is discarded.
        """
        m = self.m
        m.state = JOINING
        m.view = None
        m.engine.stop()
        m.flush.reset()
        self.future.clear()
        self.future_first_seen = None
        m.detector.monitor(())
        self.join_contacts = [c for c in contacts if c != m.address]
        self.send_join_requests()
