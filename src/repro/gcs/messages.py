"""Wire messages and delivery records of the group communication protocol.

All protocol traffic is dataclasses tagged by type; the transport carries
them opaquely. ``MessageId`` is the globally unique identity of one
application multicast: ``(sender address, sender-local counter)`` — the
counter never resets within a member's lifetime, and a restarted member is a
new transport epoch whose traffic cannot be confused with its past life.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple

from repro.net.address import Address
from repro.net.codec import register_wire_types

__all__ = [
    "MessageId",
    "AGREED",
    "SAFE",
    "DataMsg",
    "DataBatchMsg",
    "OrderMsg",
    "StableMsg",
    "Heartbeat",
    "Probe",
    "JoinReq",
    "LeaveReq",
    "FlushReq",
    "FlushOk",
    "NewView",
    "TokenMsg",
    "DeliveredMessage",
]

#: Delivery services (paper §3: totally ordered vs. safe/stable delivery).
AGREED = "agreed"
SAFE = "safe"


class MessageId(NamedTuple):
    """Globally unique multicast identity: (sender, per-sender counter)."""

    sender: Address
    counter: int

    def __str__(self) -> str:
        return f"{self.sender}#{self.counter}"


@dataclass(frozen=True)
class DataMsg:
    """An application multicast's payload, fanned out to every member."""

    msg_id: MessageId
    view_id: int
    service: str  # AGREED or SAFE
    payload: Any


@dataclass(frozen=True)
class DataBatchMsg:
    """Several application multicasts coalesced into one wire frame.

    Produced by :class:`~repro.gcs.batching.DataBatcher` when a head submits
    a burst of commands: instead of one :class:`DataMsg` frame (and its
    fixed +28B datagram overhead) per command, the burst rides as one frame
    whose ``entries`` carry ``(msg_id, service, payload)`` in submit order.
    Receivers unpack the batch into individual DATA records before the
    ordering/delivery machinery sees them, so total order, stability and
    per-command traces are byte-for-byte what an unbatched run produces —
    only the wire framing differs.
    """

    view_id: int
    #: ``(msg_id, service, payload)`` per coalesced multicast, submit order.
    entries: tuple[tuple[MessageId, str, Any], ...]


@dataclass(frozen=True)
class OrderMsg:
    """Sequencer/token assignment of global sequence numbers to messages.

    ``assignments`` maps global sequence number -> message id; a single
    OrderMsg may batch several assignments.
    """

    view_id: int
    assignments: tuple[tuple[int, MessageId], ...]


@dataclass(frozen=True)
class StableMsg:
    """Member acknowledgement used for SAFE delivery.

    ``acked_through`` is cumulative: the sender has agreed-ready copies of
    every sequence number <= acked_through in this view.
    """

    view_id: int
    acked_through: int


@dataclass(frozen=True)
class Heartbeat:
    """Liveness beacon (sent unreliably)."""

    sent_at: float


@dataclass(frozen=True)
class Probe:
    """Anti-entropy beacon to addresses outside the current view.

    After a partition heals, the two sides hold disjoint views (possibly
    with the same numeric view id) and exchange no group traffic, so neither
    would ever notice the other. Members therefore periodically probe every
    address they have ever shared a view with; a member receiving a probe
    from a *foreign* group compares view identities and the losing side
    (fewer members; tie broken toward the larger coordinator address)
    dissolves member-by-member and rejoins the winner.
    """

    view_id: int
    size: int
    coordinator: Address


@dataclass(frozen=True)
class JoinReq:
    """A new process asks a current member to bring it into the group."""

    joiner: Address


@dataclass(frozen=True)
class LeaveReq:
    """A member announces voluntary departure (handled as a failure, like
    JOSHUA's shutdown-by-signal leave semantics)."""

    leaver: Address


@dataclass(frozen=True)
class FlushReq:
    """Coordinator starts a membership change.

    ``epoch`` totally orders competing flush attempts:
    ``(new_view_id, attempt, coordinator)`` compared lexicographically.
    """

    epoch: tuple
    proposed_members: tuple[Address, ...]


@dataclass(frozen=True)
class FlushOk:
    """A member's flush contribution: everything it knows about the current
    view's traffic, so the coordinator can compute the union."""

    epoch: tuple
    sender: Address
    #: message id -> (service, payload) for every DATA this member holds.
    known: tuple[tuple[MessageId, tuple], ...]
    #: global seq -> message id orderings this member has seen.
    orderings: tuple[tuple[int, MessageId], ...]
    #: message ids this member has already delivered (any view).
    delivered: tuple[MessageId, ...]
    #: view id this member has installed (-1 for joiners with no view); the
    #: coordinator merges orderings only from the most advanced responders
    #: and computes the globally-delivered set only over responders that
    #: held a view at all.
    view_id: int = -1


@dataclass(frozen=True)
class NewView:
    """Coordinator's final decision ending a membership change."""

    epoch: tuple
    view_id: int
    members: tuple[Address, ...]
    #: The agreed closing sequence of the old view: messages every survivor
    #: must deliver (in list order) before installing the new view. Each
    #: entry carries full payload so members missing the DATA can recover.
    closing: tuple[tuple[MessageId, str, Any], ...]
    primary: bool = True


@dataclass(frozen=True)
class TokenMsg:
    """Rotating-token ordering engine: the token itself.

    ``next_seq`` is the next unassigned global sequence number.
    """

    view_id: int
    next_seq: int


@dataclass(frozen=True)
class DeliveredMessage:
    """What the application's ``on_deliver`` callback receives."""

    msg_id: MessageId
    sender: Address
    payload: Any
    service: str
    view_id: int
    #: Global sequence number within the view; -1 for messages delivered
    #: from a view-change closing list (transitional delivery).
    seq: int = -1
    #: True when delivered while closing a view (extended virtual synchrony's
    #: transitional configuration): total order still holds, but a SAFE
    #: message delivered transitionally may not have reached members that
    #: failed — exactly the EVS caveat.
    transitional: bool = False


# Everything above except DeliveredMessage crosses the wire; DeliveredMessage
# is the *local* record handed to the application's on_deliver callback.
register_wire_types(
    MessageId, DataMsg, DataBatchMsg, OrderMsg, StableMsg, Heartbeat, Probe,
    JoinReq, LeaveReq, FlushReq, FlushOk, NewView, TokenMsg,
)
