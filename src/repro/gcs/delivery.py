"""Gap-free ordered delivery with SAFE stability tracking.

:class:`DeliveryQueue` is the per-member bookkeeping between "messages are
arriving from the wire" and "the application sees a totally ordered stream":

* DATA payloads indexed by message id;
* global sequence assignments (from the ordering engine) indexed by seq;
* a delivery cursor that advances only over *gap-free* prefixes;
* per-member cumulative stability acknowledgements, which gate SAFE
  messages: a SAFE message at seq *s* is deliverable only when **every**
  view member has acknowledged holding all messages through *s*;
* a delivered-message-id set for duplicate suppression across view changes.

A SAFE message that is not yet stable blocks everything behind it — that is
what keeps SAFE and AGREED messages in one total order (Transis/Totem
semantics), and it is why SAFE delivery costs an extra message round trip,
visible in the paper's latency overhead per added head node.
"""

from __future__ import annotations

from typing import Iterable

from repro.gcs.messages import (
    AGREED,
    SAFE,
    DataBatchMsg,
    DataMsg,
    DeliveredMessage,
    MessageId,
)
from repro.gcs.view import View
from repro.net.address import Address
from repro.util.errors import GroupCommError

__all__ = ["DeliveryQueue"]


class DeliveryQueue:
    """Ordered-delivery state for one member."""

    def __init__(self, owner: Address):
        self.owner = owner
        self.view: View | None = None
        #: msg_id -> DataMsg for the current view (incl. injected closing).
        self._data: dict[MessageId, DataMsg] = {}
        #: seq -> msg_id assignments for the current view.
        self._order: dict[int, MessageId] = {}
        #: seqs delivered transitionally (came from a view-change closing).
        self._transitional_seqs: set[int] = set()
        #: next seq the cursor will deliver.
        self._cursor = 0
        #: next seq the garbage collector will consider.
        self._gc_cursor = 0
        #: per-member cumulative "I hold everything through seq" acks.
        self._stable: dict[Address, int] = {}
        #: every msg_id this member has ever delivered (any view).
        self._delivered_ids: set[MessageId] = set()
        #: messages delivered across *all* views — the cumulative position
        #: the read path's sequence surface reports (the per-view cursor
        #: resets at every view change, so it cannot serve as a monotonic
        #: applied-progress number).
        self.delivered_total = 0

    # -- view lifecycle ------------------------------------------------------

    def start_view(self, view: View, closing: Iterable[tuple[MessageId, str, object]]) -> None:
        """Reset per-view state; inject the view-change *closing* messages as
        the pre-ordered head (seqs ``0..len(closing)-1``) of the new view."""
        self.view = view
        self._data.clear()
        self._order.clear()
        self._transitional_seqs.clear()
        self._cursor = 0
        self._gc_cursor = 0
        self._stable = {m: -1 for m in view.members}
        for seq, (msg_id, service, payload) in enumerate(closing):
            self._data[msg_id] = DataMsg(msg_id, view.view_id, service, payload)
            self._order[seq] = msg_id
            self._transitional_seqs.add(seq)

    # -- inbound state ----------------------------------------------------------

    def add_data(self, data: DataMsg) -> bool:
        """Record a DATA message; returns True if it was new."""
        if data.msg_id in self._data:
            return False
        self._data[data.msg_id] = data
        return True

    def add_batch(self, batch: DataBatchMsg) -> list[DataMsg]:
        """Unpack a coalesced DATA batch into individual records.

        Returns the per-command :class:`DataMsg` records that were *new*
        (in batch order), so the caller can run the ordinary per-command
        path — ordering engine, stability, traces — exactly as if each had
        arrived in its own frame.
        """
        fresh: list[DataMsg] = []
        for msg_id, service, payload in batch.entries:
            data = DataMsg(msg_id, batch.view_id, service, payload)
            if self.add_data(data):
                fresh.append(data)
        return fresh

    def has_data(self, msg_id: MessageId) -> bool:
        return msg_id in self._data

    def add_assignments(self, assignments: Iterable[tuple[int, MessageId]]) -> None:
        for seq, msg_id in assignments:
            existing = self._order.get(seq)
            if existing is not None and existing != msg_id:
                raise GroupCommError(
                    f"conflicting order assignment at seq {seq}: "
                    f"{existing} vs {msg_id} (view {self.view})"
                )
            self._order[seq] = msg_id

    def record_stable(self, member: Address, acked_through: int) -> None:
        if self.view is None or member not in self._stable:
            return
        if acked_through > self._stable[member]:
            self._stable[member] = acked_through

    # -- cursors and stability ------------------------------------------------------

    def agreed_ready_through(self) -> int:
        """Highest seq *s* such that data+order are (or were, before being
        garbage-collected post-delivery) present for all ``<= s``."""
        seq = -1
        while (seq + 1) in self._order:
            msg_id = self._order[seq + 1]
            if msg_id not in self._data and msg_id not in self._delivered_ids:
                break
            seq += 1
        return seq

    def stable_through(self) -> int:
        """Highest seq acknowledged by every view member (-1 if none)."""
        if not self._stable:
            return -1
        return min(self._stable.values())

    def pop_deliverable(self) -> list[DeliveredMessage]:
        """Advance the cursor and return newly deliverable messages.

        Messages already delivered (by id) in an earlier view are *skipped*
        (the cursor advances past them) but not returned.
        """
        if self.view is None:
            return []
        out: list[DeliveredMessage] = []
        agreed_ready = self.agreed_ready_through()
        stable = self.stable_through()
        while self._cursor <= agreed_ready:
            seq = self._cursor
            msg_id = self._order[seq]
            data = self._data[msg_id]
            if data.service == SAFE and seq > stable:
                break  # not yet stable everywhere; blocks everything behind it
            self._cursor += 1
            if msg_id in self._delivered_ids:
                continue  # duplicate across a view change
            self._delivered_ids.add(msg_id)
            self.delivered_total += 1
            out.append(
                DeliveredMessage(
                    msg_id=msg_id,
                    sender=msg_id.sender,
                    payload=data.payload,
                    service=data.service,
                    view_id=self.view.view_id,
                    seq=seq,
                    transitional=seq in self._transitional_seqs,
                )
            )
        return out

    def was_delivered(self, msg_id: MessageId) -> bool:
        return msg_id in self._delivered_ids

    # -- garbage collection -----------------------------------------------------

    def gc(self) -> int:
        """Drop payloads that are globally stable and locally delivered.

        Safe because stability through seq *s* means **every** view member
        holds data+order for everything ≤ *s*: any member that still needs
        one of these messages (e.g. its delivery is blocked behind an
        unstable SAFE message) reports its own copy at the next flush, so
        the union the coordinator builds never depends on ours. Keeps a
        long-lived view's memory bounded by the unstable window instead of
        its whole history. Returns the number of payloads released.
        """
        threshold = min(self.stable_through(), self._cursor - 1)
        released = 0
        while self._gc_cursor <= threshold:
            msg_id = self._order.get(self._gc_cursor)
            if msg_id is None or msg_id not in self._delivered_ids:
                break  # keep the prefix contiguous; retry next sweep
            if msg_id in self._data:
                del self._data[msg_id]
                released += 1
            self._gc_cursor += 1
        return released

    def payload_count(self) -> int:
        """Payloads currently held (observability for the GC tests)."""
        return len(self._data)

    def snapshot(self) -> dict:
        """Read-only queue state for trace collectors / backlog gauges."""
        return {
            "cursor": self._cursor,
            "payloads": len(self._data),
            "orderings": len(self._order),
            "stable_through": self.stable_through(),
        }

    def seq_surface(self) -> dict:
        """The per-group sequence surface the local read path consumes:
        within-view cursor/stability plus the cumulative delivered count
        that survives view changes."""
        return {
            "view_id": self.view.view_id if self.view is not None else -1,
            "cursor": self._cursor,
            "stable_through": self.stable_through(),
            "delivered_total": self.delivered_total,
        }

    # -- flush support -----------------------------------------------------------

    def flush_report(self) -> tuple[tuple, tuple, tuple]:
        """(known, orderings, delivered) for a FlushOk contribution."""
        known = tuple(
            (msg_id, (data.service, data.payload))
            for msg_id, data in sorted(self._data.items())
        )
        orderings = tuple(sorted(self._order.items()))
        delivered = tuple(sorted(self._delivered_ids))
        return known, orderings, delivered

    def undelivered_of(self, msg_ids: Iterable[MessageId]) -> list[MessageId]:
        return [m for m in msg_ids if m not in self._delivered_ids]
