"""Outbound DATA coalescing: the Nagle-style adaptive batcher.

A head submitting a burst of commands pays the fixed per-frame overhead
(+28B datagram header plus the record framing) once per command on the
unbatched DATA path. :class:`DataBatcher` sits between
:meth:`~repro.gcs.member.GroupMember.multicast` and the wire and coalesces
a burst into one :class:`~repro.gcs.messages.DataBatchMsg` frame.

Flush rules (whichever fires first):

* **count budget** — the batch reaches ``max_msgs`` entries;
* **byte budget** — the encoded payload bytes reach ``max_bytes``
  (measured with the real codec, so the budget tracks actual frame cost);
* **timer** — ``delay`` seconds after the batch's *first* entry (a Nagle
  window: later entries ride the same deadline, they never extend it).

The timer is **adaptive** between ``min_delay`` and ``max_delay``:

* a budget-triggered flush means offered load fills batches faster than
  the timer — widen the window (double, capped at ``max_delay``) so the
  next batch can grow at least as large;
* a timer flush that caught only a single entry means the window bought
  latency and amortized nothing — tighten it (halve, floored at
  ``min_delay``) so a lone command stops paying for a burst that is not
  happening;
* a timer flush with several entries keeps the current window.

A batch with exactly one entry is sent as a plain
:class:`~repro.gcs.messages.DataMsg` — under low offered load the wire
traffic is frame-identical to an unbatched run.

View-change semantics: :meth:`start_view` / :meth:`stop` *discard* pending
entries without sending — by then the old view's frame could no longer be
delivered (receivers gate on view id). That is safe because the owning
member re-multicasts its undelivered commands in the new view from
``_own_pending``; additionally the member drains the batcher **before**
contributing to a flush (see ``GroupMember.flush_outbound``), so in the
common case the entries cross the wire in the old view and ride the
closing list instead of being resubmitted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.gcs.messages import DataBatchMsg, DataMsg, MessageId
from repro.gcs.view import View
from repro.net.codec import encoded_size
from repro.util.errors import GroupCommError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

__all__ = ["DataBatcher"]


class DataBatcher:
    """Coalesces one member's outbound DATA multicasts into batch frames.

    Parameters
    ----------
    kernel:
        Simulation kernel (timer source).
    broadcast:
        ``callable(msg)`` sending a protocol message to every view member
        (the owning member's ``_bcast``).
    max_delay:
        Upper bound of the adaptive Nagle window (seconds, > 0).
    min_delay:
        Lower bound the window tightens toward under low offered load
        (0 collapses to flush-on-next-tick).
    max_msgs:
        Count budget: flush as soon as the batch holds this many entries.
    max_bytes:
        Byte budget: flush once the encoded entries reach this many bytes
        (0 disables the byte trigger).
    on_flush:
        Optional ``callable(count, reason)`` observation hook invoked at
        each flush (reason in ``"count"``/``"bytes"``/``"timer"``/``"drain"``);
        wired by the member to the trace collector when one is attached.
    """

    def __init__(
        self,
        kernel: "Kernel",
        broadcast: Callable[[object], None],
        *,
        max_delay: float,
        min_delay: float = 0.0,
        max_msgs: int = 16,
        max_bytes: int = 0,
        on_flush: Callable[[int, str], None] | None = None,
    ):
        if max_delay <= 0:
            raise GroupCommError("DataBatcher needs a positive max_delay")
        if not 0 <= min_delay <= max_delay:
            raise GroupCommError("need 0 <= min_delay <= max_delay")
        if max_msgs < 2:
            raise GroupCommError("max_msgs < 2 cannot coalesce anything")
        if max_bytes < 0:
            raise GroupCommError("max_bytes must be non-negative")
        self.kernel = kernel
        self.broadcast = broadcast
        self.max_delay = max_delay
        self.min_delay = min_delay
        self.max_msgs = max_msgs
        self.max_bytes = max_bytes
        self.on_flush = on_flush
        self.view: View | None = None
        #: Current adaptive Nagle window (seconds).
        self.delay = max_delay
        self._entries: list[tuple[MessageId, str, Any]] = []
        self._entry_bytes = 0
        self._flusher = None
        self._generation = 0  # invalidates in-flight timers on flush/view change
        self.stats = {"submitted": 0, "flushes_count": 0, "flushes_bytes": 0,
                      "flushes_timer": 0, "flushes_drain": 0, "batched_frames": 0,
                      "single_frames": 0}

    # -- view lifecycle ----------------------------------------------------

    def start_view(self, view: View) -> None:
        """Cut over to *view*, discarding any undrained batch (the member
        re-multicasts undelivered commands in the new view)."""
        self.view = view
        self._generation += 1
        self._entries.clear()
        self._entry_bytes = 0
        self._flusher = None

    def stop(self) -> None:
        self.view = None
        self._generation += 1
        self._entries.clear()
        self._entry_bytes = 0
        self._flusher = None

    # -- submit / flush ----------------------------------------------------

    def pending(self) -> int:
        """Entries currently buffered (observability/test aid)."""
        return len(self._entries)

    def submit(self, msg_id: MessageId, service: str, payload: Any) -> None:
        """Buffer one outbound multicast; flush when a budget fills."""
        if self.view is None:
            raise GroupCommError("DataBatcher.submit with no view")
        self.stats["submitted"] += 1
        self._entries.append((msg_id, service, payload))
        self._entry_bytes += encoded_size((msg_id, service, payload))
        if len(self._entries) >= self.max_msgs:
            self._grow_window()
            self._flush("count")
        elif self.max_bytes and self._entry_bytes >= self.max_bytes:
            self._grow_window()
            self._flush("bytes")
        elif self._flusher is None or not self._flusher.is_alive:
            self._flusher = self.kernel.spawn(
                self._flush_later(self._generation), name="gcs-batch-flush"
            )

    def drain(self) -> tuple[tuple[MessageId, str, Any], ...]:
        """Remove and return every buffered entry without broadcasting.

        Used by the member's view-change flush path, which wants to apply
        the entries to its own queue synchronously *and* broadcast them —
        see ``GroupMember.flush_outbound``.
        """
        if not self._entries:
            return ()
        entries = tuple(self._entries)
        self._reset_batch()
        self.stats["flushes_drain"] += 1
        if self.on_flush is not None:
            self.on_flush(len(entries), "drain")
        return entries

    def _reset_batch(self) -> None:
        self._entries.clear()
        self._entry_bytes = 0
        self._generation += 1  # a timer armed for this batch must not fire
        self._flusher = None

    def _flush(self, reason: str) -> None:
        entries = tuple(self._entries)
        self._reset_batch()
        self.stats[f"flushes_{reason}"] += 1
        if len(entries) == 1:
            # No amortization to be had: send the plain DATA frame so low
            # offered load is wire-identical to an unbatched run.
            msg_id, service, payload = entries[0]
            self.stats["single_frames"] += 1
            self.broadcast(DataMsg(msg_id, self.view.view_id, service, payload))
        else:
            self.stats["batched_frames"] += 1
            self.broadcast(DataBatchMsg(self.view.view_id, entries))
        if self.on_flush is not None:
            self.on_flush(len(entries), reason)

    def _flush_later(self, generation: int):
        yield self.kernel.timeout(self.delay)
        # Generation — not view id — guards the timer: a flush/drain/view
        # change while we slept already disposed of this batch.
        if self._generation != generation or self.view is None or not self._entries:
            return
        if len(self._entries) == 1:
            self._shrink_window()
        self._flush("timer")

    # -- adaptive window ---------------------------------------------------

    def _grow_window(self) -> None:
        grown = self.delay * 2 if self.delay > 0 else self.max_delay / 8
        self.delay = min(self.max_delay, grown)

    def _shrink_window(self) -> None:
        self.delay = max(self.min_delay, self.delay / 2)
