"""Within-view total-order engines.

Two interchangeable algorithms assign global sequence numbers to DATA
messages inside one view; both produce a unique ``seq -> msg_id`` map and
broadcast it in :class:`~repro.gcs.messages.OrderMsg` frames. A view change
resets either engine — recovery of messages whose ordering was lost with a
failed sequencer/token is the membership layer's job.

**Sequencer** (default; paper-era systems like ISIS/Amoeba used this shape):
the lowest-ranked view member assigns sequence numbers to every DATA it
learns of, in arrival order, optionally batching assignments for
``sequencer_batch_delay`` seconds (flushing early once ``batch_max``
assignments accumulate, so a burst never waits out the full window). One
broadcast per multicast; latency is one hop to the sequencer plus one
ordering broadcast.

**Token ring** (ablation; Totem/Transis lineage): a token carrying
``next_seq`` circulates the ring; the holder orders *its own* pending
messages, broadcasts the assignments, and forwards the token. Latency
depends on token position (up to a full rotation), but ordering load is
spread across members — the classic latency-vs-fairness trade-off the
ablation bench quantifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.gcs.messages import MessageId, OrderMsg, TokenMsg
from repro.gcs.view import View
from repro.net.address import Address

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

__all__ = ["SequencerEngine", "TokenRingEngine", "make_engine"]


class _EngineBase:
    """Shared plumbing: who we are, current view, outbound hooks.

    ``broadcast(msg)`` sends a protocol message to every view member
    (including ourselves); ``send(dst, msg)`` is point-to-point. Both are
    provided by the owning :class:`~repro.gcs.member.GroupMember`.
    """

    def __init__(
        self,
        kernel: "Kernel",
        owner: Address,
        broadcast: Callable[[object], None],
        send: Callable[[Address, object], None],
    ):
        self.kernel = kernel
        self.owner = owner
        self.broadcast = broadcast
        self.send = send
        self.view: View | None = None
        self.next_seq = 0
        #: Cumulative assignments this engine has created across all views
        #: (``next_seq`` resets per view); part of the sequence surface the
        #: read path reports for staleness gauges.
        self.assigned_total = 0
        #: Optional ``callable(seq, msg_id)`` invoked for each assignment
        #: this engine creates (observation only; wired by the owning
        #: member to the trace collector when one is attached).
        self.observer: Callable[[int, MessageId], None] | None = None

    def _observed(self, seq: int, msg_id: MessageId) -> None:
        if self.observer is not None:
            self.observer(seq, msg_id)

    def start_view(self, view: View, next_seq: int) -> None:
        self.view = view
        self.next_seq = next_seq

    def stop(self) -> None:
        self.view = None

    # Hooks a concrete engine may implement:
    def on_data(self, msg_id: MessageId, *, own: bool) -> None:
        """A DATA message became known locally (own=True if we sent it)."""

    def on_token(self, src: Address, token: TokenMsg) -> None:
        """Token engine only."""

    def drain_pending(self) -> tuple[tuple[int, MessageId], ...]:
        """Remove and return assignments buffered but not yet broadcast.

        Called by the member as it enters a membership flush, so that
        assignments the sequencer already observed (they advanced
        ``next_seq``) make it into the flush report instead of being
        silently dropped by the view change. Engines without an outbound
        buffer return ``()``.
        """
        return ()


class SequencerEngine(_EngineBase):
    """One designated member assigns sequence numbers for everyone.

    The sequencer is the member of rank ``rotation % view.size``. With
    ``rotation=0`` (default) that is the lowest-ranked member — the
    coordinator, the classic single-group configuration. A sharded
    deployment passes each shard's group id as the rotation so the N
    shards hosted on the same heads elect N *different* sequencers and
    the ordering load spreads instead of piling onto one head.
    """

    def __init__(
        self, kernel, owner, broadcast, send,
        *, batch_delay: float = 0.0, batch_max: int = 0, rotation: int = 0,
    ):
        super().__init__(kernel, owner, broadcast, send)
        self.rotation = rotation
        self.batch_delay = batch_delay
        #: Size trigger: flush as soon as a batch holds this many
        #: assignments instead of waiting out the full batch_delay
        #: (0 = timer only).
        self.batch_max = batch_max
        self._assigned: set[MessageId] = set()
        self._batch: list[tuple[int, MessageId]] = []
        self._flusher = None
        self._generation = 0  # invalidates in-flight flush timers on view change

    def sequencer_of(self, view: View) -> Address:
        return view.members[self.rotation % view.size]

    @property
    def is_sequencer(self) -> bool:
        return self.view is not None and self.sequencer_of(self.view) == self.owner

    def start_view(self, view: View, next_seq: int) -> None:
        super().start_view(view, next_seq)
        self._generation += 1
        self._assigned.clear()
        self._batch.clear()
        self._flusher = None

    def stop(self) -> None:
        super().stop()
        self._generation += 1
        self._batch.clear()
        self._flusher = None

    def on_data(self, msg_id: MessageId, *, own: bool) -> None:
        if not self.is_sequencer or msg_id in self._assigned:
            return
        self._assigned.add(msg_id)
        assignment = (self.next_seq, msg_id)
        self.next_seq += 1
        self.assigned_total += 1
        self._observed(assignment[0], msg_id)
        if self.batch_delay <= 0:
            self.broadcast(OrderMsg(self.view.view_id, (assignment,)))
            return
        self._batch.append(assignment)
        if self.batch_max and len(self._batch) >= self.batch_max:
            # Size-triggered flush: a burst no longer waits out the full
            # batch window once the batch is as large as it is allowed to
            # get — the amortization is already maximal.
            self._flush_now()
        elif self._flusher is None or not self._flusher.is_alive:
            self._flusher = self.kernel.spawn(self._flush_later(self._generation))

    def drain_pending(self) -> tuple[tuple[int, MessageId], ...]:
        if not self._batch:
            return ()
        batch, self._batch = tuple(self._batch), []
        self._generation += 1  # a timer armed for this batch must not fire
        self._flusher = None
        return batch

    def _flush_now(self) -> None:
        batch, self._batch = self._batch, []
        # Bumping the generation (and dropping the flusher reference) kills
        # the timer that was armed for this batch *and* lets the next
        # on_data arm a fresh one — without this, a still-alive stale timer
        # would suppress re-arming and strand the next batch unbounded.
        self._generation += 1
        self._flusher = None
        self.broadcast(OrderMsg(self.view.view_id, tuple(batch)))

    def _flush_later(self, generation: int):
        yield self.kernel.timeout(self.batch_delay)
        # The generation check — not just a view-id comparison — kills a
        # flusher spawned before a stop()/rejoin, where the numeric view id
        # can repeat and would let a stale timer race the new view's batch.
        if self._generation != generation or self.view is None or not self._batch:
            return
        batch, self._batch = self._batch, []
        self.broadcast(OrderMsg(self.view.view_id, tuple(batch)))


class TokenRingEngine(_EngineBase):
    """Token holder orders its own pending messages, then forwards the token.

    The coordinator regenerates the token at every view installation with
    the view's starting sequence number, so a token lost with a crashed
    holder is recovered by the view change itself.
    """

    def __init__(self, kernel, owner, broadcast, send, *, idle_delay: float = 0.01):
        super().__init__(kernel, owner, broadcast, send)
        self.idle_delay = idle_delay
        self._pending: list[MessageId] = []
        self._generation = 0  # invalidates in-flight pass timers on view change

    def start_view(self, view: View, next_seq: int) -> None:
        super().start_view(view, next_seq)
        self._generation += 1
        # Own messages carried across a view change are re-announced via
        # on_data by the member; start with an empty pending list.
        self._pending = []
        if view.coordinator == self.owner:
            # Regenerate the token; we are its first holder.
            self.on_token(self.owner, TokenMsg(view.view_id, next_seq))

    def on_data(self, msg_id: MessageId, *, own: bool) -> None:
        if own:
            self._pending.append(msg_id)

    def on_token(self, src: Address, token: TokenMsg) -> None:
        if self.view is None or token.view_id != self.view.view_id:
            return  # stale token from a previous view
        seq = token.next_seq
        if self._pending:
            assignments = tuple((seq + i, m) for i, m in enumerate(self._pending))
            seq += len(self._pending)
            self._pending = []
            self.assigned_total += len(assignments)
            for assigned_seq, assigned_id in assignments:
                self._observed(assigned_seq, assigned_id)
            self.broadcast(OrderMsg(self.view.view_id, assignments))
            self._forward(TokenMsg(self.view.view_id, seq), delay=0.0)
        else:
            # Idle: keep circulating, but slowly, so an idle group does not
            # saturate the simulated wire.
            self._forward(TokenMsg(self.view.view_id, seq), delay=self.idle_delay)

    def _forward(self, token: TokenMsg, *, delay: float) -> None:
        view = self.view
        generation = self._generation
        successor = view.members[(view.rank_of(self.owner) + 1) % view.size]

        if delay <= 0:
            if successor == self.owner:
                self.on_token(self.owner, token)
            else:
                self.send(successor, token)
            return

        def later():
            yield self.kernel.timeout(delay)
            if self.view is not view or self._generation != generation:
                return
            if successor == self.owner:
                self.on_token(self.owner, token)
            else:
                self.send(successor, token)

        self.kernel.spawn(later(), name=f"token-pass@{self.owner}")


def make_engine(
    kind: str, kernel, owner, broadcast, send,
    *, batch_delay: float = 0.0, batch_max: int = 0, rotation: int = 0,
):
    """Factory selecting the ordering engine by config name.

    *rotation* spreads sequencer duty across a sharded deployment's heads
    (see :class:`SequencerEngine`). The token ring ignores it: its token
    is regenerated by the coordinator on every view change regardless, and
    ordering load is already spread around the ring.
    """
    if kind == "sequencer":
        return SequencerEngine(
            kernel, owner, broadcast, send,
            batch_delay=batch_delay, batch_max=batch_max, rotation=rotation,
        )
    if kind == "token":
        return TokenRingEngine(kernel, owner, broadcast, send)
    raise ValueError(f"unknown ordering engine {kind!r}")
