"""Member lifecycle states, shared by the member façade and its engines.

Kept in their own module so :mod:`repro.gcs.flush` and
:mod:`repro.gcs.recovery` (which drive the state machine) and
:mod:`repro.gcs.member` (which owns it) can all import them without a
cycle.
"""

IDLE = "idle"          # constructed, not yet booted or joining
JOINING = "joining"    # join requested, waiting for a view that includes us
NORMAL = "normal"      # in a view, full service
FLUSHING = "flushing"  # membership change in progress, DATA transmission held
STOPPED = "stopped"

__all__ = ["IDLE", "JOINING", "NORMAL", "FLUSHING", "STOPPED"]
