"""Group views: numbered membership snapshots."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.address import Address
from repro.util.errors import MembershipError

__all__ = ["View"]


@dataclass(frozen=True)
class View:
    """An installed membership configuration.

    Views are totally ordered by :attr:`view_id`; every member that installs
    view *n* installed the same member list for *n* (agreement comes from the
    flush protocol). ``primary`` is only meaningful when the primary-partition
    extension is enabled; under the paper's fail-stop assumption every
    installed view is primary.
    """

    view_id: int
    members: tuple[Address, ...]
    primary: bool = True

    def __post_init__(self):
        if self.view_id < 0:
            raise MembershipError("view_id must be non-negative")
        if not self.members:
            raise MembershipError("a view must have at least one member")
        if tuple(sorted(self.members)) != self.members:
            raise MembershipError("view members must be sorted")
        if len(set(self.members)) != len(self.members):
            raise MembershipError("duplicate member in view")

    @staticmethod
    def make(view_id: int, members, primary: bool = True) -> "View":
        """Build a view, sorting/deduplicating the member list."""
        return View(view_id, tuple(sorted(set(members))), primary)

    @property
    def coordinator(self) -> Address:
        """Deterministic coordinator/sequencer: the lowest-ranked member."""
        return self.members[0]

    @property
    def size(self) -> int:
        return len(self.members)

    def __contains__(self, member: Address) -> bool:
        return member in self.members

    def rank_of(self, member: Address) -> int:
        """0-based rank of *member* in the sorted member list."""
        try:
            return self.members.index(member)
        except ValueError:
            raise MembershipError(f"{member} not in view {self.view_id}") from None

    def __str__(self) -> str:
        tags = ",".join(str(m) for m in self.members)
        kind = "" if self.primary else " non-primary"
        return f"view#{self.view_id}{kind}[{tags}]"
