"""The group member: virtual synchrony tying ordering, delivery, membership.

One :class:`GroupMember` is one process's presence in the group. It owns a
reliable transport, a failure detector, an ordering engine and a delivery
queue, and runs the membership protocol that keeps them consistent across
failures, joins and leaves.

Protocol summary
----------------
**Normal operation.** ``multicast`` assigns the payload a globally unique
``MessageId``, fans the DATA out to every view member over reliable FIFO
channels, and the ordering engine (sequencer or token ring) broadcasts
sequence assignments. The delivery queue releases messages to the
application in gap-free sequence order; SAFE messages additionally wait
until every view member has acknowledged (cumulative ``StableMsg``) holding
everything up to them.

**Membership change (flush).** On a suspicion, join request or leave
request, the *initiator* — the lowest-ranked unsuspected member of the
current view — broadcasts ``FlushReq(epoch, proposed)``. Members stop
transmitting application DATA, and answer ``FlushOk`` with everything they
know about the current view's traffic. The initiator unions those reports
into a *closing list*: every message known to any survivor and not yet
delivered by all old members, ordered by the most-advanced member's sequence
assignments (ties: deterministic message-id order). ``NewView`` carries the
closing list (with payloads, so members missing a DATA can still deliver
it); receivers install the new view with the closing list pre-ordered as
sequences ``0..k-1``, which makes every closing message part of the *new*
view's totally ordered prefix — survivors deliver exactly the same set, in
the same order, before any new-view traffic. Undelivered messages whose
sender survived are re-multicast by that sender in the new view (same
message id; duplicate suppression makes this exactly-once).

**Competing flushes.** Epochs ``(new_view_id, attempt, initiator)`` are
totally ordered; members only honour the highest epoch they have seen and
reject ``NewView`` from any lower epoch. An initiator that learns of a
higher epoch abandons its own attempt. A member stuck mid-flush (its
initiator died) re-evaluates initiator candidacy on a watchdog timer. This
resolves every fail-stop schedule in which faults pause long enough for one
flush round-trip to complete — the same stabilisation assumption Transis
makes; adversarial timing beyond that is out of scope (and out of the
paper's, whose failures were unplugged cables minutes apart).

**Exclusion recovery.** A member that was falsely suspected (e.g. its cable
was unplugged and re-plugged) keeps receiving traffic tagged with view ids
above its own; after a flush-timeout of that it declares itself excluded and
re-joins through whoever is sending that traffic (state transfer is the
application's job, as in JOSHUA).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.gcs.config import GroupConfig
from repro.gcs.delivery import DeliveryQueue
from repro.gcs.failure_detector import FailureDetector
from repro.gcs.messages import (
    AGREED,
    SAFE,
    DataMsg,
    DeliveredMessage,
    FlushOk,
    FlushReq,
    Heartbeat,
    JoinReq,
    LeaveReq,
    MessageId,
    NewView,
    OrderMsg,
    Probe,
    StableMsg,
    TokenMsg,
)
from repro.gcs.ordering import make_engine
from repro.gcs.view import View
from repro.net.address import Address
from repro.net.network import Endpoint
from repro.net.transport import Transport
from repro.util.errors import GroupCommError, NotInView

__all__ = ["GroupMember", "boot_static_group"]

# Member lifecycle states.
IDLE = "idle"          # constructed, not yet booted or joining
JOINING = "joining"    # join requested, waiting for a view that includes us
NORMAL = "normal"      # in a view, full service
FLUSHING = "flushing"  # membership change in progress, DATA transmission held
STOPPED = "stopped"


class _FlushAttempt:
    """Initiator-side bookkeeping for one flush epoch."""

    def __init__(self, epoch: tuple, proposed: tuple[Address, ...], started_at: float):
        self.epoch = epoch
        self.proposed = proposed
        self.replies: dict[Address, FlushOk] = {}
        self.started_at = started_at

    @property
    def complete(self) -> bool:
        return set(self.replies) >= set(self.proposed)


class GroupMember:
    """One member of one process group.

    Parameters
    ----------
    endpoint:
        A bound network endpoint dedicated to this member.
    config:
        Protocol tuning; see :class:`~repro.gcs.config.GroupConfig`.
    on_deliver:
        ``callback(msg: DeliveredMessage)`` — the totally ordered stream.
    on_view:
        ``callback(view: View)`` — called at each view installation, before
        the view's transitional deliveries.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        config: GroupConfig = GroupConfig(),
        *,
        on_deliver: Callable[[DeliveredMessage], None] | None = None,
        on_view: Callable[[View], None] | None = None,
    ):
        self.config = config
        self.kernel = endpoint.network.kernel
        self.address = endpoint.address
        self.on_deliver = on_deliver
        self.on_view = on_view

        self._cpu_queue = None
        self._cpu_worker = None
        if config.processing_delay > 0:
            # Model per-message CPU cost: inbound protocol traffic funnels
            # through a serial worker that charges processing_delay each.
            from repro.sim.resources import Store

            self._cpu_queue = Store(self.kernel)
            self._cpu_worker = self.kernel.spawn(
                self._cpu_loop(), name=f"gcs-cpu@{endpoint.address}"
            )
        self.transport = Transport(
            endpoint,
            retransmit_interval=config.retransmit_interval,
            on_message=self._enqueue_protocol,
        )
        self.transport.on_raw(self._on_raw)
        self.detector = FailureDetector(
            self.transport,
            heartbeat_interval=config.heartbeat_interval,
            suspect_timeout=config.suspect_timeout,
            on_suspect=self._on_suspect,
        )
        self.queue = DeliveryQueue(self.address)
        self.engine = make_engine(
            config.ordering,
            self.kernel,
            self.address,
            self._bcast,
            self.transport.send,
            batch_delay=config.sequencer_batch_delay,
        )

        self.state = IDLE
        self.view: View | None = None
        self._msg_counter = 0
        #: Own multicasts not yet delivered: msg_id -> (service, payload).
        self._own_pending: dict[MessageId, tuple[str, Any]] = {}
        self._pending_joiners: set[Address] = set()
        self._pending_leavers: set[Address] = set()
        #: Current-view addresses that announced a fresh incarnation (a
        #: restarted process re-using its address); they need a view change
        #: to be re-admitted with clean protocol state.
        self._rejoining: set[Address] = set()
        #: Non-responders manually suspected by a timed-out flush attempt.
        self._extra_suspects: set[Address] = set()
        self._max_epoch: tuple | None = None
        self._attempt = 0
        self._flush: _FlushAttempt | None = None
        self._flush_entered_at = 0.0
        #: Buffered protocol traffic for views we have not installed yet.
        self._future: dict[int, list[tuple[Address, Any]]] = {}
        self._future_first_seen: float | None = None
        self._join_contacts: list[Address] = []
        self._last_stable_sent = -1
        #: Every address we ever shared a view with (anti-entropy targets).
        self._known_addresses: set[Address] = set()

        self._watchdog = self.kernel.spawn(
            self._watchdog_loop(), name=f"gcs-watchdog@{self.address}"
        )
        self._gc_task = None
        if config.gc_interval > 0:
            self._gc_task = self.kernel.spawn(
                self._gc_loop(), name=f"gcs-gc@{self.address}"
            )
        # Observability counters.
        self.stats = {
            "multicasts": 0,
            "delivered": 0,
            "view_changes": 0,
            "flushes_started": 0,
            "rejoins": 0,
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def boot(self, initial_members: Iterable[Address]) -> None:
        """Install a static initial view (all founding members call this
        with the same list — the standard bootstrap, no protocol needed)."""
        if self.state != IDLE:
            raise GroupCommError(f"boot() in state {self.state}")
        members = tuple(sorted(set(initial_members)))
        if self.address not in members:
            raise GroupCommError("boot list must include this member")
        self._install_view(View(1, members, True), closing=())

    def join(self, contacts: Iterable[Address]) -> None:
        """Ask current members to merge us into the group."""
        if self.state != IDLE:
            raise GroupCommError(f"join() in state {self.state}")
        self._join_contacts = [c for c in contacts if c != self.address]
        if not self._join_contacts:
            raise GroupCommError("join() needs at least one contact")
        self.state = JOINING
        self._send_join_requests()

    def leave(self) -> None:
        """Voluntarily depart. Mirrors JOSHUA semantics: a leave is handled
        as a forced failure — we announce it, then stop."""
        if self.state in (NORMAL, FLUSHING) and self.view is not None:
            for member in self.view.members:
                if member != self.address:
                    self.transport.send(member, LeaveReq(self.address))
        self.stop()

    def stop(self) -> None:
        """Halt all activity (process kill / node crash path)."""
        if self.state == STOPPED:
            return
        self.state = STOPPED
        self.detector.stop()
        self.engine.stop()
        self._watchdog.interrupt("member stopped")
        if self._cpu_worker is not None:
            self._cpu_worker.interrupt("member stopped")
        if self._gc_task is not None:
            self._gc_task.interrupt("member stopped")
        self.transport.close()
        if not self.transport.endpoint.closed:
            self.transport.endpoint.close()

    def multicast(self, payload: Any, service: str = AGREED) -> MessageId:
        """Reliably, totally-ordered multicast *payload* to the group.

        During a membership change the message is held and (re)transmitted
        in the next view; if we survive, it is delivered exactly once.
        """
        if service not in (AGREED, SAFE):
            raise GroupCommError(f"unknown service {service!r}")
        if self.state not in (NORMAL, FLUSHING) or self.view is None:
            raise NotInView(f"multicast in state {self.state}")
        msg_id = MessageId(self.address, self._msg_counter)
        self._msg_counter += 1
        self._own_pending[msg_id] = (service, payload)
        self.stats["multicasts"] += 1
        if self.state == NORMAL:
            self._send_data(msg_id, service, payload)
        return msg_id

    @property
    def can_multicast(self) -> bool:
        """Whether :meth:`multicast` would be accepted right now (the member
        is operating in a view or flushing into the next one — not idle,
        (re)joining after an exclusion, or stopped)."""
        return self.state in (NORMAL, FLUSHING) and self.view is not None

    @property
    def is_primary(self) -> bool:
        """Whether we are in a primary view (always true unless the
        primary-partition extension is enabled and we lost the majority)."""
        return self.view is not None and self.view.primary

    # ------------------------------------------------------------------
    # outbound helpers
    # ------------------------------------------------------------------

    def _bcast(self, msg: Any) -> None:
        if self.view is None:
            return
        for member in self.view.members:
            self.transport.send(member, msg)

    def _send_data(self, msg_id: MessageId, service: str, payload: Any) -> None:
        data = DataMsg(msg_id, self.view.view_id, service, payload)
        self._bcast(data)

    def _send_join_requests(self) -> None:
        for contact in self._join_contacts:
            self.transport.send(contact, JoinReq(self.address))

    def _broadcast_stable(self) -> None:
        ready = self.queue.agreed_ready_through()
        if ready <= self._last_stable_sent:
            return
        self._last_stable_sent = ready
        delay = 0.0
        if self.view.size > 1:
            delay = self.config.stable_ack_base + (
                self.config.stable_ack_slot * self.view.rank_of(self.address)
            )
        if delay <= 0:
            self._bcast(StableMsg(self.view.view_id, ready))
            return
        view = self.view

        def deferred():
            yield self.kernel.timeout(delay)
            if self.state == STOPPED or self.view is not view:
                return
            # Ack whatever is contiguously ready *now* (may exceed `ready`).
            self._bcast(StableMsg(view.view_id, self.queue.agreed_ready_through()))

        self.kernel.spawn(deferred(), name=f"gcs-stable@{self.address}")

    # ------------------------------------------------------------------
    # inbound dispatch
    # ------------------------------------------------------------------

    def _enqueue_protocol(self, src: Address, msg: Any) -> None:
        if self._cpu_queue is None:
            self._on_protocol(src, msg)
        else:
            self._cpu_queue.put_nowait((src, msg))

    def _cpu_loop(self):
        while True:
            src, msg = yield self._cpu_queue.get()
            yield self.kernel.timeout(self.config.processing_delay)
            if self.state == STOPPED:
                return
            self._on_protocol(src, msg)

    def _on_raw(self, src: Address, payload: Any) -> None:
        if isinstance(payload, Heartbeat):
            self.detector.handle_heartbeat(src, payload)
        elif isinstance(payload, Probe):
            self._handle_probe(src, payload)

    def _handle_probe(self, src: Address, probe: Probe) -> None:
        """A foreign group announced itself (partition merge discovery)."""
        if self.state != NORMAL or self.view is None:
            return
        if src in self.view.members or src in self._pending_joiners:
            return
        self._known_addresses.add(src)
        join_them = probe.size > self.view.size or (
            probe.size == self.view.size and probe.coordinator < self.view.coordinator
        )
        if join_them:
            self.kernel.log.warning(
                f"gcs@{self.address}",
                f"foreign group via {src} wins merge; dissolving to rejoin",
            )
            self.stats["rejoins"] += 1
            self._become_joiner([src])

    def _on_protocol(self, src: Address, msg: Any) -> None:
        if self.state == STOPPED:
            return
        self.detector.heard_from(src)
        if isinstance(msg, DataMsg):
            self._gate_by_view(src, msg, msg.view_id, self._handle_data)
        elif isinstance(msg, OrderMsg):
            self._gate_by_view(src, msg, msg.view_id, self._handle_order)
        elif isinstance(msg, StableMsg):
            self._gate_by_view(src, msg, msg.view_id, self._handle_stable)
        elif isinstance(msg, TokenMsg):
            self._gate_by_view(src, msg, msg.view_id, self._handle_token)
        elif isinstance(msg, JoinReq):
            self._handle_join_req(src, msg)
        elif isinstance(msg, LeaveReq):
            self._handle_leave_req(src, msg)
        elif isinstance(msg, FlushReq):
            self._handle_flush_req(src, msg)
        elif isinstance(msg, FlushOk):
            self._handle_flush_ok(src, msg)
        elif isinstance(msg, NewView):
            self._handle_new_view(src, msg)

    def _gate_by_view(self, src: Address, msg: Any, view_id: int, handler) -> None:
        """Route ordinary traffic by view: current -> handle, future ->
        buffer until installed, past -> drop as stale."""
        current = self.view.view_id if self.view is not None else -1
        if view_id == current:
            handler(src, msg)
        elif view_id > current:
            self._future.setdefault(view_id, []).append((src, msg))
            if self._future_first_seen is None:
                self._future_first_seen = self.kernel.now
        # else: stale view, drop silently

    # -- ordinary traffic ------------------------------------------------

    def _handle_data(self, src: Address, data: DataMsg) -> None:
        if self.queue.add_data(data):
            self.engine.on_data(data.msg_id, own=data.msg_id.sender == self.address)
            self._broadcast_stable()
            self._deliver_ready()

    def _handle_order(self, src: Address, order: OrderMsg) -> None:
        self.queue.add_assignments(order.assignments)
        self._broadcast_stable()
        self._deliver_ready()

    def _handle_stable(self, src: Address, stable: StableMsg) -> None:
        self.queue.record_stable(src, stable.acked_through)
        self._deliver_ready()

    def _handle_token(self, src: Address, token: TokenMsg) -> None:
        self.engine.on_token(src, token)

    def _deliver_ready(self) -> None:
        for msg in self.queue.pop_deliverable():
            self._own_pending.pop(msg.msg_id, None)
            self.stats["delivered"] += 1
            if self.on_deliver is not None:
                self.on_deliver(msg)

    # -- membership triggers ------------------------------------------------

    def _on_suspect(self, peer: Address) -> None:
        self._maybe_initiate_flush()

    def _handle_join_req(self, src: Address, req: JoinReq) -> None:
        if self.state not in (NORMAL, FLUSHING) or self.view is None:
            return
        if req.joiner in self.view.members:
            # A previous incarnation of this address is still in the view;
            # its protocol state died with it. Re-admit the new incarnation
            # through a view change.
            self._rejoining.add(req.joiner)
        # The join request itself is proof of life.
        self.detector.forgive(req.joiner)
        self._pending_joiners.add(req.joiner)
        # Make sure the member who will actually coordinate hears about it.
        candidate = self._initiator_candidate()
        if candidate is not None and candidate != self.address:
            self.transport.send(candidate, req)
        self._maybe_initiate_flush()

    def _handle_leave_req(self, src: Address, req: LeaveReq) -> None:
        if self.state not in (NORMAL, FLUSHING) or self.view is None:
            return
        if req.leaver in self.view.members:
            self._pending_leavers.add(req.leaver)
            self._maybe_initiate_flush()

    def _membership_dirty(self) -> bool:
        if self.view is None:
            return False
        members = set(self.view.members)
        suspects = (self.detector.suspected | self._extra_suspects) & members
        joiners = self._pending_joiners - members
        rejoining = self._rejoining & members
        leavers = self._pending_leavers & members
        return bool(suspects or joiners or rejoining or leavers)

    def _initiator_candidate(self) -> Address | None:
        if self.view is None:
            return None
        bad = (
            self.detector.suspected
            | self._extra_suspects
            | self._pending_leavers
            | self._rejoining  # a fresh incarnation has no view history
        )
        live = [m for m in self.view.members if m not in bad]
        return min(live) if live else None

    def _maybe_initiate_flush(self) -> None:
        if self.state not in (NORMAL, FLUSHING) or self.view is None:
            return
        if not self._membership_dirty():
            return
        if self._initiator_candidate() != self.address:
            if self.state == NORMAL:
                # Remember when we started waiting for someone else's flush,
                # so the watchdog can take over if they never deliver one.
                self.state = FLUSHING
                self._flush_entered_at = self.kernel.now
            return
        self._start_flush_attempt()

    def _start_flush_attempt(self) -> None:
        self._attempt += 1
        epoch = (self.view.view_id + 1, self._attempt, self.address)
        bad = self.detector.suspected | self._extra_suspects | self._pending_leavers
        proposed = (set(self.view.members) - bad - self._rejoining) | (
            self._pending_joiners - self.detector.suspected - self._extra_suspects
        )
        proposed.add(self.address)
        proposed_tuple = tuple(sorted(proposed))
        self._flush = _FlushAttempt(epoch, proposed_tuple, self.kernel.now)
        self.state = FLUSHING
        self._flush_entered_at = self.kernel.now
        self.stats["flushes_started"] += 1
        self.kernel.log.info(
            f"gcs@{self.address}", f"flush epoch={epoch} proposed={proposed_tuple}"
        )
        req = FlushReq(epoch, proposed_tuple)
        for member in proposed_tuple:
            if member == self.address:
                self._handle_flush_req(self.address, req)
            else:
                self.transport.send(member, req)

    # -- flush protocol ------------------------------------------------------

    def _handle_flush_req(self, src: Address, req: FlushReq) -> None:
        if self._max_epoch is not None and req.epoch < self._max_epoch:
            return  # stale attempt
        if self.view is not None and req.epoch[0] <= self.view.view_id:
            return  # requester is behind us; it will recover via rejoin
        coordinator = req.epoch[2]
        if self._max_epoch is None or req.epoch > self._max_epoch:
            self._max_epoch = req.epoch
            if self._flush is not None and self._flush.epoch < req.epoch:
                self._flush = None  # our attempt was superseded
        if self.state in (NORMAL, FLUSHING):
            self.state = FLUSHING
            self._flush_entered_at = self.kernel.now
        known, orderings, delivered = self.queue.flush_report()
        my_view = self.view.view_id if self.view is not None else -1
        ok = FlushOk(req.epoch, self.address, known, orderings, delivered, my_view)
        if coordinator == self.address:
            self._handle_flush_ok(self.address, ok)
        else:
            self.transport.send(coordinator, ok)

    def _handle_flush_ok(self, src: Address, ok: FlushOk) -> None:
        flush = self._flush
        if flush is None or ok.epoch != flush.epoch:
            return
        if ok.sender not in flush.proposed:
            return
        if ok.view_id >= flush.epoch[0]:
            # A responder already installed the view id we were about to
            # create: we missed a view entirely. Abort; the exclusion
            # recovery (future-traffic rejoin) will bring us back in sync.
            self._flush = None
            return
        flush.replies[ok.sender] = ok
        if flush.complete:
            self._finalize_flush(flush)

    def _finalize_flush(self, flush: _FlushAttempt) -> None:
        old_members = set(self.view.members) if self.view is not None else set()
        # Union of payloads anyone still holds.
        known: dict[MessageId, tuple[str, Any]] = {}
        for ok in flush.replies.values():
            for msg_id, (service, payload) in ok.known:
                known.setdefault(msg_id, (service, payload))
        # Sequence assignments from the most-advanced responders (highest
        # installed view): their order extends every other survivor's prefix.
        best_vid = max(ok.view_id for ok in flush.replies.values())
        orderings: dict[int, MessageId] = {}
        for ok in flush.replies.values():
            if ok.view_id != best_vid:
                continue
            for seq, msg_id in ok.orderings:
                existing = orderings.get(seq)
                if existing is not None and existing != msg_id:
                    raise GroupCommError(
                        f"flush found conflicting assignment at seq {seq}: "
                        f"{existing} vs {msg_id}"
                    )
                orderings[seq] = msg_id
        # Messages every surviving *old* member already delivered need not
        # (must not) be redelivered; fresh joiners (view_id == -1) get state
        # transfer at the application layer instead and are excluded from
        # the intersection. Members lagging a view behind deliver the
        # difference from the closing list (duplicate suppression protects
        # the advanced members).
        old_responders = [
            ok for a, ok in flush.replies.items()
            if a in old_members and ok.view_id >= 0
        ]
        if old_responders:
            delivered_by_all = set.intersection(
                *[set(ok.delivered) for ok in old_responders]
            )
        else:
            delivered_by_all = set()
        ordered_ids = [m for _s, m in sorted(orderings.items())]
        unordered = sorted(set(known) - set(ordered_ids))
        closing = tuple(
            (mid, known[mid][0], known[mid][1])
            for mid in [*ordered_ids, *unordered]
            if mid in known and mid not in delivered_by_all
        )
        primary = True
        if self.config.primary_partition and self.view is not None:
            survivors = set(flush.proposed) & old_members
            primary = self.view.primary and len(survivors) * 2 > len(old_members)
        new_view = NewView(
            flush.epoch, flush.epoch[0], flush.proposed, closing, primary
        )
        self.kernel.log.info(
            f"gcs@{self.address}",
            f"installing view {flush.epoch[0]} members={flush.proposed} "
            f"closing={len(closing)}",
        )
        for member in flush.proposed:
            if member == self.address:
                self._handle_new_view(self.address, new_view)
            else:
                self.transport.send(member, new_view)

    def _handle_new_view(self, src: Address, nv: NewView) -> None:
        if self._max_epoch is not None and nv.epoch < self._max_epoch:
            return  # superseded by a newer flush we already promised
        if self.view is not None and nv.view_id <= self.view.view_id:
            return
        if self.address not in nv.members:
            return  # shouldn't happen (coordinator only sends to members)
        self._max_epoch = max(self._max_epoch or nv.epoch, nv.epoch)
        view = View(nv.view_id, tuple(sorted(nv.members)), nv.primary)
        self._install_view(view, nv.closing)

    # -- view installation ------------------------------------------------------

    def _install_view(self, view: View, closing: tuple) -> None:
        departed = (
            set(self.view.members) - set(view.members) if self.view is not None else set()
        )
        for gone in departed:
            self.transport.forget_peer(gone)
        self.view = view
        self._known_addresses |= set(view.members)
        self._known_addresses.discard(self.address)
        self.queue.start_view(view, closing)
        self.engine.start_view(view, len(closing))
        self.detector.monitor(view.members)
        for member in view.members:
            self.detector.forgive(member)
        members = set(view.members)
        self._extra_suspects -= members
        self._pending_joiners -= members
        # Any rejoin concern is resolved by this installation one way or the
        # other; a racing rejoin will resend its JoinReq on its watchdog.
        self._rejoining.clear()
        self._pending_leavers &= members
        self._flush = None
        self._attempt = 0
        self.state = NORMAL
        self._last_stable_sent = -1
        self._future_first_seen = None
        self.stats["view_changes"] += 1
        if self.on_view is not None:
            self.on_view(view)
        # Transitional deliveries: the agreed part of the closing list is
        # deliverable immediately; SAFE entries wait for new-view stability.
        self._broadcast_stable()
        self._deliver_ready()
        # Re-multicast own undelivered messages the closing did not carry.
        closing_ids = {mid for mid, _s, _p in closing}
        for msg_id, (service, payload) in sorted(self._own_pending.items()):
            if msg_id not in closing_ids and not self.queue.was_delivered(msg_id):
                self._send_data(msg_id, service, payload)
        # Replay buffered traffic for this view; drop older buffers.
        buffered = self._future.pop(view.view_id, [])
        self._future = {v: msgs for v, msgs in self._future.items() if v > view.view_id}
        for src, msg in buffered:
            self._on_protocol(src, msg)
        # Residual membership work (e.g. joiners queued during the change)?
        self._maybe_initiate_flush()

    # ------------------------------------------------------------------
    # watchdog
    # ------------------------------------------------------------------

    def _watchdog_loop(self):
        period = self.config.flush_timeout / 2
        while True:
            yield self.kernel.timeout(period)
            if self.state == STOPPED:
                return
            now = self.kernel.now
            if self.state == JOINING:
                self._send_join_requests()
            elif self.state == FLUSHING:
                if now - self._flush_entered_at >= self.config.flush_timeout:
                    self._flush_entered_at = now
                    if self._flush is not None:
                        # Our own attempt stalled: suspect the non-responders
                        # and retry without them.
                        missing = set(self._flush.proposed) - set(self._flush.replies)
                        missing.discard(self.address)
                        self._extra_suspects |= missing
                        self._pending_joiners -= missing
                        self._rejoining -= missing
                        self._flush = None
                    self._maybe_initiate_flush()
                    # If after re-evaluation we are not the initiator and
                    # nothing is dirty anymore, fall back to normal.
                    if not self._membership_dirty() and self._flush is None:
                        self.state = NORMAL
            elif self.state == NORMAL:
                if self._membership_dirty():
                    self._maybe_initiate_flush()
                elif (
                    self._future
                    and self._future_first_seen is not None
                    and now - self._future_first_seen >= self.config.flush_timeout
                ):
                    self._rejoin_after_exclusion()
                else:
                    self._send_probes()

    def _gc_loop(self):
        while True:
            yield self.kernel.timeout(self.config.gc_interval)
            if self.state == STOPPED:
                return
            if self.state == NORMAL:
                self.stats["gc_released"] = self.stats.get("gc_released", 0) + self.queue.gc()

    def _send_probes(self) -> None:
        """Anti-entropy: announce our view to known-but-foreign addresses."""
        if self.view is None:
            return
        foreign = self._known_addresses - set(self.view.members)
        if not foreign:
            return
        probe = Probe(self.view.view_id, self.view.size, self.view.coordinator)
        for address in foreign:
            self.transport.send_raw(address, probe)

    def _rejoin_after_exclusion(self) -> None:
        """We keep hearing traffic from views beyond ours: the group moved
        on without us (false suspicion). Re-enter through whoever is
        talking."""
        contacts = sorted({src for msgs in self._future.values() for src, _m in msgs})
        if not contacts:
            return
        self.kernel.log.warning(
            f"gcs@{self.address}", f"excluded from group; rejoining via {contacts}"
        )
        self.stats["rejoins"] += 1
        self._become_joiner(contacts)

    def _become_joiner(self, contacts: list[Address]) -> None:
        """Dissolve our current membership and re-enter as a fresh joiner.

        Delivered-message ids are retained (duplicate suppression must span
        the rejoin); everything view-scoped is discarded.
        """
        self.state = JOINING
        self.view = None
        self.engine.stop()
        self._flush = None
        self._max_epoch = None
        self._attempt = 0
        self._pending_joiners.clear()
        self._pending_leavers.clear()
        self._rejoining.clear()
        self._extra_suspects.clear()
        self._future.clear()
        self._future_first_seen = None
        self.detector.monitor(())
        self._join_contacts = [c for c in contacts if c != self.address]
        self._send_join_requests()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GroupMember {self.address} {self.state} view={self.view}>"


def boot_static_group(members: list[GroupMember]) -> View:
    """Boot several members into one initial view (test/startup helper)."""
    addresses = [m.address for m in members]
    for member in members:
        member.boot(addresses)
    return members[0].view
