"""The group member: virtual synchrony tying ordering, delivery, membership.

One :class:`GroupMember` is one process's presence in the group. It owns a
reliable transport, a failure detector, an ordering engine and a delivery
queue, and coordinates two protocol engines that keep them consistent
across failures, joins and leaves:

* :class:`~repro.gcs.flush.FlushEngine` — the membership-change state
  machine: trigger sets, initiator election, the
  ``FlushReq``/``FlushOk``/``NewView`` conversation, the
  ``(new_view_id, attempt, initiator)`` epoch order that resolves
  competing flushes, and the stalled-flush watchdog policy.
* :class:`~repro.gcs.recovery.RecoveryTracker` — exclusion detection and
  rejoin: buffering of future-view traffic, the excluded-member verdict,
  join bookkeeping, and the anti-entropy probes that merge healed
  partitions.

The façade keeps what is *not* membership protocol: the ordered-delivery
hot path — ``multicast`` assigns a globally unique ``MessageId`` and fans
DATA out over reliable FIFO channels, the ordering engine broadcasts
sequence assignments, the delivery queue releases messages in gap-free
sequence order (SAFE messages additionally wait for cumulative
``StableMsg`` acks from every member) — and view installation, which cuts
every component over at once and delivers the closing list as the new
view's totally ordered prefix.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.gcs.batching import DataBatcher
from repro.gcs.config import GroupConfig
from repro.gcs.delivery import DeliveryQueue
from repro.gcs.failure_detector import FailureDetector
from repro.gcs.flush import FlushEngine
from repro.gcs.lifecycle import FLUSHING, IDLE, JOINING, NORMAL, STOPPED
from repro.gcs.messages import (
    AGREED,
    SAFE,
    DataBatchMsg,
    DataMsg,
    DeliveredMessage,
    FlushOk,
    FlushReq,
    Heartbeat,
    JoinReq,
    LeaveReq,
    MessageId,
    NewView,
    OrderMsg,
    Probe,
    StableMsg,
    TokenMsg,
)
from repro.gcs.ordering import make_engine
from repro.gcs.recovery import RecoveryTracker
from repro.gcs.view import View
from repro.net.address import Address
from repro.net.network import Endpoint
from repro.net.transport import Transport
from repro.obs.collector import collector_of
from repro.util.errors import GroupCommError, NotInView

__all__ = [
    "GroupMember",
    "boot_static_group",
    "IDLE",
    "JOINING",
    "NORMAL",
    "FLUSHING",
    "STOPPED",
]


class GroupMember:
    """One member of one process group.

    Parameters
    ----------
    endpoint:
        A bound network endpoint dedicated to this member.
    config:
        Protocol tuning; see :class:`~repro.gcs.config.GroupConfig`.
    on_deliver:
        ``callback(msg: DeliveredMessage)`` — the totally ordered stream.
    on_view:
        ``callback(view: View)`` — called at each view installation, before
        the view's transitional deliveries.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        config: GroupConfig | None = None,
        *,
        on_deliver: Callable[[DeliveredMessage], None] | None = None,
        on_view: Callable[[View], None] | None = None,
    ):
        if config is None:
            config = GroupConfig()
        self.config = config
        self.network = endpoint.network
        self.kernel = endpoint.network.kernel
        self.address = endpoint.address
        self.on_deliver = on_deliver
        self.on_view = on_view

        self._cpu_queue = None
        self._cpu_worker = None
        if config.processing_delay > 0:
            # Model per-message CPU cost: inbound protocol traffic funnels
            # through a serial worker that charges processing_delay each.
            from repro.sim.resources import Store

            self._cpu_queue = Store(self.kernel)
            self._cpu_worker = self.kernel.spawn(
                self._cpu_loop(), name=f"gcs-cpu@{endpoint.address}"
            )
        self.transport = Transport(
            endpoint,
            retransmit_interval=config.retransmit_interval,
            on_message=self._enqueue_protocol,
        )
        self.transport.on_raw(self._on_raw)
        self.detector = FailureDetector(
            self.transport,
            heartbeat_interval=config.heartbeat_interval,
            suspect_timeout=config.suspect_timeout,
            on_suspect=self._on_suspect,
        )
        self.queue = DeliveryQueue(self.address)
        self.engine = make_engine(
            config.ordering,
            self.kernel,
            self.address,
            self._bcast,
            self.transport.send,
            batch_delay=config.sequencer_batch_delay,
            batch_max=config.sequencer_batch_max,
            rotation=config.group_id,
        )
        # Forward ordering assignments to an attached trace collector
        # (observation only — the engine behaves identically either way).
        self.engine.observer = self._order_observed
        #: Shard label the observability layer stamps on this group's
        #: spans/metrics (None for single-group runs — historical output).
        self._obs_shard = config.group_id if config.shard_count > 1 else None
        self.detector._obs_shard = self._obs_shard
        #: Outbound DATA coalescing (None = unbatched, the default: every
        #: multicast is its own DataMsg frame, byte-for-byte unchanged).
        self.batcher: DataBatcher | None = None
        if config.data_batch_delay > 0:
            self.batcher = DataBatcher(
                self.kernel,
                self._bcast,
                max_delay=config.data_batch_delay,
                min_delay=config.data_batch_min_delay,
                max_msgs=config.data_batch_max_msgs,
                max_bytes=config.data_batch_max_bytes,
                on_flush=self._batch_flushed,
            )

        self.state = IDLE
        self.view: View | None = None
        self._msg_counter = 0
        #: Own multicasts not yet delivered: msg_id -> (service, payload).
        self._own_pending: dict[MessageId, tuple[str, Any]] = {}
        self._last_stable_sent = -1

        self.flush = FlushEngine(self)
        self.recovery = RecoveryTracker(self)
        # Typed handler-dispatch table; ordinary traffic is view-gated,
        # membership traffic goes straight to the flush engine.
        self._dispatch: dict[type, Callable[[Address, Any], None]] = {
            DataMsg: self._gated(self._handle_data),
            DataBatchMsg: self._gated(self._handle_data_batch),
            OrderMsg: self._gated(self._handle_order),
            StableMsg: self._gated(self._handle_stable),
            TokenMsg: self._gated(self._handle_token),
            JoinReq: self.flush.on_join_req,
            LeaveReq: self.flush.on_leave_req,
            FlushReq: self.flush.on_flush_req,
            FlushOk: self.flush.on_flush_ok,
            NewView: self.flush.on_new_view,
        }

        self._watchdog = self.kernel.spawn(
            self._watchdog_loop(), name=f"gcs-watchdog@{self.address}"
        )
        self._gc_task = None
        if config.gc_interval > 0:
            self._gc_task = self.kernel.spawn(
                self._gc_loop(), name=f"gcs-gc@{self.address}"
            )
        # Observability counters.
        self.stats = {
            "multicasts": 0,
            "delivered": 0,
            "view_changes": 0,
            "flushes_started": 0,
            "rejoins": 0,
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def boot(self, initial_members: Iterable[Address]) -> None:
        """Install a static initial view (all founding members call this
        with the same list — the standard bootstrap, no protocol needed)."""
        if self.state != IDLE:
            raise GroupCommError(f"boot() in state {self.state}")
        members = tuple(sorted(set(initial_members)))
        if self.address not in members:
            raise GroupCommError("boot list must include this member")
        self.install_view(View(1, members, True), closing=())

    def join(self, contacts: Iterable[Address]) -> None:
        """Ask current members to merge us into the group."""
        if self.state != IDLE:
            raise GroupCommError(f"join() in state {self.state}")
        contacts = [c for c in contacts if c != self.address]
        if not contacts:
            raise GroupCommError("join() needs at least one contact")
        self.state = JOINING
        self.recovery.join_contacts = contacts
        self.recovery.send_join_requests()

    def leave(self) -> None:
        """Voluntarily depart. Mirrors JOSHUA semantics: a leave is handled
        as a forced failure — we announce it, then stop."""
        if self.in_group and self.view is not None:
            for member in self.view.members:
                if member != self.address:
                    self.transport.send(member, LeaveReq(self.address))
        self.stop()

    def stop(self) -> None:
        """Halt all activity (process kill / node crash path)."""
        if self.state == STOPPED:
            return
        self.state = STOPPED
        self.detector.stop()
        self.engine.stop()
        if self.batcher is not None:
            self.batcher.stop()
        self._watchdog.interrupt("member stopped")
        if self._cpu_worker is not None:
            self._cpu_worker.interrupt("member stopped")
        if self._gc_task is not None:
            self._gc_task.interrupt("member stopped")
        self.transport.close()
        if not self.transport.endpoint.closed:
            self.transport.endpoint.close()

    def multicast(self, payload: Any, service: str = AGREED) -> MessageId:
        """Reliably, totally-ordered multicast *payload* to the group.

        During a membership change the message is held and (re)transmitted
        in the next view; if we survive, it is delivered exactly once.
        """
        if service not in (AGREED, SAFE):
            raise GroupCommError(f"unknown service {service!r}")
        if not self.can_multicast:
            raise NotInView(f"multicast in state {self.state}")
        msg_id = MessageId(self.address, self._msg_counter)
        self._msg_counter += 1
        self._own_pending[msg_id] = (service, payload)
        self.stats["multicasts"] += 1
        collector = collector_of(self.network)
        if collector is not None:
            collector.gcs_multicast(self.address.node, msg_id, service, payload,
                                    shard=self._obs_shard)
        if self.state == NORMAL:
            self._send_data(msg_id, service, payload)
        return msg_id

    @property
    def in_group(self) -> bool:
        """Operating in a view or flushing into the next one."""
        return self.state in (NORMAL, FLUSHING)

    @property
    def can_multicast(self) -> bool:
        """Whether :meth:`multicast` would be accepted right now (the member
        is operating in a view or flushing into the next one — not idle,
        (re)joining after an exclusion, or stopped)."""
        return self.in_group and self.view is not None

    @property
    def is_primary(self) -> bool:
        """Whether we are in a primary view (always true unless the
        primary-partition extension is enabled and we lost the majority)."""
        return self.view is not None and self.view.primary

    def seq_surface(self) -> dict:
        """The per-group sequence surface for the local read path: the
        delivery queue's cumulative/within-view positions plus the ordering
        engine's cumulative assignment count. Read-only."""
        surface = self.queue.seq_surface()
        surface["assigned_total"] = self.engine.assigned_total
        return surface

    # ------------------------------------------------------------------
    # outbound helpers
    # ------------------------------------------------------------------

    def _bcast(self, msg: Any) -> None:
        if self.view is None:
            return
        for member in self.view.members:
            self.transport.send(member, msg)

    def _send_data(self, msg_id: MessageId, service: str, payload: Any) -> None:
        if self.batcher is not None:
            self.batcher.submit(msg_id, service, payload)
            return
        data = DataMsg(msg_id, self.view.view_id, service, payload)
        self._bcast(data)

    def flush_outbound(self) -> None:
        """Push everything buffered on the outbound path onto the wire *and*
        into our own queue, synchronously.

        Called by the flush engine the moment we agree to a membership
        change, **before** :meth:`DeliveryQueue.flush_report` is taken:

        * a pending DATA batch still inside the :class:`DataBatcher` Nagle
          window is broadcast and self-applied, so those commands appear in
          our flush report as *known* messages (and, if we are the
          sequencer, pick up their sequence assignments right here);
        * sequence assignments buffered inside the sequencer's ORDER batch
          window are broadcast and self-applied, so the assignments the
          sequencer already made (they advanced ``next_seq``) ride the
          closing list instead of being silently dropped with the view.

        Self-application is synchronous (loopback frames are also sent, and
        are suppressed as duplicates on arrival) because the flush report is
        built in this same call stack — an async loopback would miss it.
        """
        if self.view is None:
            return
        if self.batcher is not None:
            entries = self.batcher.drain()
            if len(entries) == 1:
                msg_id, service, payload = entries[0]
                data = DataMsg(msg_id, self.view.view_id, service, payload)
                self._bcast(data)
                self._handle_data(self.address, data)
            elif entries:
                batch = DataBatchMsg(self.view.view_id, entries)
                self._bcast(batch)
                self._handle_data_batch(self.address, batch)
        pending = self.engine.drain_pending()
        if pending:
            order = OrderMsg(self.view.view_id, pending)
            self._bcast(order)
            self._handle_order(self.address, order)

    def _broadcast_stable(self) -> None:
        ready = self.queue.agreed_ready_through()
        if ready <= self._last_stable_sent:
            return
        self._last_stable_sent = ready
        delay = 0.0
        if self.view.size > 1:
            delay = self.config.stable_ack_base + (
                self.config.stable_ack_slot * self.view.rank_of(self.address)
            )
        if delay <= 0:
            self._bcast(StableMsg(self.view.view_id, ready))
            return
        view = self.view

        def deferred():
            yield self.kernel.timeout(delay)
            if self.state == STOPPED or self.view is not view:
                return
            # Ack whatever is contiguously ready *now* (may exceed `ready`).
            self._bcast(StableMsg(view.view_id, self.queue.agreed_ready_through()))

        self.kernel.spawn(deferred(), name=f"gcs-stable@{self.address}")

    # ------------------------------------------------------------------
    # inbound dispatch
    # ------------------------------------------------------------------

    def _enqueue_protocol(self, src: Address, msg: Any) -> None:
        if self._cpu_queue is None:
            self._on_protocol(src, msg)
        else:
            self._cpu_queue.put_nowait((src, msg))

    def _cpu_loop(self):
        while True:
            src, msg = yield self._cpu_queue.get()
            yield self.kernel.timeout(self.config.processing_delay)
            if self.state == STOPPED:
                return
            self._on_protocol(src, msg)

    def _on_raw(self, src: Address, payload: Any) -> None:
        if isinstance(payload, Heartbeat):
            self.detector.handle_heartbeat(src, payload)
        elif isinstance(payload, Probe):
            self.recovery.handle_probe(src, payload)

    def _on_protocol(self, src: Address, msg: Any) -> None:
        if self.state == STOPPED:
            return
        self.detector.heard_from(src)
        handler = self._dispatch.get(type(msg))
        if handler is not None:
            handler(src, msg)

    def _gated(self, handler) -> Callable[[Address, Any], None]:
        """Wrap *handler* with view gating: current view -> handle, future
        view -> buffer until installed, past view -> drop as stale."""

        def dispatch(src: Address, msg: Any) -> None:
            current = self.view.view_id if self.view is not None else -1
            if msg.view_id == current:
                handler(src, msg)
            elif msg.view_id > current:
                self.recovery.buffer_future(msg.view_id, src, msg)
            # else: stale view, drop silently

        return dispatch

    # -- ordinary traffic ------------------------------------------------

    def _handle_data(self, src: Address, data: DataMsg) -> None:
        if self.queue.add_data(data):
            self.engine.on_data(data.msg_id, own=data.msg_id.sender == self.address)
            self._broadcast_stable()
            self._deliver_ready()

    def _handle_data_batch(self, src: Address, batch: DataBatchMsg) -> None:
        fresh = self.queue.add_batch(batch)
        for data in fresh:
            self.engine.on_data(data.msg_id, own=data.msg_id.sender == self.address)
        if fresh:
            self._broadcast_stable()
            self._deliver_ready()

    def _handle_order(self, src: Address, order: OrderMsg) -> None:
        self.queue.add_assignments(order.assignments)
        self._broadcast_stable()
        self._deliver_ready()

    def _handle_stable(self, src: Address, stable: StableMsg) -> None:
        self.queue.record_stable(src, stable.acked_through)
        self._deliver_ready()

    def _handle_token(self, src: Address, token: TokenMsg) -> None:
        self.engine.on_token(src, token)

    def _deliver_ready(self) -> None:
        collector = collector_of(self.network)
        for msg in self.queue.pop_deliverable():
            self._own_pending.pop(msg.msg_id, None)
            self.stats["delivered"] += 1
            if collector is not None:
                collector.gcs_delivered(self.address.node, msg,
                                        self.queue.snapshot(),
                                        shard=self._obs_shard)
            if self.on_deliver is not None:
                self.on_deliver(msg)

    def _order_observed(self, seq: int, msg_id: MessageId) -> None:
        collector = collector_of(self.network)
        if collector is not None:
            collector.gcs_ordered(self.address.node, seq, msg_id,
                                  shard=self._obs_shard)

    def _batch_flushed(self, count: int, reason: str) -> None:
        collector = collector_of(self.network)
        if collector is not None:
            collector.gcs_batch_flush(self.address.node, count, reason,
                                      shard=self._obs_shard)

    def _on_suspect(self, peer: Address) -> None:
        self.flush.on_suspect(peer)

    # ------------------------------------------------------------------
    # view installation
    # ------------------------------------------------------------------

    def install_view(self, view: View, closing: tuple) -> None:
        """Cut over every component to *view*, delivering its closing list
        as the totally ordered prefix. Called by the flush engine when a
        ``NewView`` lands (and by :meth:`boot` for the static view)."""
        departed = (
            set(self.view.members) - set(view.members) if self.view is not None else set()
        )
        # Sorted: forget_peer allocates reopen epochs from a simulation-wide
        # counter, so with >= 2 departures the iteration order is on the wire.
        for gone in sorted(departed):
            self.transport.forget_peer(gone)
        self.view = view
        self.recovery.note_members(view)
        self.queue.start_view(view, closing)
        self.engine.start_view(view, len(closing))
        if self.batcher is not None:
            self.batcher.start_view(view)
        self.detector.monitor(view.members)
        for member in view.members:
            self.detector.forgive(member)
        self.flush.on_view_installed(view)
        self.state = NORMAL
        self._last_stable_sent = -1
        self.recovery.future_first_seen = None
        self.stats["view_changes"] += 1
        collector = collector_of(self.network)
        if collector is not None:
            sequencer_of = getattr(self.engine, "sequencer_of", None)
            sequencer = (
                str(sequencer_of(view)) if sequencer_of is not None else None
            )
            collector.gcs_view(
                self.address.node, view.view_id,
                [str(m) for m in view.members], sequencer,
                shard=self._obs_shard,
            )
        if self.on_view is not None:
            self.on_view(view)
        # Transitional deliveries: the agreed part of the closing list is
        # deliverable immediately; SAFE entries wait for new-view stability.
        self._broadcast_stable()
        self._deliver_ready()
        # Re-multicast own undelivered messages the closing did not carry.
        closing_ids = {mid for mid, _s, _p in closing}
        for msg_id, (service, payload) in sorted(self._own_pending.items()):
            if msg_id not in closing_ids and not self.queue.was_delivered(msg_id):
                self._send_data(msg_id, service, payload)
        # Replay buffered traffic for this view; drop older buffers.
        for src, msg in self.recovery.collect_buffered(view.view_id):
            self._on_protocol(src, msg)
        # Residual membership work (e.g. joiners queued during the change)?
        self.flush.maybe_initiate()

    # ------------------------------------------------------------------
    # watchdog
    # ------------------------------------------------------------------

    def _watchdog_loop(self):
        period = self.config.flush_timeout / 2
        while True:
            yield self.kernel.timeout(period)
            if self.state == STOPPED:
                return
            now = self.kernel.now
            if self.state == JOINING:
                self.recovery.send_join_requests()
            elif self.state == FLUSHING:
                if now - self.flush.entered_at >= self.config.flush_timeout:
                    self.flush.on_watchdog_timeout(now)
            elif self.state == NORMAL:
                if self.flush.membership_dirty():
                    self.flush.maybe_initiate()
                elif self.recovery.future_stale(now):
                    self.recovery.rejoin_after_exclusion()
                else:
                    self.recovery.send_probes()

    def _gc_loop(self):
        while True:
            yield self.kernel.timeout(self.config.gc_interval)
            if self.state == STOPPED:
                return
            if self.state == NORMAL:
                self.stats["gc_released"] = self.stats.get("gc_released", 0) + self.queue.gc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GroupMember {self.address} {self.state} view={self.view}>"


def boot_static_group(members: list[GroupMember]) -> View:
    """Boot several members into one initial view (test/startup helper)."""
    addresses = [m.address for m in members]
    for member in members:
        member.boot(addresses)
    return members[0].view
