"""Typed PVFS metadata client with replica failover."""

from __future__ import annotations

from typing import Generator

from repro.aa.client import ReplicatedClient
from repro.net.address import Address
from repro.net.network import Network
from repro.pvfs.metadata import FileAttr
from repro.pvfs.wire import (
    Create,
    GetAttr,
    Mkdir,
    ReadDir,
    Rename,
    Rmdir,
    SetAttr,
    StatFs,
    Unlink,
)

__all__ = ["PVFSClient"]


class PVFSClient:
    """Metadata operations against any replica of the MDS group."""

    def __init__(
        self,
        network: Network,
        node: str,
        replicas: list[Address],
        *,
        timeout: float = 3.0,
        prefer: Address | None = None,
    ):
        self._rc = ReplicatedClient(
            network, node, replicas, timeout=timeout, prefer=prefer
        )

    @property
    def stats(self) -> dict:
        return self._rc.stats

    def mkdir(self, path: str) -> Generator:
        attr: FileAttr = yield from self._rc.call(Mkdir(path))
        return attr

    def create(self, path: str) -> Generator:
        attr: FileAttr = yield from self._rc.call(Create(path))
        return attr

    def getattr(self, path: str) -> Generator:
        attr: FileAttr = yield from self._rc.call(GetAttr(path))
        return attr

    def setattr(self, path: str, *, size: int) -> Generator:
        attr: FileAttr = yield from self._rc.call(SetAttr(path, size))
        return attr

    def readdir(self, path: str) -> Generator:
        names: list[str] = yield from self._rc.call(ReadDir(path))
        return names

    def unlink(self, path: str) -> Generator:
        yield from self._rc.call(Unlink(path))

    def rmdir(self, path: str) -> Generator:
        yield from self._rc.call(Rmdir(path))

    def rename(self, src: str, dst: str) -> Generator:
        yield from self._rc.call(Rename(src, dst))

    def statfs(self) -> Generator:
        stats: dict = yield from self._rc.call(StatFs())
        return stats
