"""PVFS metadata operation records (the replicated request payloads)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.codec import register_wire_types

__all__ = ["Mkdir", "Create", "GetAttr", "SetAttr", "ReadDir", "Unlink", "Rmdir", "Rename", "StatFs"]


@dataclass(frozen=True)
class Mkdir:
    path: str


@dataclass(frozen=True)
class Create:
    path: str


@dataclass(frozen=True)
class GetAttr:
    path: str


@dataclass(frozen=True)
class SetAttr:
    path: str
    size: int


@dataclass(frozen=True)
class ReadDir:
    path: str


@dataclass(frozen=True)
class Unlink:
    path: str


@dataclass(frozen=True)
class Rmdir:
    path: str


@dataclass(frozen=True)
class Rename:
    src: str
    dst: str


@dataclass(frozen=True)
class StatFs:
    pass


register_wire_types(
    Mkdir, Create, GetAttr, SetAttr, ReadDir, Unlink, Rmdir, Rename, StatFs,
)
