"""PVFS-like parallel-filesystem metadata service, replicated active/active.

The paper names this service twice: the generic symmetric active/active
model "is applicable to any deterministic HPC system service, such as to
the metadata server of the parallel virtual file system (PVFS)" (§1), and
§6 reports ongoing work on exactly that. This package completes the
follow-on inside the reproduction:

* :mod:`repro.pvfs.metadata` — the metadata store substrate: a
  deterministic in-memory filesystem tree (directories, files with striped
  data-file handles) with the PVFS metadata operations (create/mkdir/
  getattr/setattr/readdir/unlink/rmdir/rename/statfs);
* :mod:`repro.pvfs.wire` — the operation records;
* :mod:`repro.pvfs.service` — the backend driver + deployment builder that
  replicates the store across head nodes with
  :class:`~repro.aa.replicated.ReplicatedService`;
* :mod:`repro.pvfs.client` — a typed client with replica failover.

Because the store is deterministic and reached only through its operation
interface, the *same* wrapper that JOSHUA pioneered for PBS provides
continuous availability here with zero service-specific replication code —
which is precisely the paper's generality claim, now demonstrated.
"""

from repro.pvfs.metadata import MetadataStore, FileAttr
from repro.pvfs.service import MetadataBackend, build_replicated_mds, ReplicatedMDS
from repro.pvfs.client import PVFSClient

__all__ = [
    "MetadataStore",
    "FileAttr",
    "MetadataBackend",
    "ReplicatedMDS",
    "build_replicated_mds",
    "PVFSClient",
]
