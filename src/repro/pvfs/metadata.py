"""The metadata store: a deterministic in-memory filesystem tree.

Models the state a PVFS (v2) metadata server owns: the namespace
(directories and file names), per-file attributes, and the *data-file
handles* that tell clients which I/O servers hold a file's stripes. Data
movement itself never touches the MDS — exactly why the MDS is small,
deterministic, and the perfect candidate for symmetric active/active
replication (and why its failure otherwise takes out the whole filesystem).

Determinism requirements (the replication wrapper relies on them):

* handle/inode numbers come from a monotone counter,
* timestamps are supplied by the caller (the replicated layer passes the
  *delivery-ordered* logical time, not wall clock),
* directory listings are sorted.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.net.codec import register_wire_types
from repro.util.errors import ReproError

__all__ = [
    "PVFSError", "NotFound", "AlreadyExists", "NotADirectory", "IsADirectory",
    "DirectoryNotEmpty", "InvalidPath",
    "FileAttr", "MetadataStore",
]


class PVFSError(ReproError):
    """Base for metadata-operation failures (deterministic; every replica
    raises the same one for the same operation sequence)."""


class NotFound(PVFSError):
    pass


class AlreadyExists(PVFSError):
    pass


class NotADirectory(PVFSError):
    pass


class IsADirectory(PVFSError):
    pass


class DirectoryNotEmpty(PVFSError):
    pass


class InvalidPath(PVFSError):
    pass


@dataclass(frozen=True)
class FileAttr:
    """What ``getattr`` returns."""

    handle: int
    kind: str  # "file" | "dir"
    size: int
    ctime: float
    mtime: float
    #: Data-file handles (one per stripe) for files; empty for directories.
    dfiles: tuple[int, ...] = ()


@dataclass
class _Inode:
    handle: int
    kind: str
    ctime: float
    mtime: float
    size: int = 0
    dfiles: tuple[int, ...] = ()
    children: dict[str, int] = field(default_factory=dict)  # dirs only


# FileAttr answers getattr over RPC; _Inode rides inside the join-time
# state-transfer snapshot — both cross the wire and need a codec entry.
register_wire_types(FileAttr, _Inode)


def split_path(path: str) -> list[str]:
    """Normalise an absolute path into components; validates syntax."""
    if not isinstance(path, str) or not path.startswith("/"):
        raise InvalidPath(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise InvalidPath(f"'.'/'..' not supported: {path!r}")
    return parts


class MetadataStore:
    """The MDS state and its operations.

    Parameters
    ----------
    stripe_width:
        Data-file handles allocated per created file (PVFS default: one
        per I/O server).
    """

    ROOT_HANDLE = 1

    def __init__(self, *, stripe_width: int = 4):
        if stripe_width < 1:
            raise PVFSError("stripe_width must be positive")
        self.stripe_width = stripe_width
        self._next_handle = self.ROOT_HANDLE + 1
        root = _Inode(self.ROOT_HANDLE, "dir", 0.0, 0.0)
        self._inodes: dict[int, _Inode] = {self.ROOT_HANDLE: root}
        self.op_count = 0

    # -- internal helpers --------------------------------------------------

    def _alloc(self) -> int:
        handle = self._next_handle
        self._next_handle += 1
        return handle

    def _resolve(self, path: str) -> _Inode:
        node = self._inodes[self.ROOT_HANDLE]
        for part in split_path(path):
            if node.kind != "dir":
                raise NotADirectory(f"{part!r} reached through a file in {path!r}")
            if part not in node.children:
                raise NotFound(path)
            node = self._inodes[node.children[part]]
        return node

    def _resolve_parent(self, path: str) -> tuple[_Inode, str]:
        parts = split_path(path)
        if not parts:
            raise InvalidPath("operation on the root directory")
        parent = self._inodes[self.ROOT_HANDLE]
        for part in parts[:-1]:
            if parent.kind != "dir":
                raise NotADirectory(path)
            if part not in parent.children:
                raise NotFound(path)
            parent = self._inodes[parent.children[part]]
        if parent.kind != "dir":
            raise NotADirectory(path)
        return parent, parts[-1]

    def _attr(self, inode: _Inode) -> FileAttr:
        return FileAttr(
            handle=inode.handle,
            kind=inode.kind,
            size=inode.size if inode.kind == "file" else len(inode.children),
            ctime=inode.ctime,
            mtime=inode.mtime,
            dfiles=inode.dfiles,
        )

    # -- operations --------------------------------------------------------------

    def mkdir(self, path: str, *, now: float = 0.0) -> FileAttr:
        parent, name = self._resolve_parent(path)
        if name in parent.children:
            raise AlreadyExists(path)
        inode = _Inode(self._alloc(), "dir", now, now)
        self._inodes[inode.handle] = inode
        parent.children[name] = inode.handle
        parent.mtime = now
        self.op_count += 1
        return self._attr(inode)

    def create(self, path: str, *, now: float = 0.0) -> FileAttr:
        """Create a file and allocate its striped data-file handles."""
        parent, name = self._resolve_parent(path)
        if name in parent.children:
            raise AlreadyExists(path)
        inode = _Inode(
            self._alloc(), "file", now, now,
            dfiles=tuple(self._alloc() for _ in range(self.stripe_width)),
        )
        self._inodes[inode.handle] = inode
        parent.children[name] = inode.handle
        parent.mtime = now
        self.op_count += 1
        return self._attr(inode)

    def getattr(self, path: str) -> FileAttr:
        self.op_count += 1
        return self._attr(self._resolve(path))

    def setattr(self, path: str, *, size: int, now: float = 0.0) -> FileAttr:
        inode = self._resolve(path)
        if inode.kind != "file":
            raise IsADirectory(path)
        if size < 0:
            raise PVFSError("size must be non-negative")
        inode.size = size
        inode.mtime = now
        self.op_count += 1
        return self._attr(inode)

    def readdir(self, path: str) -> list[str]:
        inode = self._resolve(path)
        if inode.kind != "dir":
            raise NotADirectory(path)
        self.op_count += 1
        return sorted(inode.children)

    def unlink(self, path: str, *, now: float = 0.0) -> None:
        parent, name = self._resolve_parent(path)
        if name not in parent.children:
            raise NotFound(path)
        inode = self._inodes[parent.children[name]]
        if inode.kind == "dir":
            raise IsADirectory(path)
        del parent.children[name]
        del self._inodes[inode.handle]
        parent.mtime = now
        self.op_count += 1

    def rmdir(self, path: str, *, now: float = 0.0) -> None:
        parent, name = self._resolve_parent(path)
        if name not in parent.children:
            raise NotFound(path)
        inode = self._inodes[parent.children[name]]
        if inode.kind != "dir":
            raise NotADirectory(path)
        if inode.children:
            raise DirectoryNotEmpty(path)
        del parent.children[name]
        del self._inodes[inode.handle]
        parent.mtime = now
        self.op_count += 1

    def rename(self, src: str, dst: str, *, now: float = 0.0) -> None:
        src_parent, src_name = self._resolve_parent(src)
        if src_name not in src_parent.children:
            raise NotFound(src)
        dst_parent, dst_name = self._resolve_parent(dst)
        moving = self._inodes[src_parent.children[src_name]]
        if dst_parent.handle == src_parent.handle and dst_name == src_name:
            # POSIX: renaming a file onto itself succeeds and does nothing.
            self.op_count += 1
            return
        if dst_name in dst_parent.children:
            existing = self._inodes[dst_parent.children[dst_name]]
            if existing.kind == "dir":
                if existing.children:
                    raise DirectoryNotEmpty(dst)
                if moving.kind != "dir":
                    raise IsADirectory(dst)
                del self._inodes[existing.handle]
            else:
                if moving.kind == "dir":
                    raise NotADirectory(dst)
                del self._inodes[existing.handle]
        # A directory may not be moved into its own subtree.
        if moving.kind == "dir":
            probe = dst_parent
            while True:
                if probe.handle == moving.handle:
                    raise InvalidPath(f"cannot move {src!r} into itself")
                owner = self._find_parent_handle(probe.handle)
                if owner is None:
                    break
                probe = self._inodes[owner]
        del src_parent.children[src_name]
        dst_parent.children[dst_name] = moving.handle
        src_parent.mtime = now
        dst_parent.mtime = now
        self.op_count += 1

    def _find_parent_handle(self, handle: int) -> int | None:
        if handle == self.ROOT_HANDLE:
            return None
        for inode in self._inodes.values():
            if inode.kind == "dir" and handle in inode.children.values():
                return inode.handle
        return None  # pragma: no cover - orphan guard

    def statfs(self) -> dict:
        files = sum(1 for i in self._inodes.values() if i.kind == "file")
        dirs = sum(1 for i in self._inodes.values() if i.kind == "dir")
        return {
            "files": files,
            "directories": dirs,
            "handles_allocated": self._next_handle - 1,
            "operations": self.op_count,
        }

    # -- replication hooks -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deep-copyable full state (for join-time transfer)."""
        return {
            "next_handle": self._next_handle,
            "stripe_width": self.stripe_width,
            "op_count": self.op_count,
            "inodes": copy.deepcopy(self._inodes),
        }

    def restore(self, state: dict) -> None:
        self._next_handle = state["next_handle"]
        self.stripe_width = state["stripe_width"]
        self.op_count = state["op_count"]
        self._inodes = copy.deepcopy(state["inodes"])
