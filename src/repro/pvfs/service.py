"""The replicated metadata service: backend driver + deployment builder.

:class:`MetadataBackend` adapts a :class:`~repro.pvfs.metadata.MetadataStore`
to the :class:`~repro.aa.replicated.BackendDriver` protocol. Two details
keep replicas bit-identical:

* **logical timestamps** — inode times are the operation's position in the
  delivered total order, not the local clock (replicas execute the same
  operation at slightly different simulated instants; wall-clock stamps
  would diverge);
* **service times** — each operation charges a per-op CPU cost, so the
  latency benches reflect 2006-class metadata performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.aa.replicated import ReplicatedService
from repro.cluster.cluster import Cluster
from repro.gcs.config import GroupConfig
from repro.net.address import Address
from repro.pvfs.metadata import MetadataStore
from repro.pvfs.wire import (
    Create,
    GetAttr,
    Mkdir,
    ReadDir,
    Rename,
    Rmdir,
    SetAttr,
    StatFs,
    Unlink,
)
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node

__all__ = ["MetadataBackend", "ReplicatedMDS", "build_replicated_mds",
           "MDS_PORT", "MDS_GCS_PORT"]

MDS_PORT = 3334      # PVFS2's well-known port
MDS_GCS_PORT = 3335


class MetadataBackend:
    """BackendDriver over a MetadataStore."""

    def __init__(self, kernel, *, stripe_width: int = 4, op_cost: float = 0.004):
        self.kernel = kernel
        self.store = MetadataStore(stripe_width=stripe_width)
        self.op_cost = op_cost
        self._logical_time = 0.0

    def execute(self, payload) -> Generator:
        yield self.kernel.timeout(self.op_cost)
        self._logical_time += 1.0
        now = self._logical_time
        if isinstance(payload, Mkdir):
            return self.store.mkdir(payload.path, now=now)
        if isinstance(payload, Create):
            return self.store.create(payload.path, now=now)
        if isinstance(payload, GetAttr):
            return self.store.getattr(payload.path)
        if isinstance(payload, SetAttr):
            return self.store.setattr(payload.path, size=payload.size, now=now)
        if isinstance(payload, ReadDir):
            return self.store.readdir(payload.path)
        if isinstance(payload, Unlink):
            self.store.unlink(payload.path, now=now)
            return None
        if isinstance(payload, Rmdir):
            self.store.rmdir(payload.path, now=now)
            return None
        if isinstance(payload, Rename):
            self.store.rename(payload.src, payload.dst, now=now)
            return None
        if isinstance(payload, StatFs):
            return self.store.statfs()
        raise ReproError(f"unknown metadata operation {type(payload).__name__}")

    def snapshot(self) -> Generator:
        yield self.kernel.timeout(self.op_cost)
        state = self.store.snapshot()
        state["logical_time"] = self._logical_time
        return state

    def restore(self, state) -> Generator:
        yield self.kernel.timeout(self.op_cost)
        self._logical_time = state.pop("logical_time", 0.0)
        self.store.restore(state)


@dataclass
class ReplicatedMDS:
    """Handles to a deployed replicated metadata service."""

    cluster: Cluster
    head_names: list[str]
    group_config: GroupConfig

    def replica(self, head: str) -> ReplicatedService:
        return self.cluster.node(head).daemon("pvfs-mds")  # type: ignore[return-value]

    def backend(self, head: str) -> MetadataBackend:
        return self.replica(head).driver  # type: ignore[return-value]

    def addresses(self) -> list[Address]:
        return [Address(h, MDS_PORT) for h in self.head_names]

    def live_heads(self) -> list[str]:
        return [
            h for h in self.head_names
            if self.cluster.node(h).is_up and "pvfs-mds" in self.cluster.node(h).daemons
        ]

    def add_replica(self, name: str | None = None) -> "Node":
        """Join a brand-new metadata replica (snapshot state transfer)."""
        from repro.cluster.node import Node

        contacts = self.live_heads()
        if not contacts:
            raise ReproError("no live replica to join through")
        name = name or f"head{len(self.head_names)}"
        node = Node(self.cluster.network, name, role="head")
        self.cluster.heads.append(node)
        self.head_names.append(name)
        config = self.group_config

        def factory(n: "Node") -> ReplicatedService:
            return ReplicatedService(
                n, "pvfs-mds", MetadataBackend(n.kernel),
                port=MDS_PORT, gcs_port=MDS_GCS_PORT,
                contacts=contacts, group_config=config,
            )

        node.add_daemon("pvfs-mds", factory)
        return node


def build_replicated_mds(
    cluster: Cluster,
    *,
    group_config: GroupConfig | None = None,
    stripe_width: int = 4,
) -> ReplicatedMDS:
    """Deploy one metadata replica on every head node of *cluster*."""
    config = group_config or GroupConfig(
        heartbeat_interval=0.1, suspect_timeout=0.35,
        flush_timeout=0.8, retransmit_interval=0.05,
    )
    head_names = [h.name for h in cluster.heads]

    def factory(node: "Node") -> ReplicatedService:
        return ReplicatedService(
            node, "pvfs-mds",
            MetadataBackend(node.kernel, stripe_width=stripe_width),
            port=MDS_PORT, gcs_port=MDS_GCS_PORT,
            initial_members=head_names, group_config=config,
        )

    for head in cluster.heads:
        head.add_daemon("pvfs-mds", factory)
    return ReplicatedMDS(cluster, head_names, config)
