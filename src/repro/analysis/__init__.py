"""Determinism & protocol static analysis for the repro codebase.

The simulation's headline guarantee — bit-identical replay from a seed, and
identical command streams on every replica — is easy to break with one
innocuous line: a ``time.time()`` call, a module-level cache shared between
two simulations in one interpreter, a ``for peer in some_set`` loop that
feeds the wire. This package is a small, repo-specific AST linter that
rejects those patterns at review time instead of debugging them from a
divergent run:

========  =====================================================================
Rule      Contract
========  =====================================================================
``R1``    No wall-clock or OS-entropy sources outside ``util/rng.py``
          (``time.time``, ``datetime.now``, global ``random.*``,
          ``os.urandom``, ``uuid.uuid4`` …).
``R2``    No module-level mutable state: per-simulation state hangs off the
          :class:`~repro.net.network.Network` via ``*_state(network)``
          accessors (the :func:`~repro.rpc.state.rpc_state` pattern).
``R3``    No iteration over sets or unsorted dict views in the protocol
          layers (``net``/``rpc``/``gcs``/``pbs``/``joshua``) unless wrapped
          in ``sorted()`` or consumed by an order-insensitive reducer.
``R4``    Protocol completeness: every wire dataclass has a server-side
          handler and a client-side constructor (no dead or unhandled
          message types).
``R5``    Observability hooks are passive: ``repro.obs`` may not call
          mutating methods on the network, transport, or kernel.
``R6``    Codec coverage: every exported record of a declared wire module
          is registered with the codec, carries no set-typed fields, and
          has a globally unique wire name.
``R7``    Wire-schema stability: the schema extracted from the wire
          modules' AST must match the committed ``WIRE_SCHEMA.lock``;
          every delta is classified (wire-compatible / decode-compatible /
          breaking) and fails the lint until reviewed and accepted via
          ``repro schema update``.
========  =====================================================================

Deliberate exemptions are annotated in-line::

    for job in self._jobs.values():  # repro-lint: ignore[R3] FIFO order is the queue's semantics

The reason text is mandatory and directives are rule-scoped — an
``ignore[R1]`` never suppresses an ``R3`` finding. Run via ``repro lint``
(see :mod:`repro.cli`) or programmatically via :func:`run_lint` /
:func:`check_source`.
"""

from repro.analysis.findings import Finding
from repro.analysis.runner import (
    ALL_RULES,
    check_files,
    check_source,
    list_ignores,
    run_lint,
)
from repro.analysis.schema import (
    SchemaDelta,
    diff_schemas,
    extract_from_root,
    extract_schema,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "SchemaDelta",
    "check_files",
    "check_source",
    "diff_schemas",
    "extract_from_root",
    "extract_schema",
    "list_ignores",
    "run_lint",
]
