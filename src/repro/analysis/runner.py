"""Run the analysis rules over sources, applying ignore directives."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.ignores import IgnoreDirective, parse_ignores
from repro.analysis.protocol import rule_r4, rule_r6
from repro.analysis.rules import PER_FILE_RULES
from repro.analysis.schema import LOCKFILE_NAME, load_lockfile, rule_r7

__all__ = [
    "ALL_RULES", "check_files", "check_source", "list_ignores", "run_lint",
]

ALL_RULES = ("R1", "R2", "R3", "R4", "R5", "R6", "R7")

#: Sentinel distinguishing "no lockfile" (None) from "R7 not requested".
#: ``check_files`` only runs R7 when a caller (``run_lint``) explicitly
#: provides the lockfile context — snippet-level ``check_source`` calls
#: have no lockfile to diff against and must not emit missing-lock noise.
_LOCK_UNSET = object()


def _default_root() -> Path:
    # The repro package root (this file lives in repro/analysis/).
    return Path(__file__).resolve().parent.parent


def check_source(
    source: str, path: str = "snippet.py", rules=None
) -> list[Finding]:
    """Lint one source string with the per-file rules (R1/R2/R3/R5).

    *path* is a repro-relative path and drives rule scoping: pass
    ``"gcs/x.py"`` to put the snippet inside R3's protocol layers. R4 is
    cross-file; use :func:`check_files` for it.
    """
    return check_files({path: source}, rules=rules)


def check_files(
    files: dict[str, str], rules=None, *, schema_lock=_LOCK_UNSET
) -> list[Finding]:
    """Lint *files* (repro-relative path -> source) with the given rules.

    *schema_lock* is the parsed ``WIRE_SCHEMA.lock`` mapping (or ``None``
    if the lockfile is missing); R7 only runs when it is provided."""
    active = frozenset(rules if rules is not None else ALL_RULES)
    full_run = active >= frozenset(ALL_RULES)
    findings: list[Finding] = []
    trees: dict[str, ast.Module] = {}
    ignore_sets = {}
    for path in sorted(files):
        source = files[path]
        try:
            trees[path] = ast.parse(source, filename=path)
        except SyntaxError as exc:
            findings.append(
                Finding("R0", path, exc.lineno or 0, exc.offset or 0,
                        f"syntax error: {exc.msg}")
            )
            continue
        ignore_sets[path] = parse_ignores(source, path)

    raw: list[Finding] = []
    for path, tree in sorted(trees.items()):
        for rule_name, (applies, rule) in PER_FILE_RULES.items():
            if rule_name in active and applies(path):
                raw.extend(rule(tree, path))
    if "R4" in active:
        raw.extend(rule_r4(trees))
    if "R6" in active:
        raw.extend(rule_r6(trees))
    if "R7" in active and schema_lock is not _LOCK_UNSET:
        raw.extend(rule_r7(trees, schema_lock))

    for finding in raw:
        ignores = ignore_sets.get(finding.path)
        if ignores is not None and ignores.suppresses(finding.rule, finding.line):
            continue
        findings.append(finding)
    for path, ignores in sorted(ignore_sets.items()):
        findings.extend(ignores.problems)
        if full_run:
            findings.extend(ignores.unused(active, path))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _tree_sources(base: Path) -> dict[str, str]:
    files: dict[str, str] = {}
    for path in sorted(base.rglob("*.py")):
        rel = path.relative_to(base).as_posix()
        if "__pycache__" in rel:
            continue
        files[rel] = path.read_text(encoding="utf-8")
    return files


def run_lint(root: str | Path | None = None, rules=None) -> list[Finding]:
    """Lint every ``.py`` file under *root* (default: the repro package).

    R7 diffs the extracted wire schema against ``<root>/WIRE_SCHEMA.lock``
    (a missing lockfile is itself a finding)."""
    base = Path(root) if root is not None else _default_root()
    files = _tree_sources(base)
    schema_lock = load_lockfile(base / LOCKFILE_NAME)
    return check_files(files, rules=rules, schema_lock=schema_lock)


def list_ignores(
    root: str | Path | None = None,
) -> list[tuple[str, IgnoreDirective]]:
    """Every ``# repro-lint: ignore[...]`` directive under *root*, as
    ``(repro-relative path, directive)`` pairs in file/line order — the
    audit surface behind ``repro lint --ignores``."""
    base = Path(root) if root is not None else _default_root()
    out: list[tuple[str, IgnoreDirective]] = []
    for rel, source in sorted(_tree_sources(base).items()):
        for directive in parse_ignores(source, rel).directives:
            out.append((rel, directive))
    return out
