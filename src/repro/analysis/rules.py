"""Per-file AST rules R1, R2, R3, R5 (R4 is cross-file; see ``protocol``).

Each rule is a function ``(tree, source_path) -> list[Finding]`` plus an
``applies(path)`` predicate; the runner handles file discovery and ignore
directives. Paths are relative to the ``repro`` package root
(``"gcs/member.py"``), which is what the scoping predicates key on.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding

__all__ = ["PER_FILE_RULES", "rule_r1", "rule_r2", "rule_r3", "rule_r5"]

# Layers whose iteration order reaches the wire or the replicated state
# machine (R3's scope).
_PROTOCOL_LAYERS = ("net/", "rpc/", "gcs/", "pbs/", "joshua/")

# Reducers whose result does not depend on iteration order; an unordered
# iteration consumed by one of these is harmless.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"}
)

# Mutating methods the passive observability layer must never call on the
# simulation it watches (R5). Receiver-typed precision is out of reach for
# an AST linter, so the names are chosen to be unambiguous verbs of the
# Network/Transport/Kernel/daemon APIs.
_MUTATORS = frozenset(
    {
        "send", "send_raw", "multicast", "spawn", "timeout", "succeed",
        "fail", "interrupt", "put", "put_nowait", "bind", "boot", "crash",
        "repair", "join", "leave", "stop", "start", "shutdown",
        "pause_node", "resume_node", "set_node_up", "set_node_slowdown",
        "add_drop_filter", "remove_drop_filter", "install_view", "submit",
        "run_job", "register", "schedule", "enqueue",
    }
)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportMap:
    """Resolve local names back to the canonical module path they import."""

    def __init__(self, tree: ast.AST):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        head = self.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


# -- R1: wall clock / OS entropy ---------------------------------------------

#: Fully-resolved call targets that read the host clock or OS entropy.
_R1_BANNED_EXACT = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.localtime", "time.gmtime",
        "time.ctime", "time.sleep",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today", "datetime.now",
        "datetime.utcnow", "datetime.today", "date.today",
        "os.urandom", "os.getrandom",
        "uuid.uuid1", "uuid.uuid4",
    }
)
#: Module prefixes where *every* call is banned (global, process-seeded RNG
#: state or OS entropy).
_R1_BANNED_PREFIXES = ("secrets.", "numpy.random.", "np.random.")
#: ``random.<anything>`` except an explicitly seeded ``random.Random(seed)``.
_R1_RANDOM_MODULE = "random."


def rule_r1_applies(path: str) -> bool:
    # util/rng.py is the one sanctioned wrapper around entropy sources.
    return path != "util/rng.py"


def rule_r1(tree: ast.AST, path: str) -> list[Finding]:
    findings: list[Finding] = []
    imports = _ImportMap(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        resolved = imports.resolve(dotted)
        message = None
        if resolved in _R1_BANNED_EXACT:
            message = f"call to {resolved}() is a wall-clock/OS-entropy source"
        elif resolved.startswith(_R1_BANNED_PREFIXES):
            # Explicitly seeded generator construction is the sanctioned
            # pattern; only the *global* numpy RNG state is banned.
            tail = resolved.rsplit(".", 1)[-1]
            if tail in ("default_rng", "Generator", "SeedSequence", "PCG64"):
                if tail == "default_rng" and not node.args:
                    message = "default_rng() without a seed draws from OS entropy"
            else:
                message = (
                    f"call to {resolved}() uses global/OS randomness — draw "
                    "from the kernel's seeded RandomStreams instead"
                )
        elif resolved.startswith(_R1_RANDOM_MODULE) or resolved == "random":
            if resolved in ("random.Random", "random.SystemRandom"):
                if resolved == "random.SystemRandom" or not node.args:
                    message = (
                        f"{resolved}() without an explicit seed draws from "
                        "OS entropy"
                    )
            else:
                message = (
                    f"call to {resolved}() uses the process-global RNG — use "
                    "a named stream from util.rng.RandomStreams"
                )
        elif resolved in ("numpy.random", "np.random"):
            message = "global numpy RNG is process-seeded"
        elif resolved == "default_rng" and not node.args:
            message = "default_rng() without a seed draws from OS entropy"
        if message is not None:
            findings.append(
                Finding(
                    "R1",
                    path,
                    node.lineno,
                    node.col_offset,
                    message + " (simulated time/randomness only outside util/rng.py)",
                )
            )
    return findings


# -- R2: module-level mutable state ------------------------------------------

_MUTABLE_FACTORIES = frozenset(
    {
        "set", "dict", "list", "bytearray",
        "collections.defaultdict", "collections.deque", "collections.Counter",
        "collections.OrderedDict", "defaultdict", "deque", "Counter",
        "OrderedDict", "itertools.count", "count",
    }
)


def rule_r2_applies(path: str) -> bool:
    return not path.startswith("analysis/")


def _r2_value_problem(value: ast.AST, imports: _ImportMap) -> str | None:
    if isinstance(value, (ast.List, ast.Set)):
        return "mutable %s display" % type(value).__name__.lower()
    if isinstance(value, ast.Dict):
        return "mutable dict display"
    if isinstance(value, (ast.ListComp, ast.SetComp, ast.DictComp)):
        return "mutable comprehension result"
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        if dotted is not None:
            resolved = imports.resolve(dotted)
            if resolved in _MUTABLE_FACTORIES or dotted in _MUTABLE_FACTORIES:
                return f"mutable {dotted}() instance"
    return None


def rule_r2(tree: ast.AST, path: str) -> list[Finding]:
    findings: list[Finding] = []
    imports = _ImportMap(tree)
    assert isinstance(tree, ast.Module)
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.AST | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        problem = _r2_value_problem(value, imports)
        if problem is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") and name.endswith("__"):
                continue  # __all__ and friends are interface metadata
            constant_style = name.isupper()
            empty_display = isinstance(
                value, (ast.List, ast.Set, ast.Dict)
            ) and not getattr(value, "keys", getattr(value, "elts", None))
            if constant_style and not empty_display and not isinstance(value, ast.Call):
                # A populated ALL_CAPS display is a lookup-table constant;
                # factories (set()/count()/deque()) are accumulators even
                # when named like constants.
                continue
            findings.append(
                Finding(
                    "R2",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"module-level {problem} {name!r} is shared across "
                    "simulations — hang per-simulation state off the Network "
                    "via a *_state(network) accessor (rpc_state pattern)",
                )
            )
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            findings.append(
                Finding(
                    "R2",
                    path,
                    node.lineno,
                    node.col_offset,
                    f"'global {', '.join(node.names)}' mutates module state — "
                    "per-simulation state belongs on the Network "
                    "(*_state(network) accessor)",
                )
            )
    return findings


# -- R3: unordered iteration in protocol layers -------------------------------


def rule_r3_applies(path: str) -> bool:
    return path.startswith(_PROTOCOL_LAYERS)


class _SetInference:
    """Names and ``self`` attributes statically known to hold sets."""

    def __init__(self, tree: ast.AST):
        self.set_attrs: set[str] = set()   # "self.X" known to be a set
        self.set_names: set[str] = set()   # local/param names known to be sets
        for node in ast.walk(tree):
            target = None
            value = None
            annotation = None
            if isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.arg):
                target, annotation = node, node.annotation
            if target is None:
                continue
            is_set = self._annotation_is_set(annotation) or self._value_is_set(value)
            if not is_set:
                continue
            if isinstance(target, ast.arg):
                self.set_names.add(target.arg)
            elif isinstance(target, ast.Name):
                self.set_names.add(target.id)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.set_attrs.add(target.attr)

    @staticmethod
    def _annotation_is_set(annotation: ast.AST | None) -> bool:
        if annotation is None:
            return False
        base = annotation
        if isinstance(base, ast.Subscript):
            base = base.value
        name = _dotted(base)
        return name in ("set", "Set", "typing.Set", "MutableSet", "AbstractSet")

    @classmethod
    def _value_is_set(cls, value: ast.AST | None) -> bool:
        if value is None:
            return False
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            return _dotted(value.func) in ("set", "frozenset")
        if isinstance(value, ast.IfExp):
            # x = a - b if cond else set(): set-like on either branch.
            return cls._value_is_set(value.body) or cls._value_is_set(value.orelse)
        if isinstance(value, ast.BinOp) and isinstance(
            value.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return cls._value_is_set(value.left) or cls._value_is_set(value.right)
        return False

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and _dotted(node.func) in ("set", "frozenset"):
            # set(...) used *as the iterable itself* gives hash order.
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False


def _exempt_nodes(tree: ast.AST) -> set[int]:
    """ids of AST nodes inside an order-insensitive consumer call."""
    exempt: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in _ORDER_INSENSITIVE:
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for child in ast.walk(arg):
                        exempt.add(id(child))
    return exempt


def _iteration_sites(tree: ast.AST):
    """Yield ``(iterable_node, report_node)`` for every for/comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter, gen.iter


def rule_r3(tree: ast.AST, path: str) -> list[Finding]:
    findings: list[Finding] = []
    inference = _SetInference(tree)
    exempt = _exempt_nodes(tree)
    for iterable, report in _iteration_sites(tree):
        if id(iterable) in exempt:
            continue
        target = iterable
        # list(...) / tuple(...) wrappers preserve (un)orderedness: look
        # through them. sorted() is handled by the exemption pass above.
        while (
            isinstance(target, ast.Call)
            and _dotted(target.func) in ("list", "tuple", "iter", "reversed")
            and target.args
        ):
            target = target.args[0]
        if inference.is_set_expr(target):
            findings.append(
                Finding(
                    "R3",
                    path,
                    report.lineno,
                    report.col_offset,
                    "iteration over a set: order is hash-seed dependent and "
                    "reaches the protocol layer — iterate sorted(...) instead",
                )
            )
            continue
        if (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Attribute)
            and target.func.attr in ("values", "keys", "items")
            and not target.args
        ):
            findings.append(
                Finding(
                    "R3",
                    path,
                    report.lineno,
                    report.col_offset,
                    f"iteration over dict .{target.func.attr}(): insertion "
                    "order is not a protocol invariant — iterate "
                    "sorted(...) or justify with an ignore[R3]",
                )
            )
    return findings


# -- R5: observability must be passive ---------------------------------------


def rule_r5_applies(path: str) -> bool:
    return path.startswith("obs/")


def rule_r5(tree: ast.AST, path: str) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            continue
        # Calls on the hook object itself (self.…) are the collector's own
        # bookkeeping; string-literal receivers (", ".join(…)) are str
        # methods that merely collide with mutator names.
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            continue
        if isinstance(receiver, ast.Constant):
            continue
        findings.append(
            Finding(
                "R5",
                path,
                node.lineno,
                node.col_offset,
                f"observability hook calls mutating method .{func.attr}() — "
                "repro.obs must remain passive (read counters, never drive "
                "the Network/Transport/Kernel)",
            )
        )
    return findings


#: rule name -> (applies(path) predicate, rule(tree, path) function)
PER_FILE_RULES = {
    "R1": (rule_r1_applies, rule_r1),
    "R2": (rule_r2_applies, rule_r2),
    "R3": (rule_r3_applies, rule_r3),
    "R5": (rule_r5_applies, rule_r5),
}
