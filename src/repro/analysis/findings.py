"""Finding records produced by the analysis rules."""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``rule`` is ``"R1"``..``"R5"`` for the determinism/protocol rules, or
    ``"R0"`` for problems with the ignore directives themselves (missing
    reason, directive that suppresses nothing).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> str:
        return json.dumps(
            {
                "rule": self.rule,
                "path": self.path,
                "line": self.line,
                "col": self.col,
                "message": self.message,
            },
            sort_keys=True,
        )
