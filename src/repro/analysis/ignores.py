"""In-line exemption directives: ``# repro-lint: ignore[R3] <reason>``.

A directive on a code line exempts that line; a directive on a line of its
own exempts the next line (for statements too long to share a line with the
reason text). Directives are **rule-scoped** — ``ignore[R1]`` never
suppresses an R3 finding — and the reason is mandatory: an exemption that
doesn't say *why* is indistinguishable from a silenced bug.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

__all__ = ["IgnoreDirective", "IgnoreSet", "parse_ignores"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<rules>[^\]]*)\]\s*(?P<reason>.*)$"
)
_RULE_NAME = re.compile(r"^R[0-9]$")


@dataclass
class IgnoreDirective:
    """One parsed directive."""

    line: int                 # line the directive comment sits on
    applies_to: int           # line whose findings it suppresses
    rules: tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)


@dataclass
class IgnoreSet:
    """All directives of one file, plus directive-syntax findings (R0)."""

    directives: list[IgnoreDirective]
    problems: list[Finding]

    def suppresses(self, rule: str, line: int) -> bool:
        hit = False
        for directive in self.directives:
            if directive.applies_to == line and rule in directive.rules:
                directive.used = True
                hit = True
        return hit

    def unused(self, active_rules: frozenset[str], path: str) -> list[Finding]:
        """Directives that suppressed nothing.

        Only directives whose every rule was active this run are judged —
        running ``repro lint --rule R1`` must not flag R3 ignores as unused.
        """
        findings = []
        for directive in self.directives:
            if directive.used:
                continue
            if not set(directive.rules) <= active_rules:
                continue
            findings.append(
                Finding(
                    "R0",
                    path,
                    directive.line,
                    0,
                    "unused ignore directive "
                    f"[{', '.join(directive.rules)}] — it suppresses nothing; "
                    "remove it or fix the rule list",
                )
            )
        return findings


def parse_ignores(source: str, path: str) -> IgnoreSet:
    directives: list[IgnoreDirective] = []
    problems: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):
        return IgnoreSet([], [])
    # Lines that hold code (so a directive on its own line targets the next
    # code line, not just line+1 — blank lines/comments may intervene).
    code_lines = {
        tok.start[0]
        for tok in tokens
        if tok.type
        not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        )
    }
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            if "repro-lint" in tok.string:
                problems.append(
                    Finding(
                        "R0",
                        path,
                        tok.start[0],
                        tok.start[1],
                        "malformed repro-lint directive: expected "
                        "'# repro-lint: ignore[RN] <reason>'",
                    )
                )
            continue
        line = tok.start[0]
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        bad = [r for r in rules if not _RULE_NAME.match(r)]
        if not rules or bad:
            problems.append(
                Finding(
                    "R0",
                    path,
                    line,
                    tok.start[1],
                    f"ignore directive names unknown rule(s) {bad or '(none)'}"
                    " — use R1..R7",
                )
            )
            continue
        reason = match.group("reason").strip()
        if not reason:
            problems.append(
                Finding(
                    "R0",
                    path,
                    line,
                    tok.start[1],
                    f"ignore[{', '.join(rules)}] has no reason — every "
                    "exemption must say why it is safe",
                )
            )
            continue
        own_line = line in code_lines
        applies_to = line
        if not own_line:
            applies_to = min(
                (c for c in code_lines if c > line), default=line
            )
        directives.append(IgnoreDirective(line, applies_to, rules, reason))
    return IgnoreSet(directives, problems)
