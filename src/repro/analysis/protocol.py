"""R4: protocol completeness across wire modules and their dispatch tables.

For every wire-message dataclass the rule demands:

* a **server-side handler** somewhere in the protocol's handler package —
  recognised as a dispatch-dict key (``{DataMsg: self._handle_data, …}``),
  a ``register``/``reg`` call argument (including tuple registrations), an
  ``isinstance(payload, T)`` test, or a ``match``-case class pattern;
* a **client-side constructor**: the class is instantiated somewhere in the
  codebase outside the wire module that defines it.

Response types (``*Resp``) are produced by servers and consumed generically
by :func:`repro.rpc.client.call`, so they need a constructor but not a
registered handler. Types that are not wire messages at all (delivery
records, identifier tuples) are exempted in :data:`PROTOCOLS` with the
reason recorded next to the exemption.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

__all__ = ["PROTOCOLS", "ProtocolSpec", "rule_r4"]


@dataclass(frozen=True)
class ProtocolSpec:
    """One wire module and where its handlers/constructors may live."""

    name: str
    wire: str                          # wire module, repro-relative path
    handler_prefixes: tuple[str, ...]  # dirs scanned for dispatch of its types
    #: type name -> why no handler is required (not a wire message).
    exempt: dict[str, str] = field(default_factory=dict)


PROTOCOLS = (
    ProtocolSpec(
        name="gcs",
        wire="gcs/messages.py",
        handler_prefixes=("gcs/",),
        exempt={
            "MessageId": "identifier tuple embedded in messages, not itself sent",
            "DeliveredMessage": "local delivery record handed to services, never on the wire",
        },
    ),
    ProtocolSpec(name="pbs", wire="pbs/wire.py", handler_prefixes=("pbs/",)),
    ProtocolSpec(name="joshua", wire="joshua/wire.py", handler_prefixes=("joshua/",)),
    ProtocolSpec(name="pvfs", wire="pvfs/wire.py", handler_prefixes=("pvfs/",)),
)

_REGISTER_NAMES = ("register", "reg")


def _module_all(tree: ast.Module) -> list[str]:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            return [
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
    return []


def _wire_classes(tree: ast.Module) -> dict[str, int]:
    """Class name -> definition line for classes exported via ``__all__``."""
    exported = set(_module_all(tree))
    return {
        node.name: node.lineno
        for node in tree.body
        if isinstance(node, ast.ClassDef) and (not exported or node.name in exported)
    }


def _type_names(node: ast.AST) -> list[str]:
    """Type names out of a ``T`` or ``(T1, T2)`` dispatch argument."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in node.elts:
            names.extend(_type_names(elt))
        return names
    return []


def _handled_types(tree: ast.AST) -> set[str]:
    handled: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            # Dispatch-table display: {DataMsg: handler, ...}.
            for key in node.keys:
                if key is not None:
                    handled.update(
                        n for n in _type_names(key) if n[:1].isupper()
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            func_name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            if func_name in _REGISTER_NAMES and node.args:
                handled.update(_type_names(node.args[0]))
            elif func_name == "isinstance" and len(node.args) == 2:
                handled.update(_type_names(node.args[1]))
        elif isinstance(node, ast.MatchClass):
            handled.update(_type_names(node.cls))
    return handled


def _constructed_types(tree: ast.AST) -> set[str]:
    constructed: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            constructed.update(
                n for n in _type_names(node.func) if n[:1].isupper()
            )
    return constructed


def rule_r4(files: dict[str, ast.Module]) -> list[Finding]:
    """*files* maps repro-relative paths to parsed modules."""
    findings: list[Finding] = []
    for spec in PROTOCOLS:
        wire_tree = files.get(spec.wire)
        if wire_tree is None:
            continue
        classes = _wire_classes(wire_tree)
        handled: set[str] = set()
        constructed: set[str] = set()
        for path, tree in files.items():
            if path == spec.wire:
                continue
            if path.startswith(spec.handler_prefixes):
                handled |= _handled_types(tree)
            constructed |= _constructed_types(tree)
        for cls, lineno in sorted(classes.items()):
            if cls in spec.exempt:
                continue
            is_response = cls.endswith("Resp")
            if not is_response and cls not in handled:
                findings.append(
                    Finding(
                        "R4",
                        spec.wire,
                        lineno,
                        0,
                        f"{spec.name} message {cls} has no handler in "
                        f"{'/'.join(spec.handler_prefixes)} — register it in a "
                        "dispatch table (or exempt it in analysis.protocol."
                        "PROTOCOLS with a reason)",
                    )
                )
            if cls not in constructed:
                findings.append(
                    Finding(
                        "R4",
                        spec.wire,
                        lineno,
                        0,
                        f"{spec.name} message {cls} is never constructed "
                        "outside its wire module — dead wire type (no "
                        "client-side encoder)",
                    )
                )
    return findings
