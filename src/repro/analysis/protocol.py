"""R4/R6: protocol completeness, handler shape, and codec coverage.

**R4 — protocol completeness and shape.** For every wire-message dataclass
the rule demands:

* a **server-side handler** somewhere in the protocol's handler package —
  recognised as a dispatch-dict key (``{DataMsg: self._handle_data, …}``),
  a ``register``/``reg`` call argument (including tuple registrations), an
  ``isinstance(payload, T)`` test, or a ``match``-case class pattern;
* a **client-side constructor**: the class is instantiated somewhere in the
  codebase outside the wire module that defines it;
* **shape agreement**: when a registered handler can be resolved to a
  function in the registering module, every attribute it reads off its
  payload parameter must be a declared field (or method) of the message
  type(s) it was registered for — catching handlers that dereference
  fields a wire dataclass no longer carries;
* every ``ErrorResp`` **kind string** a server emits must have a
  client-side consumer (a matching string literal somewhere outside the
  emitting call), or a reasoned entry in :data:`ERROR_KINDS_EXEMPT` —
  catching error codes no client can ever branch on.

Response types (``*Resp``) are produced by servers and consumed generically
by :func:`repro.rpc.client.call`, so they need a constructor but not a
registered handler. Types that are not wire messages at all (delivery
records, identifier tuples) are exempted in :data:`PROTOCOLS` with the
reason recorded next to the exemption.

**R6 — codec coverage.** Every wire dataclass must have a registered,
round-trippable codec entry. For each module listed in
:data:`CODEC_MODULES`, every exported dataclass / NamedTuple / Enum must

* appear in a ``register_wire_types`` / ``register_wire_enum`` call in its
  own module (so importing the wire module is sufficient to decode its
  frames), with enums going through ``register_wire_enum``;
* carry no ``set``/``frozenset`` fields (the codec rejects unordered
  containers — iteration order would leak host randomisation onto the
  wire);
* have a class name that is unique across all wire modules (the wire tag
  is the class name; a collision would make frames ambiguous).

Local-only records that must *never* be encoded are exempted per module
with the reason recorded next to the exemption.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

__all__ = [
    "CODEC_MODULES",
    "CodecSpec",
    "ERROR_KINDS_EXEMPT",
    "PROTOCOLS",
    "ProtocolSpec",
    "rule_r4",
    "rule_r6",
]


@dataclass(frozen=True)
class ProtocolSpec:
    """One wire module and where its handlers/constructors may live."""

    name: str
    wire: str                          # wire module, repro-relative path
    handler_prefixes: tuple[str, ...]  # dirs scanned for dispatch of its types
    #: type name -> why no handler is required (not a wire message).
    exempt: dict[str, str] = field(default_factory=dict)


PROTOCOLS = (
    ProtocolSpec(name="net", wire="net/frames.py", handler_prefixes=("net/",)),
    ProtocolSpec(name="rpc", wire="rpc/wire.py", handler_prefixes=("rpc/",)),
    ProtocolSpec(
        name="gcs",
        wire="gcs/messages.py",
        handler_prefixes=("gcs/",),
        exempt={
            "MessageId": "identifier tuple embedded in messages, not itself sent",
            "DeliveredMessage": "local delivery record handed to services, never on the wire",
        },
    ),
    ProtocolSpec(name="pbs", wire="pbs/wire.py", handler_prefixes=("pbs/",)),
    ProtocolSpec(name="joshua", wire="joshua/wire.py", handler_prefixes=("joshua/",)),
    ProtocolSpec(name="pvfs", wire="pvfs/wire.py", handler_prefixes=("pvfs/",)),
)

_REGISTER_NAMES = ("register", "reg")

#: ErrorResp kind -> why no client-side consumer is required.
ERROR_KINDS_EXEMPT = {
    "unknown-job": "terminal user-facing error, relayed verbatim by the CLI",
    "bad-state": "terminal user-facing error (illegal transition), not branched on",
    "pbs-error": "generic server failure wrapper, surfaced to the user as-is",
    "bad-request": "malformed/unroutable request; a correct client never sees it",
    "bad-command": "unknown replicated command kind; a correct client never sees it",
    "retry": "consumed generically: the state-transfer puller retries on any "
             "PBSError (joshua/xfer.py)",
}


def _module_all(tree: ast.Module) -> list[str]:
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            return [
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
    return []


def _wire_classes(tree: ast.Module) -> dict[str, int]:
    """Class name -> definition line for classes exported via ``__all__``."""
    exported = set(_module_all(tree))
    return {
        node.name: node.lineno
        for node in tree.body
        if isinstance(node, ast.ClassDef) and (not exported or node.name in exported)
    }


def _type_names(node: ast.AST) -> list[str]:
    """Type names out of a ``T`` or ``(T1, T2)`` dispatch argument."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in node.elts:
            names.extend(_type_names(elt))
        return names
    return []


def _handled_types(tree: ast.AST) -> set[str]:
    handled: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            # Dispatch-table display: {DataMsg: handler, ...}.
            for key in node.keys:
                if key is not None:
                    handled.update(
                        n for n in _type_names(key) if n[:1].isupper()
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            func_name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            if func_name in _REGISTER_NAMES and node.args:
                handled.update(_type_names(node.args[0]))
            elif func_name == "isinstance" and len(node.args) == 2:
                handled.update(_type_names(node.args[1]))
        elif isinstance(node, ast.MatchClass):
            handled.update(_type_names(node.cls))
    return handled


def _constructed_types(tree: ast.AST) -> set[str]:
    constructed: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            constructed.update(
                n for n in _type_names(node.func) if n[:1].isupper()
            )
    return constructed


# ---------------------------------------------------------------------------
# R4 shape: handler payload-field agreement
# ---------------------------------------------------------------------------


def _class_members(tree: ast.Module) -> dict[str, set[str]]:
    """Class name -> declared member names (fields, class vars, methods)."""
    members: dict[str, set[str]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        names: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(stmt.name)
        members[node.name] = names
    return members


def _functions_by_name(tree: ast.Module) -> dict[str, list[ast.AST]]:
    defs: dict[str, list[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defs.setdefault(node.name, []).append(node)
    return defs


def _registrations(tree: ast.Module) -> list[tuple[list[str], ast.AST]]:
    """``(registered type names, handler expression)`` for every dispatch
    registration in the module: ``register(T, handler)`` calls and
    ``{T: handler}`` dispatch-table entries."""
    regs: list[tuple[list[str], ast.AST]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            func_name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            if func_name in _REGISTER_NAMES and len(node.args) >= 2:
                names = _type_names(node.args[0])
                if names:
                    regs.append((names, node.args[1]))
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if key is None:
                    continue
                names = [n for n in _type_names(key) if n[:1].isupper()]
                if names:
                    regs.append((names, value))
    return regs


def _handler_candidates(handler: ast.AST) -> set[str]:
    """Function names a handler expression may resolve to in its module:
    bare names, ``self.X`` attributes, and — for lambdas — the ``self.X``
    calls in the body that actually receive the payload parameter."""
    names: set[str] = set()
    if isinstance(handler, ast.Name):
        names.add(handler.id)
    for node in ast.walk(handler):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            names.add(node.attr)
    return names


def _lambda_forwards_payload(handler: ast.AST, candidate: str) -> bool:
    """For a ``lambda s, r, p: self.h(p)`` handler: does *candidate*'s call
    receive the lambda's payload (last) parameter? Handlers that ignore the
    payload (``self._do_purge()``) have nothing to shape-check."""
    if not isinstance(handler, ast.Lambda) or not handler.args.args:
        return True
    payload = handler.args.args[-1].arg
    for node in ast.walk(handler.body):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            if name == candidate:
                return any(
                    isinstance(arg, ast.Name) and arg.id == payload
                    for arg in node.args
                )
    return True


def _payload_attr_reads(fn: ast.AST) -> list[tuple[str, int]]:
    """Attribute names read off the function's payload (last) parameter."""
    args = list(fn.args.args)
    if args and args[0].arg == "self":
        args = args[1:]
    if not args:
        return []
    payload = args[-1].arg
    reads: list[tuple[str, int]] = []
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == payload
            and not node.attr.startswith("__")
        ):
            reads.append((node.attr, node.lineno))
    return reads


def _shape_findings(
    spec: ProtocolSpec,
    members: dict[str, set[str]],
    path: str,
    tree: ast.Module,
) -> list[Finding]:
    findings: list[Finding] = []
    defs = _functions_by_name(tree)
    for type_names, handler in _registrations(tree):
        known = [n for n in type_names if n in members]
        if not known:
            continue  # foreign types: another spec's (or no) wire module
        allowed: set[str] = set()
        for name in known:
            allowed |= members[name]
        for candidate in sorted(_handler_candidates(handler)):
            resolved = defs.get(candidate)
            if resolved is None or len(resolved) != 1:
                continue  # not in this module, or ambiguous — skip quietly
            if not _lambda_forwards_payload(handler, candidate):
                continue
            for attr, lineno in _payload_attr_reads(resolved[0]):
                if attr not in allowed:
                    findings.append(
                        Finding(
                            "R4",
                            path,
                            lineno,
                            0,
                            f"{spec.name} handler {candidate} reads payload."
                            f"{attr}, which is not a field of "
                            f"{'/'.join(sorted(known))} (see {spec.wire})",
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# R4 shape: every emitted ErrorResp kind has a consumer
# ---------------------------------------------------------------------------


def _error_resp_kinds(tree: ast.AST) -> tuple[list[tuple[str, int]], set[int]]:
    """``ErrorResp("<kind>", …)`` call sites: (kind, line) plus the ids of
    the kind-constant nodes (so the consumer scan can exclude them)."""
    emitted: list[tuple[str, int]] = []
    emitting_nodes: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else None
            )
            if (
                name == "ErrorResp"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                emitted.append((node.args[0].value, node.lineno))
                emitting_nodes.add(id(node.args[0]))
    return emitted, emitting_nodes


def _error_kind_findings(files: dict[str, ast.Module]) -> list[Finding]:
    emitted: list[tuple[str, str, int]] = []  # (kind, path, line)
    consumers: set[str] = set()
    for path, tree in sorted(files.items()):
        if path.startswith("analysis/"):
            continue  # the lint's own exemption table is not a consumer
        kinds, emitting_nodes = _error_resp_kinds(tree)
        emitted.extend((kind, path, line) for kind, line in kinds)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in emitting_nodes
            ):
                consumers.add(node.value)
    findings: list[Finding] = []
    for kind, path, line in emitted:
        if kind in consumers or kind in ERROR_KINDS_EXEMPT:
            continue
        findings.append(
            Finding(
                "R4",
                path,
                line,
                0,
                f"ErrorResp kind {kind!r} has no client-side consumer — no "
                "code can branch on it (add one, or exempt it in "
                "analysis.protocol.ERROR_KINDS_EXEMPT with a reason)",
            )
        )
    return findings


def rule_r4(files: dict[str, ast.Module]) -> list[Finding]:
    """*files* maps repro-relative paths to parsed modules."""
    findings: list[Finding] = []
    for spec in PROTOCOLS:
        wire_tree = files.get(spec.wire)
        if wire_tree is None:
            continue
        classes = _wire_classes(wire_tree)
        members = _class_members(wire_tree)
        handled: set[str] = set()
        constructed: set[str] = set()
        for path, tree in files.items():
            if path == spec.wire:
                continue
            if path.startswith(spec.handler_prefixes):
                handled |= _handled_types(tree)
                findings.extend(_shape_findings(spec, members, path, tree))
            constructed |= _constructed_types(tree)
        for cls, lineno in sorted(classes.items()):
            if cls in spec.exempt:
                continue
            is_response = cls.endswith("Resp")
            if not is_response and cls not in handled:
                findings.append(
                    Finding(
                        "R4",
                        spec.wire,
                        lineno,
                        0,
                        f"{spec.name} message {cls} has no handler in "
                        f"{'/'.join(spec.handler_prefixes)} — register it in a "
                        "dispatch table (or exempt it in analysis.protocol."
                        "PROTOCOLS with a reason)",
                    )
                )
            if cls not in constructed:
                findings.append(
                    Finding(
                        "R4",
                        spec.wire,
                        lineno,
                        0,
                        f"{spec.name} message {cls} is never constructed "
                        "outside its wire module — dead wire type (no "
                        "client-side encoder)",
                    )
                )
    findings.extend(_error_kind_findings(files))
    return findings


# ---------------------------------------------------------------------------
# R6 — codec coverage of the wire surface
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CodecSpec:
    """One module whose exported record types cross the simulated wire."""

    wire: str  # repro-relative path
    #: class name -> why no codec registration is required (local-only).
    exempt: dict[str, str] = field(default_factory=dict)


CODEC_MODULES = (
    CodecSpec(
        "net/address.py",
        exempt={
            "Delivery": "local mailbox record handed to the receiving "
                        "endpoint; built after decode, never itself encoded",
        },
    ),
    CodecSpec("net/frames.py"),
    CodecSpec("rpc/wire.py"),
    CodecSpec(
        "gcs/messages.py",
        exempt={
            "DeliveredMessage": "local delivery record handed to services, "
                                "never on the wire",
        },
    ),
    CodecSpec("pbs/wire.py"),
    CodecSpec("pbs/job.py"),
    CodecSpec("joshua/wire.py"),
    CodecSpec("pvfs/wire.py"),
    CodecSpec("pvfs/metadata.py"),
    CodecSpec("aa/replicated.py"),
)

_RECORD_REGISTER = "register_wire_types"
_ENUM_REGISTER = "register_wire_enum"
_SET_ANNOTATION = re.compile(r"\b(set|Set|frozenset|FrozenSet)\b")


def _registered_names(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Names passed to ``register_wire_types`` / ``register_wire_enum``
    (or direct ``WIRE.register`` / ``WIRE.register_enum`` calls)."""
    records: set[str] = set()
    enums: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "WIRE"
        ):
            name = {"register": _RECORD_REGISTER,
                    "register_enum": _ENUM_REGISTER}.get(func.attr, "")
        else:
            continue
        target = (
            records if name == _RECORD_REGISTER
            else enums if name == _ENUM_REGISTER
            else None
        )
        if target is not None:
            for arg in node.args:
                target.update(_type_names(arg))
    return records, enums


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = (
            target.attr if isinstance(target, ast.Attribute)
            else target.id if isinstance(target, ast.Name)
            else None
        )
        if name == "dataclass":
            return True
    return False


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _record_kind(node: ast.ClassDef) -> str | None:
    """``"record"``/``"enum"`` for codec-relevant classes, else ``None``
    (service classes, exceptions and other plain classes are not wire
    records and need no codec entry)."""
    bases = _base_names(node)
    if bases & {"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"}:
        return "enum"
    if _is_dataclass(node) or "NamedTuple" in bases:
        return "record"
    return None


def _set_fields(node: ast.ClassDef) -> list[tuple[str, int]]:
    hits: list[tuple[str, int]] = []
    for stmt in node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and _SET_ANNOTATION.search(ast.unparse(stmt.annotation))
        ):
            hits.append((stmt.target.id, stmt.lineno))
    return hits


def rule_r6(files: dict[str, ast.Module]) -> list[Finding]:
    """*files* maps repro-relative paths to parsed modules."""
    findings: list[Finding] = []
    seen_names: dict[str, str] = {}  # wire class name -> defining module
    for spec in CODEC_MODULES:
        tree = files.get(spec.wire)
        if tree is None:
            continue
        exported = _wire_classes(tree)
        records, enums = _registered_names(tree)
        for node in tree.body:
            if not isinstance(node, ast.ClassDef) or node.name not in exported:
                continue
            if node.name in spec.exempt:
                continue
            kind = _record_kind(node)
            if kind is None:
                continue
            first = seen_names.setdefault(node.name, spec.wire)
            if first != spec.wire:
                findings.append(
                    Finding(
                        "R6",
                        spec.wire,
                        node.lineno,
                        0,
                        f"wire type {node.name} collides with {first} — the "
                        "codec tags frames by class name, so wire names must "
                        "be unique across wire modules",
                    )
                )
            expected = enums if kind == "enum" else records
            register_fn = _ENUM_REGISTER if kind == "enum" else _RECORD_REGISTER
            if node.name not in expected:
                findings.append(
                    Finding(
                        "R6",
                        spec.wire,
                        node.lineno,
                        0,
                        f"wire type {node.name} has no codec entry — add it "
                        f"to a {register_fn}(...) call in this module (or "
                        "exempt it in analysis.protocol.CODEC_MODULES with "
                        "a reason)",
                    )
                )
            for field_name, lineno in _set_fields(node):
                findings.append(
                    Finding(
                        "R6",
                        spec.wire,
                        lineno,
                        0,
                        f"wire type {node.name} field {field_name} is "
                        "set-typed — the codec rejects unordered containers; "
                        "use a sorted tuple",
                    )
                )
    return findings
