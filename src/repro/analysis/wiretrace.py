"""Wire-trace digests: the sharding refactor's behavior-preservation proof.

Runs the three baseline scenarios (normal operation, membership churn,
partition + heal — the same drivers as ``tools/capture_trace.py``) and
reduces every frame the simulation puts on the wire to one canonical line::

    <send time> <src> <dst> <encoded frame length> <payload repr>

The sha256 over those lines is the scenario's **wire digest**: two builds
with the same digest sent byte-for-byte identical traffic at identical
times. ``tests/data/wire_baseline.json`` pins the digests of the
pre-sharding build; the regression test regenerates them with ``shards=1``
and compares, proving the router/replica split is invisible on the wire
when there is only one shard (the PR-2 decomposition-proof style).

The scenario code lives here — importable by both the capture tool
(``tools/capture_wire_baseline.py``) and the test — so the two can never
drift apart.
"""

from __future__ import annotations

import hashlib

from repro.cluster.cluster import Cluster
from repro.gcs.config import GroupConfig
from repro.joshua.deploy import JoshuaStack, build_joshua_stack
from repro.net.codec import encoded_size

__all__ = ["SCENARIOS", "run_scenario", "scenario_digests", "BASELINE_GROUP"]

#: Must match ``tests/integration/conftest.FAST_GROUP`` — the protocol
#: timings every integration scenario runs under.
BASELINE_GROUP = GroupConfig(
    heartbeat_interval=0.1,
    suspect_timeout=0.35,
    flush_timeout=0.8,
    retransmit_interval=0.05,
)

_SEED = 11
_HEADS = 3
_COMPUTES = 2


def _make_stack(shards: int) -> JoshuaStack:
    cluster = Cluster(
        head_count=_HEADS, compute_count=_COMPUTES, seed=_SEED, login_node=True
    )
    extra = {"shards": shards} if shards != 1 else {}
    return build_joshua_stack(
        cluster, group_config=BASELINE_GROUP, state_transfer="replay", **extra
    )


def _drive(stack: JoshuaStack, coroutine):
    process = stack.cluster.kernel.spawn(coroutine)
    return stack.cluster.run(until=process)


def _spy_network(stack: JoshuaStack) -> list[str]:
    """Record every frame crossing :meth:`Network.send` as a canonical line."""
    lines: list[str] = []
    network = stack.cluster.network
    inner = network.send
    kernel = stack.cluster.kernel

    def spy(src, dst, payload):
        lines.append(
            f"{kernel.now:.9f} {src} {dst} {encoded_size(payload)} {payload!r}"
        )
        return inner(src, dst, payload)

    network.send = spy
    return lines


# -- scenario drivers (mirrors tools/capture_trace.py exactly) ---------------


def _scenario_normal(stack: JoshuaStack) -> None:
    client = stack.client(node="login")
    for i in range(4):
        _drive(stack, client.jsub(name=f"j{i}", walltime=2.0))
    _drive(stack, client.jstat())
    _drive(stack, client.jdel(_drive(stack, client.jsub(name="victim", walltime=900.0))))
    stack.cluster.run(until=25.0)


def _scenario_membership(stack: JoshuaStack) -> None:
    client = stack.client(node="login")
    for i in range(3):
        _drive(stack, client.jsub(name=f"m{i}", walltime=2.0))
    stack.cluster.node("head0").crash()
    stack.cluster.run(until=stack.cluster.kernel.now + 3.0)
    _drive(stack, client.jsub(name="after-crash", walltime=2.0))
    stack.cluster.node("head0").restart()
    stack.cluster.run(until=stack.cluster.kernel.now + 5.0)
    _drive(stack, client.jsub(name="after-rejoin", walltime=2.0))
    stack.cluster.run(until=40.0)


def _scenario_partitions(stack: JoshuaStack) -> None:
    client = stack.client(node="login")
    for i in range(2):
        _drive(stack, client.jsub(name=f"p{i}", walltime=2.0))
    net = stack.cluster.network
    net.partitions.set_partitions(
        [["head0", "head1", "compute0", "compute1", "login"], ["head2"]]
    )
    stack.cluster.run(until=stack.cluster.kernel.now + 4.0)
    _drive(stack, client.jsub(name="during-partition", walltime=2.0))
    net.partitions.heal_partitions()
    stack.cluster.run(until=stack.cluster.kernel.now + 10.0)
    _drive(stack, client.jsub(name="after-heal", walltime=2.0))
    stack.cluster.run(until=45.0)


SCENARIOS = {
    "normal": _scenario_normal,
    "membership": _scenario_membership,
    "partitions": _scenario_partitions,
}


def run_scenario(name: str, *, shards: int = 1) -> dict:
    """One scenario's wire digest plus the coarse counters that aid triage
    when the digest differs (frame count narrows *where*, the clock and
    event count narrow *when*)."""
    stack = _make_stack(shards)
    lines = _spy_network(stack)
    SCENARIOS[name](stack)
    digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    return {
        "digest": digest,
        "frames": len(lines),
        "bytes": sum(int(line.split(" ", 4)[3]) for line in lines),
        "now": round(stack.cluster.kernel.now, 9),
        "events": stack.cluster.kernel.processed_events,
    }


def scenario_digests(*, shards: int = 1) -> dict:
    return {name: run_scenario(name, shards=shards) for name in SCENARIOS}
