"""R7: wire-schema extraction, the committed lockfile, and delta classes.

The codec (:mod:`repro.net.codec`) makes every wire record self-describing
*per frame*, but nothing pinned the **schema itself** — a field rename or
reorder silently changed what old traces and mixed-version peers decode.
This module closes that gap statically:

* :func:`extract_schema` walks the AST of every module in
  :data:`~repro.analysis.protocol.CODEC_MODULES` (R6's list — the single
  source of truth for "what is a wire module") and derives the canonical
  schema: per-record field names, order, type annotations and defaults,
  plus enum member values, plus the same 16-bit
  :func:`~repro.net.codec.schema_fingerprint` the codec stamps on frames.
* The schema is committed as ``src/repro/WIRE_SCHEMA.lock`` (JSON, sorted
  keys, no line numbers — so unrelated edits never churn it).
* Rule **R7** diffs the working tree's extracted schema against the
  lockfile and reports every delta as a finding, classified by
  :func:`diff_schemas`:

  ==================  ======================================================
  severity            meaning
  ==================  ======================================================
  *compatible*        wire-compatible: new record/enum, new enum member,
                      new **defaulted trailing** field — old and new nodes
                      interoperate in tolerant decode.
  *decode-compatible* tolerated by decode but semantically visible: a
                      trailing field deprecated (dropped) while its old
                      default is still recorded, or a default's value
                      changed (fills differ across versions).
  *breaking*          removed/renamed/reordered field, annotation change,
                      removed enum member or changed member value —
                      positional decode cannot align, or old frames
                      change meaning.
  ==================  ======================================================

Any drift fails ``repro lint`` until the lockfile is regenerated with
``repro schema update`` — so every wire-schema change is a reviewed,
classified event in the diff of the lockfile itself. ``repro schema diff``
renders the classification (exit 1 on breaking deltas) for CI and review.
"""

from __future__ import annotations

import ast
import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.protocol import (
    CODEC_MODULES,
    _base_names,
    _registered_names,
)
from repro.net.codec import schema_fingerprint

__all__ = [
    "BREAKING",
    "COMPATIBLE",
    "DECODE_COMPATIBLE",
    "LOCKFILE_NAME",
    "SCHEMA_VERSION",
    "SchemaDelta",
    "diff_schemas",
    "extract_from_root",
    "extract_schema",
    "load_lockfile",
    "lockfile_path",
    "render_deltas",
    "rule_r7",
    "write_lockfile",
]

SCHEMA_VERSION = 1
LOCKFILE_NAME = "WIRE_SCHEMA.lock"

COMPATIBLE = "compatible"
DECODE_COMPATIBLE = "decode-compatible"
BREAKING = "breaking"


@dataclass(frozen=True)
class SchemaDelta:
    """One classified difference between the lockfile and the working tree."""

    severity: str  # COMPATIBLE | DECODE_COMPATIBLE | BREAKING
    kind: str      # e.g. "field-appended", "fields-reordered"
    name: str      # record/enum wire name
    module: str    # repro-relative wire module path
    detail: str

    def render(self) -> str:
        return (
            f"[{self.severity}] {self.name} ({self.module}): "
            f"{self.kind} — {self.detail}"
        )

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def _is_field_call_without_default(node: ast.expr) -> bool:
    """``field(...)`` pseudo-defaults only count when they carry a
    ``default=`` / ``default_factory=`` keyword (``field(init=False)``
    alone declares no fill value)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = (
        func.attr if isinstance(func, ast.Attribute)
        else func.id if isinstance(func, ast.Name)
        else None
    )
    if name != "field":
        return False
    return not any(
        kw.arg in ("default", "default_factory") for kw in node.keywords
    )


def _class_fields(node: ast.ClassDef) -> list[dict]:
    """Declared fields of a dataclass/NamedTuple body, in order: name,
    unparsed annotation, unparsed default (``None`` = no default).
    ``ClassVar`` annotations and plain assignments are not fields."""
    fields: list[dict] = []
    for stmt in node.body:
        if not (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
        ):
            continue
        annotation = ast.unparse(stmt.annotation)
        if annotation.startswith(("ClassVar", "typing.ClassVar")):
            continue
        default = None
        if stmt.value is not None and not _is_field_call_without_default(
            stmt.value
        ):
            default = ast.unparse(stmt.value)
        fields.append(
            {"name": stmt.target.id, "type": annotation, "default": default}
        )
    return fields


def _enum_members(node: ast.ClassDef) -> dict[str, str]:
    """Member name -> unparsed value expression (order-insensitive: enum
    members are looked up by value at decode, never positionally)."""
    members: dict[str, str] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                members[target.id] = ast.unparse(stmt.value)
    return members


def extract_schema(
    files: dict[str, ast.Module],
) -> tuple[dict, dict[str, tuple[str, int]]]:
    """Extract the canonical wire schema from parsed modules.

    *files* maps repro-relative paths to parsed ASTs (any superset of the
    wire modules — non-wire paths are ignored). Returns ``(schema,
    locations)``: the JSON-ready schema mapping and, separately, each
    record/enum's ``(path, lineno)`` for anchoring findings — line numbers
    deliberately never enter the schema, so unrelated edits to a wire
    module do not churn the lockfile."""
    records: dict[str, dict] = {}
    enums: dict[str, dict] = {}
    locations: dict[str, tuple[str, int]] = {}
    for spec in CODEC_MODULES:
        tree = files.get(spec.wire)
        if tree is None:
            continue
        reg_records, reg_enums = _registered_names(tree)
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in reg_enums:
                enums[node.name] = {
                    "module": spec.wire,
                    "members": _enum_members(node),
                }
                locations[node.name] = (spec.wire, node.lineno)
            elif node.name in reg_records:
                fields = _class_fields(node)
                records[node.name] = {
                    "module": spec.wire,
                    "kind": (
                        "namedtuple"
                        if "NamedTuple" in _base_names(node)
                        else "dataclass"
                    ),
                    "fingerprint": schema_fingerprint(
                        node.name, tuple(f["name"] for f in fields)
                    ),
                    "fields": fields,
                }
                locations[node.name] = (spec.wire, node.lineno)
    schema = {"version": SCHEMA_VERSION, "records": records, "enums": enums}
    return schema, locations


def _package_root() -> Path:
    # The repro package root (this file lives in repro/analysis/).
    return Path(__file__).resolve().parent.parent


def extract_from_root(
    root: str | Path | None = None,
) -> tuple[dict, dict[str, tuple[str, int]]]:
    """:func:`extract_schema` over the wire modules under *root* (default:
    the installed repro package — same default as ``run_lint``)."""
    base = Path(root) if root is not None else _package_root()
    files: dict[str, ast.Module] = {}
    for spec in CODEC_MODULES:
        path = base / spec.wire
        if path.exists():
            files[spec.wire] = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
    return extract_schema(files)


# ---------------------------------------------------------------------------
# lockfile
# ---------------------------------------------------------------------------


def lockfile_path(root: str | Path | None = None) -> Path:
    base = Path(root) if root is not None else _package_root()
    return base / LOCKFILE_NAME


def load_lockfile(path: str | Path) -> dict | None:
    """The parsed lockfile, or ``None`` if it does not exist yet."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def write_lockfile(schema: dict, path: str | Path) -> None:
    Path(path).write_text(
        json.dumps(schema, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )


# ---------------------------------------------------------------------------
# diff + classification
# ---------------------------------------------------------------------------


def _diff_common_fields(
    name: str, module: str, old_fields: list[dict], new_fields: list[dict]
) -> list[SchemaDelta]:
    """Deltas between same-named, same-position field runs: annotation and
    default changes."""
    deltas: list[SchemaDelta] = []
    for old_f, new_f in zip(old_fields, new_fields):
        field_name = new_f["name"]
        if old_f.get("type") != new_f.get("type"):
            deltas.append(SchemaDelta(
                BREAKING, "field-type-changed", name, module,
                f"field {field_name!r} annotation changed "
                f"{old_f.get('type')!r} -> {new_f.get('type')!r} — old "
                "frames decode the old payload shape into the new "
                "expectation",
            ))
        old_default, new_default = old_f.get("default"), new_f.get("default")
        if old_default == new_default:
            continue
        if new_default is None:
            deltas.append(SchemaDelta(
                BREAKING, "field-default-removed", name, module,
                f"field {field_name!r} lost its default {old_default!r} — "
                "frames from senders that predate the field can no longer "
                "be filled",
            ))
        elif old_default is None:
            deltas.append(SchemaDelta(
                COMPATIBLE, "field-default-added", name, module,
                f"field {field_name!r} gained default {new_default}",
            ))
        else:
            deltas.append(SchemaDelta(
                DECODE_COMPATIBLE, "field-default-changed", name, module,
                f"field {field_name!r} default changed {old_default!r} -> "
                f"{new_default!r} — fills for old frames differ across "
                "versions",
            ))
    return deltas


def _diff_record(name: str, old: dict, new: dict) -> list[SchemaDelta]:
    deltas: list[SchemaDelta] = []
    module = new["module"]
    if old.get("module") != new.get("module"):
        deltas.append(SchemaDelta(
            COMPATIBLE, "record-moved", name, module,
            f"moved from {old.get('module')} (wire frames are unchanged)",
        ))
    if old.get("kind") != new.get("kind"):
        deltas.append(SchemaDelta(
            COMPATIBLE, "record-kind-changed", name, module,
            f"{old.get('kind')} -> {new.get('kind')} (wire frames are "
            "unchanged)",
        ))
    old_fields, new_fields = old["fields"], new["fields"]
    old_names = [f["name"] for f in old_fields]
    new_names = [f["name"] for f in new_fields]
    if old_names == new_names:
        deltas.extend(_diff_common_fields(name, module, old_fields, new_fields))
    elif (
        len(new_names) > len(old_names)
        and new_names[: len(old_names)] == old_names
    ):
        for field in new_fields[len(old_names):]:
            if field["default"] is None:
                deltas.append(SchemaDelta(
                    BREAKING, "field-appended-without-default", name, module,
                    f"new trailing field {field['name']!r} has no default — "
                    "an old sender's frames cannot be filled",
                ))
            else:
                deltas.append(SchemaDelta(
                    COMPATIBLE, "field-appended", name, module,
                    f"new defaulted trailing field {field['name']!r} "
                    f"(default {field['default']})",
                ))
        deltas.extend(_diff_common_fields(
            name, module, old_fields, new_fields[: len(old_fields)]
        ))
    elif (
        len(old_names) > len(new_names)
        and old_names[: len(new_names)] == new_names
    ):
        for field in old_fields[len(new_names):]:
            if field["default"] is None:
                deltas.append(SchemaDelta(
                    BREAKING, "field-removed", name, module,
                    f"trailing field {field['name']!r} removed and the old "
                    "declaration had no default — old receivers cannot "
                    "fill it",
                ))
            else:
                deltas.append(SchemaDelta(
                    DECODE_COMPATIBLE, "field-deprecated", name, module,
                    f"trailing field {field['name']!r} dropped; old "
                    "receivers fill it from its recorded default "
                    f"{field['default']}",
                ))
        deltas.extend(_diff_common_fields(
            name, module, old_fields[: len(new_fields)], new_fields
        ))
    elif sorted(old_names) == sorted(new_names):
        deltas.append(SchemaDelta(
            BREAKING, "fields-reordered", name, module,
            f"field order changed {old_names} -> {new_names} — positional "
            "decode cannot align",
        ))
    elif len(old_names) == len(new_names):
        renamed = ", ".join(
            f"{o!r} -> {n!r}"
            for o, n in zip(old_names, new_names)
            if o != n
        )
        deltas.append(SchemaDelta(
            BREAKING, "field-renamed", name, module,
            f"renamed {renamed} — positional decode would silently rebind "
            "the payload",
        ))
    else:
        removed = sorted(set(old_names) - set(new_names))
        added = sorted(set(new_names) - set(old_names))
        deltas.append(SchemaDelta(
            BREAKING, "fields-changed", name, module,
            f"non-trailing field change (removed {removed}, added {added}) "
            "— only trailing appends/deprecations are evolvable",
        ))
    return deltas


def _diff_enum(name: str, old: dict, new: dict) -> list[SchemaDelta]:
    deltas: list[SchemaDelta] = []
    module = new["module"]
    if old.get("module") != new.get("module"):
        deltas.append(SchemaDelta(
            COMPATIBLE, "enum-moved", name, module,
            f"moved from {old.get('module')} (wire frames are unchanged)",
        ))
    old_members, new_members = old["members"], new["members"]
    for member in sorted(old_members.keys() | new_members.keys()):
        if member not in old_members:
            deltas.append(SchemaDelta(
                COMPATIBLE, "enum-member-added", name, module,
                f"new member {member} = {new_members[member]}",
            ))
        elif member not in new_members:
            deltas.append(SchemaDelta(
                BREAKING, "enum-member-removed", name, module,
                f"member {member} removed — frames carrying its value no "
                "longer decode",
            ))
        elif old_members[member] != new_members[member]:
            deltas.append(SchemaDelta(
                BREAKING, "enum-member-value-changed", name, module,
                f"member {member} value changed {old_members[member]} -> "
                f"{new_members[member]} — old frames decode to the wrong "
                "member or fail",
            ))
    return deltas


def diff_schemas(locked: dict, current: dict) -> list[SchemaDelta]:
    """Classified deltas from *locked* (the committed schema) to *current*
    (the working tree's extraction). Empty list = lockfile is up to date."""
    deltas: list[SchemaDelta] = []
    if locked.get("version") != current.get("version"):
        deltas.append(SchemaDelta(
            BREAKING, "schema-version-changed", "<schema>", LOCKFILE_NAME,
            f"lockfile version {locked.get('version')} vs extractor "
            f"version {current.get('version')} — regenerate the lockfile",
        ))
    old_records = locked.get("records", {})
    new_records = current.get("records", {})
    for name in sorted(old_records.keys() | new_records.keys()):
        old, new = old_records.get(name), new_records.get(name)
        if old is None:
            deltas.append(SchemaDelta(
                COMPATIBLE, "record-added", name, new["module"],
                f"new wire record with {len(new['fields'])} fields",
            ))
        elif new is None:
            deltas.append(SchemaDelta(
                BREAKING, "record-removed", name, old["module"],
                "frames of this record can no longer be decoded",
            ))
        else:
            deltas.extend(_diff_record(name, old, new))
    old_enums = locked.get("enums", {})
    new_enums = current.get("enums", {})
    for name in sorted(old_enums.keys() | new_enums.keys()):
        old, new = old_enums.get(name), new_enums.get(name)
        if old is None:
            deltas.append(SchemaDelta(
                COMPATIBLE, "enum-added", name, new["module"],
                f"new wire enum with {len(new['members'])} members",
            ))
        elif new is None:
            deltas.append(SchemaDelta(
                BREAKING, "enum-removed", name, old["module"],
                "frames carrying its members can no longer be decoded",
            ))
        else:
            deltas.extend(_diff_enum(name, old, new))
    return deltas


_SEVERITY_ORDER = {BREAKING: 0, DECODE_COMPATIBLE: 1, COMPATIBLE: 2}


def render_deltas(deltas: list[SchemaDelta], *, jsonl: bool = False) -> str:
    """Human-readable (or JSONL) rendering, breaking deltas first."""
    ordered = sorted(
        deltas, key=lambda d: (_SEVERITY_ORDER[d.severity], d.name, d.kind)
    )
    if jsonl:
        return "\n".join(
            json.dumps(d.to_json(), sort_keys=True) for d in ordered
        )
    return "\n".join(d.render() for d in ordered)


# ---------------------------------------------------------------------------
# rule R7
# ---------------------------------------------------------------------------


def rule_r7(
    files: dict[str, ast.Module], schema_lock: dict | None
) -> list[Finding]:
    """*files* maps repro-relative paths to parsed modules; *schema_lock*
    is the parsed lockfile (``None`` = missing). Every delta is a finding
    — the lockfile must track the working tree exactly, or later diffs
    would classify against a stale base."""
    current, locations = extract_schema(files)
    if not current["records"] and not current["enums"]:
        return []  # no wire module among the linted files
    if schema_lock is None:
        wire = next(
            spec.wire for spec in CODEC_MODULES if spec.wire in files
        )
        return [Finding(
            "R7", wire, 1, 0,
            f"no {LOCKFILE_NAME} found — generate it with "
            "`repro schema update` and commit it",
        )]
    findings: list[Finding] = []
    for delta in diff_schemas(schema_lock, current):
        path, line = locations.get(delta.name, (delta.module, 1))
        findings.append(Finding(
            "R7", path, line, 0,
            f"wire schema drift [{delta.severity}] {delta.kind}: "
            f"{delta.name} — {delta.detail}; review the change and run "
            "`repro schema update` to accept it",
        ))
    return findings
