"""Chaos runs: a JOSHUA stack under a fault schedule with live invariants.

:func:`run_chaos` is the one-call harness behind ``repro chaos run``: build
a cluster and JOSHUA stack, attach the :class:`~repro.faults.invariants.
InvariantSuite`, drive a workload of ``jsub`` submissions while a
:class:`~repro.faults.injector.FaultInjector` executes the schedule, then
heal everything, let the system quiesce, and run the final checks.

:func:`soak` repeats that with per-run seeds derived from a master seed,
alternating the ordering engine, so ``repro chaos soak --seed 0 --runs 20``
is a deterministic regression battery; any failing run reports its own
seed + schedule JSON for replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantSuite, Violation
from repro.faults.schedule import FaultSchedule, random_schedule
from repro.gcs.config import GroupConfig
from repro.joshua.deploy import build_joshua_stack
from repro.joshua.shard import queue_for_shard
from repro.joshua.wire import JStatResp
from repro.obs.collector import attach_collector
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import attach_recorder
from repro.obs.timeseries import attach_timeseries
from repro.rpc import TimeoutRecord, rpc_state
from repro.util.errors import ClusterError, NoActiveHeadError

__all__ = ["CHAOS_GROUP", "ChaosReport", "run_chaos", "soak"]

#: Group timing for chaos runs: quick failure detection so crash scenarios
#: resolve within the run, and a short GC sweep so the bounded-queue
#: invariant actually bites within a 30-second scenario.
CHAOS_GROUP = GroupConfig(
    heartbeat_interval=0.1,
    suspect_timeout=0.6,
    flush_timeout=1.0,
    retransmit_interval=0.05,
    gc_interval=2.0,
)


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    ordering: str
    schedule: FaultSchedule
    events_applied: list[tuple[float, str]]
    jobs_submitted: int
    jobs_completed: int
    violations: list[Violation] = field(default_factory=list)
    #: Every RPC attempt chain that exhausted its retries during the run,
    #: with destination, request type, and attempt count (from the
    #: simulation-wide :class:`~repro.rpc.RpcState` timeout log). Expected
    #: while heads are down; in a *failed* run they show which dst/request
    #: pairs went dark around the violation.
    rpc_timeouts: list[TimeoutRecord] = field(default_factory=list)
    #: Metrics accumulated by the run's trace collector (per-request-type
    #: RPC latency/retry histograms, GCS ordering overhead, job phases).
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Structured log records of the run (``SimLogger.to_dicts`` form) —
    #: violations are logged under source ``"chaos"`` so failure reports
    #: and trace spans share one machine-readable stream.
    log_records: list[dict] = field(default_factory=list)
    #: Ordering-layer shard count the stack ran with (1 = the paper's
    #: single group).
    shards: int = 1
    #: Postmortem bundles the flight recorder captured (invariant
    #: violations, sanitizer findings, exhausted RPC conversations) —
    #: each a causally merged snapshot of every node's last-K ring.
    postmortems: list[dict] = field(default_factory=list)
    #: Per-window time-series samples (``type="timeseries"`` records).
    timeseries: list[dict] = field(default_factory=list)
    #: Per-message-type byte ledgers from the network fabric.
    wire_bytes_by_type: dict = field(default_factory=dict)
    offered_bytes_by_type: dict = field(default_factory=dict)
    #: Read-path workload share (0 = the historical write-only run) and
    #: its outcome split (reads that completed locally / fell back to the
    #: ordered stream / found no head at all).
    read_mix: float = 0.0
    reads_issued: int = 0
    reads_local: int = 0
    reads_fallback: int = 0
    reads_failed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        sharding = f" shards={self.shards}" if self.shards > 1 else ""
        reads = (
            f" reads={self.reads_local}L/{self.reads_fallback}F/"
            f"{self.reads_failed}X of {self.reads_issued}"
            if self.read_mix > 0 else ""
        )
        return (
            f"seed={self.seed} ordering={self.ordering}{sharding} "
            f"faults={len(self.schedule.events)} "
            f"jobs={self.jobs_completed}/{self.jobs_submitted}{reads} {status}"
        )


def run_chaos(
    schedule: FaultSchedule | None = None,
    *,
    seed: int = 0,
    heads: int = 3,
    computes: int = 2,
    jobs: int = 6,
    duration: float = 30.0,
    ordering: str = "sequencer",
    intensity: int = 3,
    quiesce: float = 15.0,
    queue_bound: int = 500,
    shards: int = 1,
    read_mix: float = 0.0,
    registry: MetricsRegistry | None = None,
) -> ChaosReport:
    """Run one chaos scenario and return its report.

    With no *schedule*, a random one is generated from *seed* (so the run
    is replayable from the seed alone). The workload spreads *jobs*
    submissions over the first ~60 % of *duration* with walltimes short
    enough to finish during the run; after *duration* the injector heals
    every outstanding fault and the system gets *quiesce* seconds of calm
    before the final invariant checks.

    With ``read_mix`` > 0 a second workload runs alongside: gateway
    sessions (:mod:`repro.joshua.gateway`) that submit tracked jobs and
    issue read-your-writes ``jstat`` queries, sized so reads make up
    roughly that fraction of all client operations. Every completed read
    is checked against the RYW/monotonic-reads invariants
    (:meth:`~repro.faults.invariants.InvariantSuite.observe_read`); the
    write workload is untouched, so ``read_mix=0`` runs are byte-identical
    to the historical harness.
    """
    if not 0.0 <= read_mix < 1.0:
        raise ClusterError("read_mix must be in [0, 1)")
    # Batched sequencing is the interesting configuration for the stale-
    # flusher class of bug; keep a small batch delay on by default. DATA
    # batching likewise stays on so every chaos run exercises the Nagle
    # window across crashes, partitions and view changes.
    batch_delay = 0.005 if ordering == "sequencer" else 0.0
    group = GroupConfig(
        heartbeat_interval=CHAOS_GROUP.heartbeat_interval,
        suspect_timeout=CHAOS_GROUP.suspect_timeout,
        flush_timeout=CHAOS_GROUP.flush_timeout,
        retransmit_interval=CHAOS_GROUP.retransmit_interval,
        ordering=ordering,
        sequencer_batch_delay=batch_delay,
        data_batch_delay=0.005,
        data_batch_min_delay=0.001,
        gc_interval=CHAOS_GROUP.gc_interval,
    )
    cluster = Cluster(
        head_count=heads, compute_count=computes, login_node=True, seed=seed
    )
    stack = build_joshua_stack(cluster, group_config=group, shards=shards)
    collector = attach_collector(cluster.network, registry=registry)
    # Flight recorder + time-series observatory: passive (the obs-passivity
    # suite holds both to bit-identical wire traces), so every chaos run
    # carries its own black box and time-resolved metrics.
    flight = attach_recorder(cluster.network)
    sampler = attach_timeseries(cluster.network)
    cluster.run(until=2.0)  # let the group form before faults begin

    suite = InvariantSuite(stack, queue_bound=queue_bound).attach()
    if schedule is None:
        schedule = random_schedule(
            seed,
            heads=stack.head_names,
            computes=[c.name for c in cluster.computes],
            duration=duration,
            intensity=intensity,
            ordering=ordering,
        )
    injector = FaultInjector(cluster)
    injector.apply(schedule)

    client = stack.client("login")
    submitted = 0
    failed_submits = 0

    def workload():
        nonlocal submitted, failed_submits
        rng = cluster.kernel.streams.get("chaos-workload")
        window = 0.6 * duration
        for i in range(jobs):
            yield cluster.kernel.timeout(window / jobs)
            walltime = float(rng.uniform(1.0, 3.0))
            # Sharded runs round-robin the submissions across every
            # shard's queue namespace so each ordering group sees traffic;
            # single-shard runs keep the historical default queue.
            extra = (
                {"queue": queue_for_shard(i % shards, shards)}
                if shards > 1 else {}
            )
            try:
                yield from client.jsub(name=f"chaos-{i}", walltime=walltime,
                                       **extra)
                submitted += 1
            except NoActiveHeadError:
                # Every head unreachable right now — a client-visible outage
                # is allowed; losing an *accepted* job is not.
                failed_submits += 1

    reads = (
        int(round(jobs * read_mix / (1.0 - read_mix))) if read_mix > 0 else 0
    )
    read_stats = {"issued": 0, "local": 0, "fallback": 0, "failed": 0}

    def read_workload():
        nonlocal submitted
        rng = cluster.kernel.streams.get("chaos-reads")
        gateway = stack.gateway(consistency="ryw")
        nreaders = min(3, reads)
        sessions = [
            gateway.session("login", f"reader{r}") for r in range(nreaders)
        ]
        window = 0.6 * duration
        for i in range(reads):
            yield cluster.kernel.timeout(window / reads)
            session = sessions[i % nreaders]
            client = session.client
            try:
                if not client.last_write_seq:
                    # Establish this reader's floors first: a tracked
                    # write of its own is what makes RYW falsifiable.
                    walltime = float(rng.uniform(1.0, 3.0))
                    yield from session.jsub(
                        name=f"chaos-reader{i}", walltime=walltime
                    )
                    submitted += 1
                read_stats["issued"] += 1
                yield from session.jstat()  # id-less: gates every shard
                response = client.last_stat_response
                if isinstance(response, JStatResp):
                    read_stats["local"] += 1
                else:
                    read_stats["fallback"] += 1
                suite.observe_read(
                    session.client_id, dict(client.last_write_seq), response
                )
            except NoActiveHeadError:
                read_stats["failed"] += 1

    cluster.kernel.spawn(workload(), name="chaos-workload")
    if reads:
        cluster.kernel.spawn(read_workload(), name="chaos-read-workload")
    cluster.kernel.spawn(suite.sampler(1.0), name="invariant-sampler")
    cluster.run(until=2.0 + max(duration, schedule.horizon()))
    injector.heal_all()
    cluster.run(until=cluster.kernel.now + quiesce)
    suite.final_check()
    for violation in suite.violations:
        cluster.kernel.log.error("chaos", str(violation), seed=seed,
                                 ordering=ordering)

    return ChaosReport(
        seed=seed,
        ordering=ordering,
        schedule=schedule,
        shards=shards,
        events_applied=list(injector.log),
        jobs_submitted=submitted,
        jobs_completed=suite.completed_jobs(),
        violations=list(suite.violations),
        rpc_timeouts=list(rpc_state(cluster.network).timeouts),
        registry=collector.registry,
        log_records=cluster.kernel.log.to_dicts(),
        postmortems=list(flight.bundles),
        timeseries=sampler.records(),
        wire_bytes_by_type=dict(cluster.network.wire_bytes_by_type),
        offered_bytes_by_type=dict(cluster.network.offered_bytes_by_type),
        read_mix=read_mix,
        reads_issued=read_stats["issued"],
        reads_local=read_stats["local"],
        reads_fallback=read_stats["fallback"],
        reads_failed=read_stats["failed"],
    )


def soak(
    seed: int = 0,
    runs: int = 20,
    *,
    heads: int = 3,
    computes: int = 2,
    jobs: int = 6,
    duration: float = 30.0,
    intensity: int = 3,
    read_mix: float = 0.0,
) -> list[ChaosReport]:
    """Run *runs* chaos scenarios with per-run seeds derived from *seed*,
    alternating the ordering engine. Returns every report; callers check
    ``all(r.ok for r in reports)``."""
    reports = []
    for i in range(runs):
        run_seed = seed * 1_000_003 + i
        ordering = "sequencer" if i % 2 == 0 else "token"
        reports.append(
            run_chaos(
                seed=run_seed,
                heads=heads,
                computes=computes,
                jobs=jobs,
                duration=duration,
                ordering=ordering,
                intensity=intensity,
                read_mix=read_mix,
            )
        )
    return reports
