"""Declarative fault scenarios: typed events, builders, JSON form, RNG soak.

A :class:`FaultSchedule` is the script of a chaos run: a list of typed
:class:`FaultEvent` records placed on the simulated clock. Schedules are
built three ways:

* **programmatically** with the chainable builder methods
  (``schedule.crash(5.0, "head0").restart(9.0, "head0")``);
* **declaratively** from a dict/JSON document (:meth:`FaultSchedule.from_dict`
  / :meth:`from_json`) so scenarios can live next to experiment configs;
* **randomly** with :func:`random_schedule`, the seeded generator behind
  ``repro chaos soak`` — the seed fully determines the scenario, so any
  failing soak run is replayable from its printed seed.

Event kinds and their fields::

    crash      node                    fail-stop a node
    restart    node                    bring a crashed node back (daemons too)
    cut        node, peer              cut one link (partition.cut_link)
    restore    node, peer              undo one cut
    partition  groups                  set_partitions(groups)
    heal       -                       heal_partitions()
    loss       value, duration        LAN-wide loss burst (probability)
    jitter     value, duration        LAN-wide jitter burst (seconds)
    freeze     node, duration         network blackout; processes survive
    slow       node, value, duration  per-node extra latency episode
    token_loss duration                drop ordering-token frames on the wire
    stop_daemon node, daemon           clean process kill (no node crash)

Timed kinds (``loss``/``jitter``/``freeze``/``slow``/``token_loss``) revert
automatically after ``duration`` seconds; the discrete kinds need an
explicit recovery event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.util.errors import ClusterError

__all__ = ["FaultEvent", "FaultSchedule", "random_schedule"]

#: Kinds that revert themselves after ``duration`` seconds.
TIMED_KINDS = {"loss", "jitter", "freeze", "slow", "token_loss"}
#: Kinds applied instantaneously (recovery, if any, is its own event).
DISCRETE_KINDS = {"crash", "restart", "cut", "restore", "partition", "heal",
                  "stop_daemon"}
KINDS = TIMED_KINDS | DISCRETE_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault; unused fields stay ``None``."""

    time: float
    kind: str
    node: str | None = None
    peer: str | None = None
    groups: tuple[tuple[str, ...], ...] | None = None
    value: float | None = None
    duration: float | None = None
    daemon: str | None = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ClusterError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ClusterError("fault time must be non-negative")
        if self.kind in ("crash", "restart", "freeze", "slow", "stop_daemon") \
                and not self.node:
            raise ClusterError(f"{self.kind} needs a node")
        if self.kind in ("cut", "restore") and not (self.node and self.peer):
            raise ClusterError(f"{self.kind} needs a node pair")
        if self.kind == "partition" and not self.groups:
            raise ClusterError("partition needs node groups")
        if self.kind == "stop_daemon" and not self.daemon:
            raise ClusterError("stop_daemon needs a daemon name")
        if self.kind in TIMED_KINDS and (self.duration is None or self.duration <= 0):
            raise ClusterError(f"{self.kind} needs a positive duration")
        if self.kind == "loss" and not (self.value is not None and 0 <= self.value < 1):
            raise ClusterError("loss needs a probability value < 1")
        if self.kind in ("jitter", "slow") and (self.value is None or self.value < 0):
            raise ClusterError(f"{self.kind} needs a non-negative value")

    @property
    def end_time(self) -> float:
        return self.time + (self.duration or 0.0)

    def to_dict(self) -> dict:
        out: dict = {"time": self.time, "kind": self.kind}
        if self.node is not None:
            out["node"] = self.node
        if self.peer is not None:
            out["peer"] = self.peer
        if self.groups is not None:
            out["groups"] = [list(g) for g in self.groups]
        if self.value is not None:
            out["value"] = self.value
        if self.duration is not None:
            out["duration"] = self.duration
        if self.daemon is not None:
            out["daemon"] = self.daemon
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        groups = data.get("groups")
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            node=data.get("node"),
            peer=data.get("peer"),
            groups=tuple(tuple(g) for g in groups) if groups is not None else None,
            value=data.get("value"),
            duration=data.get("duration"),
            daemon=data.get("daemon"),
        )

    def describe(self) -> str:
        parts = [self.kind]
        if self.node:
            parts.append(self.node)
        if self.peer:
            parts.append(f"<->{self.peer}")
        if self.groups:
            parts.append("|".join("+".join(g) for g in self.groups))
        if self.value is not None:
            parts.append(f"v={self.value:g}")
        if self.duration is not None:
            parts.append(f"for {self.duration:.2f}s")
        if self.daemon:
            parts.append(self.daemon)
        return " ".join(parts)


@dataclass
class FaultSchedule:
    """An ordered fault scenario; builder-style helpers chain."""

    events: list[FaultEvent] = field(default_factory=list)

    # -- builders ------------------------------------------------------------

    def crash(self, time: float, node: str) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "crash", node=node))
        return self

    def restart(self, time: float, node: str) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "restart", node=node))
        return self

    def cut(self, time: float, a: str, b: str) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "cut", node=a, peer=b))
        return self

    def restore(self, time: float, a: str, b: str) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "restore", node=a, peer=b))
        return self

    def partition(self, time: float, groups: Sequence[Sequence[str]]) -> "FaultSchedule":
        self.events.append(
            FaultEvent(time, "partition", groups=tuple(tuple(g) for g in groups))
        )
        return self

    def heal(self, time: float) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "heal"))
        return self

    def loss_burst(self, time: float, loss: float, duration: float) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "loss", value=loss, duration=duration))
        return self

    def jitter_burst(self, time: float, jitter: float, duration: float) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "jitter", value=jitter, duration=duration))
        return self

    def freeze(self, time: float, node: str, duration: float) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "freeze", node=node, duration=duration))
        return self

    def slow_node(self, time: float, node: str, extra: float, duration: float) -> "FaultSchedule":
        self.events.append(
            FaultEvent(time, "slow", node=node, value=extra, duration=duration)
        )
        return self

    def token_loss(self, time: float, duration: float) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "token_loss", duration=duration))
        return self

    def stop_daemon(self, time: float, node: str, daemon: str) -> "FaultSchedule":
        self.events.append(FaultEvent(time, "stop_daemon", node=node, daemon=daemon))
        return self

    # -- queries -------------------------------------------------------------

    def sorted_events(self) -> list[FaultEvent]:
        return sorted(self.events, key=lambda e: e.time)

    def horizon(self) -> float:
        """Time by which every event (including timed reverts) is over."""
        return max((e.end_time for e in self.events), default=0.0)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> dict:
        return {"events": [e.to_dict() for e in self.sorted_events()]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls([FaultEvent.from_dict(e) for e in data.get("events", [])])

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))


def random_schedule(
    seed: int,
    *,
    heads: Sequence[str],
    computes: Sequence[str] = (),
    duration: float = 30.0,
    intensity: int = 3,
    ordering: str = "sequencer",
    head_freeze_max: float = 0.25,
) -> FaultSchedule:
    """Seeded random scenario for soak runs.

    The generator is careful about *survivability*, not gentleness: faults
    are drawn from the full menu, but each one is confined to its own time
    slot with its recovery inside the slot, at most one head is out at a
    time, and head freezes stay under ``head_freeze_max`` (below the
    suspect timeout) so a blacked-out head is delayed, not excluded —
    application-level resync after a false exclusion is out of the paper's
    scope. The whole scenario is a pure function of *seed*.
    """
    if intensity < 1:
        raise ClusterError("intensity must be at least 1")
    rng = np.random.default_rng(seed)
    heads = list(heads)
    computes = list(computes)
    schedule = FaultSchedule()

    menu = ["loss", "jitter", "slow_head"]
    if len(heads) >= 2:
        menu += ["head_crash", "head_cut", "head_freeze"]
    if computes:
        menu += ["compute_crash", "compute_freeze"]
    if ordering == "token":
        menu.append("token_loss")

    # One fault per non-overlapping slot inside the active window
    # [0.1, 0.65) * duration; everything recovers by 0.75 * duration.
    window_start, window_end = 0.1 * duration, 0.65 * duration
    slot = (window_end - window_start) / intensity
    for i in range(intensity):
        lo = window_start + i * slot
        start = lo + float(rng.uniform(0.0, 0.25 * slot))
        span = float(rng.uniform(0.35, 0.7)) * slot
        end = min(start + span, lo + 0.95 * slot)
        kind = menu[int(rng.integers(len(menu)))]
        if kind == "head_crash":
            victim = heads[int(rng.integers(len(heads)))]
            schedule.crash(start, victim).restart(end, victim)
        elif kind == "compute_crash":
            victim = computes[int(rng.integers(len(computes)))]
            schedule.crash(start, victim).restart(end, victim)
        elif kind == "head_cut":
            a, b = rng.choice(len(heads), size=2, replace=False)
            schedule.cut(start, heads[int(a)], heads[int(b)])
            schedule.restore(end, heads[int(a)], heads[int(b)])
        elif kind == "head_freeze":
            victim = heads[int(rng.integers(len(heads)))]
            dur = min(head_freeze_max, end - start)
            schedule.freeze(start, victim, dur)
        elif kind == "compute_freeze":
            victim = computes[int(rng.integers(len(computes)))]
            schedule.freeze(start, victim, min(1.5, end - start))
        elif kind == "loss":
            schedule.loss_burst(start, float(rng.uniform(0.05, 0.2)), end - start)
        elif kind == "jitter":
            schedule.jitter_burst(start, float(rng.uniform(0.001, 0.01)), end - start)
        elif kind == "slow_head":
            victim = heads[int(rng.integers(len(heads)))]
            schedule.slow_node(start, victim, float(rng.uniform(0.001, 0.02)), end - start)
        elif kind == "token_loss":
            schedule.token_loss(start, min(1.0, end - start))
    return schedule
