"""Runtime invariant checkers for chaos runs.

The paper's guarantees are behavioural, so the chaos harness checks them
*while* a scenario runs rather than eyeballing end state. The suite taps the
live objects non-invasively — it wraps the GCS delivery callback and the
mom's job-start/done hooks, preserving whatever callback was installed (the
jmutex notifiers use the same single-slot hooks) — and re-taps after node
restarts via the node lifecycle observers.

Checked invariants:

* **total order** — every surviving head delivers the same message at the
  same ``(view, seq)``. Views are keyed by ``(view_id, member set)`` so two
  partition sides that reuse a numeric view id are not false-compared;
  transitional deliveries (``seq == -1``) are outside the per-view order
  map and skipped.
* **exactly-once launch** — no job ever has two *real* executions in flight
  at once (hard violation at the moment it happens), and across the whole
  run a job gains extra launches only if launch-mutex revocations
  (deliberate requeues of a dead winner's claim) account for them.
* **no lost command** — at the end of the run, every ``jsub`` that was
  accepted (a result exists in a surviving head's replicated log) is
  present in the PBS queue of every *veteran* active head. Veterans are
  heads that neither crashed nor were ever excluded from a view: a
  restarted head carries only post-rejoin history under replay transfer,
  and a head excluded by false suspicion re-merges without application
  resync (its ``active`` flag never dropped) — both are legitimate holes
  the paper's fail-stop model does not cover. Divergent job ids for one
  command uuid are flagged too.
* **bounded delivery queue** — ``DeliveryQueue.payload_count()`` stays under
  a bound on every live head (GC liveness: stability-based garbage
  collection must keep protocol state finite; see the paper's Transis
  crash post-mortem).
* **read-your-writes / monotonic reads** — fed by the read workload via
  :meth:`InvariantSuite.observe_read`: a local-replica ``jstat`` answered
  under ``ryw`` must carry an ``as_of_seq`` at or above every floor the
  client presented (its own writes' commit positions — the staleness
  contract of PROTOCOLS.md §12), and successive local reads by one client
  against one head must never see a shard's position go backwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.gcs.messages import DeliveredMessage
from repro.joshua.wire import JStatResp
from repro.obs.recorder import recorder_of
from repro.pbs.job import JobState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.joshua.deploy import JoshuaStack
    from repro.joshua.server import JoshuaServer
    from repro.pbs.mom import PBSMom

__all__ = ["Violation", "InvariantSuite"]


@dataclass(frozen=True)
class Violation:
    """One observed invariant breach."""

    invariant: str
    time: float
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.time:9.3f}s] {self.invariant}: {self.detail}"


class InvariantSuite:
    """Attaches all checkers to a deployed :class:`JoshuaStack`."""

    def __init__(self, stack: "JoshuaStack", *, queue_bound: int = 500):
        self.stack = stack
        self.kernel = stack.cluster.kernel
        self.queue_bound = queue_bound
        self.violations: list[Violation] = []
        #: (view_id, members) -> seq -> (msg_id, first head that delivered).
        self._order: dict[tuple, dict[int, tuple]] = {}
        #: job_id -> total real launches observed across all moms.
        self.launches: dict[str, int] = {}
        #: job_id -> executions currently in flight (must never exceed 1).
        self._in_flight: dict[str, int] = {}
        #: Revocations counted out of daemons that later crashed.
        self._dead_revocations = 0
        #: Heads that crashed at least once (excluded from the veteran check).
        self.restarted_heads: set[str] = set()
        #: Heads some view left out while they were up (false suspicion);
        #: they re-merge without resync, so they leave the veteran set too.
        self.excluded_heads: set[str] = set()
        #: Live joshua daemons we tapped, by head (kept to read stats at crash).
        self._tapped_joshua: dict[str, "JoshuaServer"] = {}
        self._observing: set[str] = set()
        #: (client, head, shard) -> highest replica position a local read
        #: reported — the monotonic-reads watermark.
        self._read_positions: dict[tuple, int] = {}
        #: Local reads fed through :meth:`observe_read` (reporting aid).
        self.reads_observed = 0

    # -- wiring --------------------------------------------------------------

    def attach(self) -> "InvariantSuite":
        """Tap the stack. Call *after* the group has formed its full view —
        the exclusion tracker reads every later view shrink as a suspicion."""
        for head in self.stack.head_names:
            node = self.stack.cluster.node(head)
            if node.is_up and "joshua" in node.daemons:
                self._tap_joshua(head, self.stack.joshua(head))
            self._observe(node)
        for compute in self.stack.cluster.computes:
            if compute.is_up and "pbs_mom" in compute.daemons:
                self._tap_mom(self.stack.mom(compute.name))
            self._observe(compute)
        return self

    def _observe(self, node: "Node") -> None:
        if node.name in self._observing:
            return
        self._observing.add(node.name)
        node.observe(self._on_lifecycle)

    def _on_lifecycle(self, node: "Node", event: str) -> None:
        if node.role == "head":
            if event == "crash":
                self.restarted_heads.add(node.name)
                dead = self._tapped_joshua.pop(node.name, None)
                if dead is not None:
                    self._dead_revocations += dead.stats.get("revocations", 0)
            elif event == "restart" and "joshua" in node.daemons:
                self._tap_joshua(node.name, node.daemon("joshua"))
        elif node.role == "compute" and event == "restart":
            if "pbs_mom" in node.daemons:
                self._tap_mom(node.daemon("pbs_mom"))

    def _tap_joshua(self, head: str, joshua: "JoshuaServer") -> None:
        self._tapped_joshua[head] = joshua
        # One tap per shard group: each shard is its own total order, so
        # order bookkeeping stays per-(view, member-set) key — the shards'
        # distinct GCS ports keep their keys from ever colliding.
        for member in joshua.groups:
            inner = member.on_deliver
            inner_view = member.on_view

            def recorder(msg: DeliveredMessage, member=member, inner=inner) -> None:
                self._record_delivery(head, member, msg)
                if inner is not None:
                    inner(msg)

            def view_recorder(view, inner_view=inner_view) -> None:
                self._record_view(head, view)
                if inner_view is not None:
                    inner_view(view)

            member.on_deliver = recorder
            member.on_view = view_recorder

    def _tap_mom(self, mom: "PBSMom") -> None:
        inner_start = mom.on_job_start
        inner_done = mom.on_job_done

        def on_start(req) -> None:
            self._record_launch(mom.node.name, req.job_id)
            if inner_start is not None:
                inner_start(req)

        def on_done(obit) -> None:
            self._in_flight[obit.job_id] = self._in_flight.get(obit.job_id, 1) - 1
            if inner_done is not None:
                inner_done(obit)

        mom.on_job_start = on_start
        mom.on_job_done = on_done

    # -- live recorders ------------------------------------------------------

    def _record_delivery(self, head: str, member, msg: DeliveredMessage) -> None:
        if msg.seq < 0 or member.view is None:
            return  # transitional delivery: outside the per-view order map
        key = (msg.view_id, member.view.members)
        slot = self._order.setdefault(key, {})
        existing = slot.get(msg.seq)
        if existing is None:
            slot[msg.seq] = (msg.msg_id, head)
        elif existing[0] != msg.msg_id:
            self._violate(
                "total-order",
                f"view {msg.view_id} seq {msg.seq}: {head} delivered "
                f"{msg.msg_id}, {existing[1]} delivered {existing[0]}",
            )

    def _record_view(self, observer: str, view) -> None:
        """Any configured head a view leaves out *while it is up* was
        suspected (rightly or falsely); either way it may now miss
        deliveries, so it is no longer a veteran."""
        members = {a.node for a in view.members}
        for h in self.stack.head_names:
            if h == observer or h in members:
                continue
            if self.stack.cluster.node(h).is_up:
                self.excluded_heads.add(h)

    def _record_launch(self, compute: str, job_id: str) -> None:
        self.launches[job_id] = self.launches.get(job_id, 0) + 1
        self._in_flight[job_id] = self._in_flight.get(job_id, 0) + 1
        if self._in_flight[job_id] > 1:
            self._violate(
                "exactly-once-launch",
                f"{job_id} has {self._in_flight[job_id]} concurrent real "
                f"executions (latest on {compute})",
            )

    def observe_read(self, client: str, floors: dict, response) -> None:
        """Check one completed ``jstat`` against the read-path contract.

        *floors* is the per-shard ``min_seq`` map the client presented,
        restricted to the shards the read gates on — every shard for an
        id-less query, only the owning shard for a targeted one (empty
        for non-``ryw`` reads).
        Ordered answers (plain ``StatResp``) are serialised after every
        committed write, so only local-replica answers
        (:class:`~repro.joshua.wire.JStatResp`) are checked: the reported
        ``as_of_seq`` must cover every floor, and must never go backwards
        for one client against one head.
        """
        if not isinstance(response, JStatResp):
            return
        self.reads_observed += 1
        as_of = dict(response.as_of_seq)
        head = response.node
        for shard, floor in sorted(floors.items()):
            position = as_of.get(shard)
            if position is None:
                self._violate(
                    "read-your-writes",
                    f"{client} presented floor {floor} for shard {shard} but "
                    f"{head} answered locally without that shard's position",
                )
            elif position < floor:
                self._violate(
                    "read-your-writes",
                    f"{client} read {head} at shard {shard} position "
                    f"{position}, below its own write floor {floor}",
                )
        for shard, position in sorted(as_of.items()):
            key = (client, head, shard)
            seen = self._read_positions.get(key, -1)
            if position < seen:
                self._violate(
                    "monotonic-reads",
                    f"{client} read {head} shard {shard} at position "
                    f"{position} after having seen {seen}",
                )
            else:
                self._read_positions[key] = position

    def _violate(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, self.kernel.now, detail))
        # With a flight recorder attached, every violation snapshots the
        # per-node rings into a postmortem bundle — the causal record of
        # the seconds leading up to the breach.
        recorder = recorder_of(self.stack.cluster.network)
        if recorder is not None:
            recorder.capture(f"invariant:{invariant}", detail)

    # -- periodic / final checks ---------------------------------------------

    def _live_active_joshuas(self) -> dict[str, "JoshuaServer"]:
        out = {}
        for head in self.stack.live_heads():
            node = self.stack.cluster.node(head)
            if "joshua" in node.daemons:
                joshua = self.stack.joshua(head)
                if joshua.running and joshua.active:
                    out[head] = joshua
        return out

    def check_queue_bound(self) -> None:
        """GC liveness: protocol payload state stays bounded on live heads
        (checked per shard group — one shard's backlog must not hide
        behind its siblings' idle queues)."""
        for head, joshua in self._live_active_joshuas().items():
            for replica in joshua.shards:
                count = replica.group.queue.payload_count()
                if count > self.queue_bound:
                    where = (
                        head if joshua.nshards == 1
                        else f"{head} shard {replica.index}"
                    )
                    self._violate(
                        "bounded-delivery-queue",
                        f"{where} holds {count} payloads (> {self.queue_bound})",
                    )

    def sampler(self, interval: float = 1.0):
        """Kernel process: run the periodic checks every *interval* seconds."""
        while True:
            yield self.kernel.timeout(interval)
            self.check_queue_bound()

    def final_check(self) -> list[Violation]:
        """End-of-run checks, after faults are healed and traffic quiesced."""
        self.check_queue_bound()
        self._check_exactly_once_total()
        self._check_no_lost_commands()
        return self.violations

    def _total_revocations(self) -> int:
        live = sum(
            j.stats.get("revocations", 0) for j in self._tapped_joshua.values()
        )
        return live + self._dead_revocations

    def _check_exactly_once_total(self) -> None:
        extra = sum(n - 1 for n in self.launches.values() if n > 1)
        revocations = self._total_revocations()
        if extra > revocations:
            repeats = {j: n for j, n in self.launches.items() if n > 1}
            self._violate(
                "exactly-once-launch",
                f"{extra} extra launch(es) {repeats} but only "
                f"{revocations} revocation(s) to justify them",
            )

    def _check_no_lost_commands(self) -> None:
        veterans = {
            head: joshua
            for head, joshua in self._live_active_joshuas().items()
            if head not in self.restarted_heads
            and head not in self.excluded_heads
        }
        if not veterans:
            return
        # Accepted jsubs: uuid -> job id, from every veteran's replicated log.
        accepted: dict[str, str] = {}
        deleted: set[str] = set()
        for head, joshua in veterans.items():
            for command in joshua.command_log:
                if command.kind == "jdel":
                    deleted.add(command.payload)
                    continue
                if command.kind != "jsub":
                    continue
                result = joshua.results.get(command.uuid)
                job_id = getattr(result, "job_id", None)
                if job_id is None:
                    continue
                known = accepted.setdefault(command.uuid, job_id)
                if known != job_id:
                    self._violate(
                        "no-lost-command",
                        f"command {command.uuid} became {known} on one head "
                        f"and {job_id} on {head}",
                    )
        expected = {j for j in accepted.values() if j not in deleted}
        for head in veterans:
            queue = self.stack.pbs(head).jobs
            missing = sorted(j for j in expected if j not in queue)
            if missing:
                self._violate(
                    "no-lost-command",
                    f"{head} lost accepted job(s) {missing}",
                )

    # -- reporting helpers ---------------------------------------------------

    def completed_jobs(self) -> int:
        """COMPLETE jobs on the best-informed veteran head (reporting only)."""
        best = 0
        for head, _ in self._live_active_joshuas().items():
            queue = self.stack.pbs(head).jobs
            best = max(
                best, sum(1 for job in queue if job.state is JobState.COMPLETE)
            )
        return best
