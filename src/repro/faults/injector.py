"""Executes a :class:`~repro.faults.schedule.FaultSchedule` on a cluster.

The injector is a thin, deterministic driver: one kernel process walks the
sorted events, applies each at its time through the cluster/network APIs,
and — for the timed kinds — spawns a revert timer. Link-quality bursts
(``loss``/``jitter``) are composed over the baseline LAN model captured at
construction, so overlapping bursts of different kinds stack and reverting
one restores exactly the other's contribution.

Ordering-token loss is injected at the wire with a network drop filter
matching transport DATA frames that carry a
:class:`~repro.gcs.messages.TokenMsg`. Tokens travel over the reliable
channel, so the ring stalls only while the filter is active and recovers by
retransmission once it lifts — exercising the recovery machinery rather
than wedging the group forever.

Every applied action is appended to :attr:`FaultInjector.log` as
``(sim_time, description)`` for reports and failure replay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.gcs.messages import TokenMsg
from repro.net.address import Address
from repro.net.frames import DataFrame

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster

__all__ = ["FaultInjector", "drops_token"]


def drops_token(src: Address, dst: Address, payload: Any) -> bool:
    """Drop-filter predicate: transport DATA frames carrying a TokenMsg."""
    return isinstance(payload, DataFrame) and isinstance(payload.payload, TokenMsg)


class FaultInjector:
    """Applies fault schedules to a :class:`~repro.cluster.cluster.Cluster`."""

    def __init__(self, cluster: "Cluster"):
        self.cluster = cluster
        self.kernel = cluster.kernel
        self.network = cluster.network
        self._baseline_lan = cluster.network.lan
        self._loss: float | None = None
        self._jitter: float | None = None
        self._frozen: set[str] = set()
        self._filter_tokens: list[int] = []
        #: Applied actions: (sim_time, human-readable description).
        self.log: list[tuple[float, str]] = []

    # -- driving -------------------------------------------------------------

    def apply(self, schedule: FaultSchedule):
        """Spawn the driver process executing *schedule*; returns it."""
        return self.kernel.spawn(
            self._drive(schedule.sorted_events()), name="fault-injector"
        )

    def _drive(self, events: list[FaultEvent]):
        for event in events:
            delay = event.time - self.kernel.now
            if delay > 0:
                yield self.kernel.timeout(delay)
            self._execute(event)

    def _note(self, text: str) -> None:
        self.log.append((self.kernel.now, text))

    def _execute(self, event: FaultEvent) -> None:
        kind = event.kind
        if kind == "crash":
            node = self.cluster.node(event.node)
            if node.is_up:
                node.crash()
                self._note(f"crash {event.node}")
            else:
                self._note(f"crash {event.node} skipped (already down)")
        elif kind == "restart":
            node = self.cluster.node(event.node)
            if not node.is_up:
                node.restart()
                self._note(f"restart {event.node}")
            else:
                self._note(f"restart {event.node} skipped (already up)")
        elif kind == "cut":
            self.network.partitions.cut_link(event.node, event.peer)
            self._note(f"cut {event.node}<->{event.peer}")
        elif kind == "restore":
            self.network.partitions.restore_link(event.node, event.peer)
            self._note(f"restore {event.node}<->{event.peer}")
        elif kind == "partition":
            self.network.partitions.set_partitions([list(g) for g in event.groups])
            self._note(f"partition {event.describe()}")
        elif kind == "heal":
            self.network.partitions.heal_partitions()
            self._note("heal partitions")
        elif kind == "loss":
            self._loss = event.value
            self._apply_lan()
            self._note(f"loss burst p={event.value:g} for {event.duration:.2f}s")
            self._after(event.duration, self._end_loss)
        elif kind == "jitter":
            self._jitter = event.value
            self._apply_lan()
            self._note(f"jitter burst {event.value:g}s for {event.duration:.2f}s")
            self._after(event.duration, self._end_jitter)
        elif kind == "freeze":
            name = event.node
            self.network.pause_node(name)
            self._frozen.add(name)
            self._note(f"freeze {name} for {event.duration:.2f}s")
            self._after(event.duration, lambda: self._end_freeze(name))
        elif kind == "slow":
            name = event.node
            self.network.set_node_slowdown(name, event.value)
            self._note(f"slow {name} +{event.value:g}s for {event.duration:.2f}s")
            self._after(event.duration, lambda: self._end_slow(name))
        elif kind == "token_loss":
            token = self.network.add_drop_filter(drops_token)
            self._filter_tokens.append(token)
            self._note(f"token loss for {event.duration:.2f}s")
            self._after(event.duration, lambda: self._end_filter(token))
        elif kind == "stop_daemon":
            self.cluster.node(event.node).stop_daemon(event.daemon)
            self._note(f"stop daemon {event.daemon}@{event.node}")

    # -- timed reverts -------------------------------------------------------

    def _after(self, delay: float, action) -> None:
        def timer():
            yield self.kernel.timeout(delay)
            action()

        self.kernel.spawn(timer(), name="fault-revert")

    def _apply_lan(self) -> None:
        lan = self._baseline_lan
        if self._loss is not None:
            lan = lan.with_loss(self._loss)
        if self._jitter is not None:
            lan = lan.with_jitter(self._jitter)
        self.network.lan = lan

    def _end_loss(self) -> None:
        self._loss = None
        self._apply_lan()
        self._note("loss burst over")

    def _end_jitter(self) -> None:
        self._jitter = None
        self._apply_lan()
        self._note("jitter burst over")

    def _end_freeze(self, name: str) -> None:
        if name in self._frozen:
            self._frozen.discard(name)
            self.network.resume_node(name)
            self._note(f"unfreeze {name}")

    def _end_slow(self, name: str) -> None:
        self.network.set_node_slowdown(name, 0.0)
        self._note(f"slow {name} over")

    def _end_filter(self, token: int) -> None:
        self.network.remove_drop_filter(token)
        if token in self._filter_tokens:
            self._filter_tokens.remove(token)
        self._note("token loss over")

    # -- end-of-run hygiene --------------------------------------------------

    def heal_all(self, *, restart_nodes: bool = True) -> None:
        """Revert every outstanding fault so the system can quiesce:
        baseline link model, no partitions, no freezes/slowdowns/filters,
        and (optionally) every crashed node restarted."""
        self._loss = self._jitter = None
        self.network.lan = self._baseline_lan
        self.network.partitions.heal_partitions()
        for a, b in list(self.network.partitions.cut_links):
            self.network.partitions.restore_link(a, b)
        for name in list(self._frozen):
            self._end_freeze(name)
        for name in list(self.network.nodes):
            self.network.set_node_slowdown(name, 0.0)
        for token in list(self._filter_tokens):
            self._end_filter(token)
        if restart_nodes:
            for node in self.cluster.nodes:
                if not node.is_up:
                    node.restart()
                    self._note(f"restart {node.name} (end-of-run)")
        self._note("heal all")
