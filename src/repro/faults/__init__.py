"""Fault injection and runtime invariant checking.

The chaos subsystem turns the ad-hoc failure drills of the integration
tests into first-class, replayable scenarios:

* :mod:`~repro.faults.schedule` — typed fault events, declarative
  schedules (builder / dict / JSON), and the seeded random generator
  behind soak runs;
* :mod:`~repro.faults.injector` — executes a schedule against a cluster
  through the network/node APIs, with automatic reverts for timed faults
  and :meth:`~repro.faults.injector.FaultInjector.heal_all` hygiene;
* :mod:`~repro.faults.invariants` — live checkers for the paper's
  guarantees (identical total order, exactly-once job launch, no lost
  accepted command, bounded protocol state);
* :mod:`~repro.faults.runner` — the ``repro chaos`` harness combining all
  of the above around a JOSHUA stack and a job workload.
"""

from repro.faults.injector import FaultInjector, drops_token
from repro.faults.invariants import InvariantSuite, Violation
from repro.faults.runner import CHAOS_GROUP, ChaosReport, run_chaos, soak
from repro.faults.schedule import FaultEvent, FaultSchedule, random_schedule

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "random_schedule",
    "FaultInjector",
    "drops_token",
    "InvariantSuite",
    "Violation",
    "CHAOS_GROUP",
    "ChaosReport",
    "run_chaos",
    "soak",
]
