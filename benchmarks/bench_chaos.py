"""Chaos soak: randomized fault scenarios with live invariant checking.

Not a paper figure — the endurance companion. Where ``bench_endurance``
replays one scripted day, this bench drives a batch of seeded *random*
fault scenarios (crashes, link cuts, loss/jitter bursts, freezes,
slowdowns, token loss) through :func:`repro.faults.runner.soak` and
asserts the paper's guarantees held in every one: identical delivered
order across surviving heads, exactly-once job launch, no accepted
``jsub`` lost on veteran heads, and bounded protocol state.

Any failure prints the offending seed; ``repro chaos run --seed N``
replays that exact scenario.
"""

from repro.bench.reporting import format_table
from repro.faults import soak


def run_soak(*, seed: int = 0, runs: int = 6) -> list[dict]:
    reports = soak(seed, runs)
    return [
        {
            "seed": r.seed,
            "ordering": r.ordering,
            "faults": len(r.schedule.events),
            "submitted": r.jobs_submitted,
            "completed": r.jobs_completed,
            "violations": len(r.violations),
        }
        for r in reports
    ]


def test_chaos_soak(benchmark, report):
    rows = benchmark.pedantic(run_soak, rounds=1, iterations=1)
    report(benchmark, "Chaos soak: random faults, live invariants",
           format_table(rows), rows)
    assert all(row["violations"] == 0 for row in rows), (
        "replay failing scenarios with: repro chaos run --seed <seed>"
    )
    # The workload must have actually run under fire, not idled.
    assert sum(row["completed"] for row in rows) > 0
