"""Figure 11 — job submission throughput (time to enqueue 10/50/100 jobs).

Paper: TORQUE 0.93/4.95/10.18 s; JOSHUA 1 head 1.32/6.48/14.08 s rising to
3.62/17.65/33.32 s at 4 heads — i.e. throughput cost scales linearly in
batch size and grows with head count, but "adding 100 jobs to the job
queue in 33 s for a 4 head node system is an acceptable trade-off".

The burst-offered-load companion compares the batched DATA pipeline off
vs. on (``test_figure11_burst_batching``) and refreshes the checked-in
``BENCH_fig11.json`` snapshot with the measured events/sec, bytes-on-wire
per committed command and per-type wire byte breakdown.
"""

import json
import pathlib

from repro.bench.experiments.throughput import (
    PAPER_FIGURE11,
    burst_batching_ablation,
    figure11,
)
from repro.bench.reporting import format_table
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import rpc_latency_lines

SNAPSHOT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fig11.json"


def test_figure11_throughput(benchmark, report, metrics_snapshot,
                             wire_bytes_snapshot):
    registry = MetricsRegistry()
    wire_bytes: dict[str, int] = {}
    rows = benchmark.pedantic(
        figure11,
        kwargs={"registry": registry, "wire_bytes": wire_bytes},
        rounds=1, iterations=1,
    )
    columns = ["system", "heads"] + [
        c for c in rows[0] if c.startswith(("measured", "paper"))
    ]
    table = format_table(rows, columns)
    report(benchmark, "Figure 11: job submission throughput", table, rows)
    print("rpc conversations (per request type, all bursts pooled):")
    print("\n".join(rpc_latency_lines(registry)))
    metrics_snapshot(benchmark, registry)
    wire_bytes_snapshot(benchmark, wire_bytes)
    assert wire_bytes, "no frames crossed the wire?"

    by_config = {(r["system"], r["heads"]): r for r in rows}
    # Linear in batch size: 100 jobs ~ 10x the 10-job time (sequential client).
    for config, row in by_config.items():
        ratio = row["measured_100_s"] / row["measured_10_s"]
        assert 8.0 <= ratio <= 12.0, (config, ratio)
    # Grows with head count for every batch size.
    for jobs in (10, 50, 100):
        series = [by_config[("JOSHUA/TORQUE", n)][f"measured_{jobs}_s"] for n in (1, 2, 3, 4)]
        assert series == sorted(series)
    # TORQUE beats JOSHUA at equal head count (replication is not free).
    assert (
        by_config[("TORQUE", 1)]["measured_100_s"]
        < by_config[("JOSHUA/TORQUE", 1)]["measured_100_s"]
    )
    # Absolute numbers within 2x of the paper everywhere.
    for (system, heads), paper_row in PAPER_FIGURE11.items():
        for jobs, paper_s in paper_row.items():
            measured = by_config[(system, heads)][f"measured_{jobs}_s"]
            assert 0.5 <= measured / paper_s <= 2.0, (system, heads, jobs, measured)
    # The paper's headline: 100 jobs on 4 heads in ~33 s.
    assert by_config[("JOSHUA/TORQUE", 4)]["measured_100_s"] < 50.0


def test_figure11_burst_batching(benchmark, report):
    """Burst offered load, batching pipeline off vs. on.

    Asserts the headline claim — ≥ 25 % fewer bytes on the wire per
    committed command with batching enabled — with the per-type breakdown
    evidencing fewer/larger DATA frames, and refreshes the checked-in
    ``BENCH_fig11.json`` snapshot (deterministic: simulated figures only).
    """
    result = benchmark.pedantic(
        burst_batching_ablation,
        kwargs={"heads": 3, "jobs": 50, "seed": 1},
        rounds=1, iterations=1,
    )
    rows = [result["unbatched"], result["batched"]]
    columns = ["batching", "heads", "jobs", "elapsed_s",
               "events_per_sim_s", "bytes_wire", "bytes_wire_per_command"]
    table = format_table(rows, columns)
    report(benchmark, "Figure 11 companion: burst offered load, batching "
           f"off vs on (reduction {result['reduction_pct']}%)", table, result)

    off, on = result["unbatched"], result["batched"]
    # Headline: >= 25% fewer wire bytes per committed command.
    assert result["reduction_pct"] >= 25.0, result
    # The wire evidence: the burst rides coalesced DATA frames — batch
    # frames carry most of the DATA bytes, per-frame overhead amortized.
    off_data = off["wire_bytes_by_type"].get("DataMsg", 0)
    on_plain = on["wire_bytes_by_type"].get("DataMsg", 0)
    on_batch = on["wire_bytes_by_type"].get("DataBatchMsg", 0)
    assert off["wire_bytes_by_type"].get("DataBatchMsg", 0) == 0
    assert on_batch > 0 and on_batch > on_plain
    assert on_plain + on_batch < off_data
    # Committed throughput did not regress: the burst finishes no slower.
    assert on["elapsed_s"] <= off["elapsed_s"] * 1.1

    SNAPSHOT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
