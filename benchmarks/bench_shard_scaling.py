"""Shard scaling extension — committed-commands/sec vs. ordering shards.

Not a paper figure: JOSHUA runs one Transis group end to end. The sharded
deployment (PROTOCOLS.md §10) splits the job namespace by PBS queue across
co-hosted GCS groups, so this bench measures the two claims that justify
it — aggregate commit throughput rises monotonically with the shard
count, and killing one shard's sequencer leaves the other shard's commit
stream undisturbed — and refreshes the checked-in
``BENCH_shard_scaling.json`` snapshot (deterministic: simulated figures
only).
"""

import json
import pathlib

from repro.bench.experiments.sharding import sequencer_kill, shard_scaling
from repro.bench.reporting import format_table

SNAPSHOT_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_shard_scaling.json"
)


def test_shard_scaling_throughput(benchmark, report):
    """The same 48-job concurrent burst at shards = 1/2/4 on 4 heads.

    Asserts the headline claim: aggregate committed commands/sec is
    monotonically increasing in the shard count, and every burst commits
    every command with the load evenly striped across shards.
    """
    result = benchmark.pedantic(
        _scaling_and_kill, rounds=1, iterations=1,
    )
    rows = result["scaling"]
    columns = ["shards", "heads", "jobs", "elapsed_s", "committed",
               "committed_per_s"]
    table = format_table(rows, columns)
    report(benchmark, "Shard scaling: burst commit throughput vs shards",
           table, result)
    kill = result["sequencer_kill"]
    windows = kill["windows"]
    print(
        f"sequencer kill (victim {kill['victim_sequencer']}, shard 1 "
        f"fails over to {kill['new_shard1_sequencer']}):"
    )
    for name in ("before", "sequencer_dead", "after_failover"):
        rates = windows[name]["committed_per_s"]
        print(f"  {name:>15}: per-shard committed/s {rates}")

    # Monotonic scaling: each doubling of shards raises aggregate
    # committed/sec — the single total order is the serialization point.
    series = [row["committed_per_s"] for row in rows]
    assert series == sorted(series) and len(set(series)) == len(series), series
    for row in rows:
        assert row["committed"] == row["jobs"], row  # nothing lost
        spread = row["per_shard_committed"]
        assert max(spread) - min(spread) <= 1, row  # evenly striped

    # Fault isolation: while shard 1's sequencer is dead (before the view
    # change), shard 0 keeps committing at steady-state rate; shard 1 is
    # fully stalled, then both run at full rate after failover.
    before, dead, after = (
        windows["before"], windows["sequencer_dead"], windows["after_failover"]
    )
    assert dead["committed"][1] == 0, dead
    assert dead["committed_per_s"][0] >= 0.7 * before["committed_per_s"][0]
    assert after["committed"][0] > 0 and after["committed"][1] > 0, after
    assert kill["new_shard1_sequencer"] != kill["victim_sequencer"]

    SNAPSHOT_PATH.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )


def _scaling_and_kill() -> dict:
    return {
        "scaling": shard_scaling(shard_counts=(1, 2, 4), jobs=48, seed=1),
        "sequencer_kill": sequencer_kill(shards=2, heads=3, seed=1),
    }
